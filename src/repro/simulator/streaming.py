"""Streaming markets: buyers arrive and depart over time (§8.2).

The paper builds on "an end-to-end market design that considers buyers and
sellers arriving in a streaming fashion" (Moor, NetEcon'19) and online
auctions for digital goods.  This module simulates that regime: buyers
arrive by a Poisson process with private values and limited patience, the
mechanism clears each round among the buyers currently present, and served
or expired buyers leave.

The interesting design question it exposes: with impatient buyers, waiting
mechanisms (auctions needing competition, like RSOP) lose sales that a
posted price captures immediately — a supply-regime trade-off static
simulations cannot show.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..mechanisms import Bid, Mechanism
from .workload import ValueSampler


@dataclass
class StreamingBuyer:
    name: str
    value: float
    arrived_at: int
    patience: int  # rounds the buyer waits before leaving unserved

    def expired(self, now: int) -> bool:
        return now - self.arrived_at >= self.patience


@dataclass
class StreamingMetrics:
    rounds: int
    arrivals: int
    served: int
    expired: int
    revenue: float
    welfare: float
    #: mean rounds a served buyer waited before being served
    mean_wait: float

    @property
    def service_rate(self) -> float:
        finished = self.served + self.expired
        return self.served / finished if finished else 0.0


def simulate_streaming_market(
    mechanism: Mechanism,
    value_sampler: ValueSampler,
    arrival_rate: float = 3.0,
    patience: int = 3,
    n_rounds: int = 100,
    seed: int = 0,
) -> StreamingMetrics:
    """Run a streaming market: Poisson arrivals, per-round clearing.

    Buyers bid truthfully (their value) while present; winners pay the
    mechanism's price and depart; unserved buyers leave after ``patience``
    rounds.
    """
    if arrival_rate <= 0:
        raise SimulationError("arrival rate must be positive")
    if patience < 1:
        raise SimulationError("patience must be >= 1")
    if n_rounds < 1:
        raise SimulationError("need at least one round")
    rng = np.random.default_rng(seed)
    waiting: list[StreamingBuyer] = []
    arrivals = served = expired = 0
    revenue = welfare = 0.0
    waits: list[int] = []
    counter = 0
    for now in range(n_rounds):
        for _ in range(int(rng.poisson(arrival_rate))):
            waiting.append(
                StreamingBuyer(
                    name=f"sb{counter}",
                    value=value_sampler(rng),
                    arrived_at=now,
                    patience=patience,
                )
            )
            counter += 1
            arrivals += 1
        if waiting:
            bids = [Bid(b.name, b.value) for b in waiting]
            outcome = mechanism.run(bids)
            still_waiting = []
            for buyer in waiting:
                if outcome.won(buyer.name):
                    served += 1
                    revenue += outcome.payment_of(buyer.name)
                    welfare += buyer.value
                    waits.append(now - buyer.arrived_at)
                elif buyer.expired(now):
                    expired += 1
                else:
                    still_waiting.append(buyer)
            waiting = still_waiting
    # everyone still waiting at the end counts as expired (censored)
    expired += len(waiting)
    return StreamingMetrics(
        rounds=n_rounds,
        arrivals=arrivals,
        served=served,
        expired=expired,
        revenue=revenue,
        welfare=welfare,
        mean_wait=float(np.mean(waits)) if waits else 0.0,
    )
