"""Ecosystem actors beyond plain buyers and sellers (Section 7.1).

* :class:`OpportunisticSeller` — "may not own data, but they have time...
  Because the arbiter knows that b1 would benefit from attribute ⟨e⟩...
  the arbiter can ask Seller 3 to obtain a dataset s3 = ⟨e⟩ for money."
  Implementation: watches the arbiter's open negotiation requests, collects
  (synthesizes) any attribute in its capability catalog whose bounty covers
  the collection cost, and registers the new dataset.

* :class:`Arbitrageur` — "play seller and buyer at the same time...  buy
  certain datasets, transform them, perhaps combining them with certain
  information they possess, and sell them again."  Implementation: buys a
  mashup through the normal buyer flow, verifies resale rights on every
  source license, optionally enriches the relation, and relists it under
  its own name with a reserve price; profit is tracked on the ledger.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping

from ..errors import MarketError
from ..market.arbiter import Arbiter
from ..market.buyer import BuyerPlatform, DeliveredMashup
from ..market.seller import share_dataset
from ..relation import Relation
from ..wtp import PriceCurve, QueryCompletenessTask, WTPFunction


@dataclass
class CollectionReport:
    attribute: str
    dataset: str
    bounty: float
    cost: float

    @property
    def expected_profit(self) -> float:
        return self.bounty - self.cost


class OpportunisticSeller:
    """Collects datasets on demand, guided by negotiation bounties."""

    def __init__(
        self,
        seller_id: str,
        catalog: Mapping[str, Callable[[], Relation]],
        collection_cost: float = 1.0,
    ):
        if collection_cost < 0:
            raise MarketError("collection cost must be non-negative")
        self.seller_id = seller_id
        self.catalog = dict(catalog)
        self.collection_cost = collection_cost
        self.collected: list[CollectionReport] = []

    def scan_and_collect(self, arbiter: Arbiter) -> list[CollectionReport]:
        """Fulfil every open request we can profitably serve."""
        reports = []
        for request in arbiter.negotiation.open_requests():
            factory = self.catalog.get(request.attribute)
            if factory is None:
                continue
            if request.bounty < self.collection_cost:
                continue  # not worth the time
            dataset = factory()
            if request.attribute not in dataset.schema:
                raise MarketError(
                    f"catalog for {request.attribute!r} produced a dataset "
                    f"without that attribute"
                )
            share_dataset(arbiter, dataset, self.seller_id)
            arbiter.negotiation.respond_with_dataset(
                request.request_id, self.seller_id, dataset
            )
            report = CollectionReport(
                attribute=request.attribute,
                dataset=dataset.name,
                bounty=request.bounty,
                cost=self.collection_cost,
            )
            self.collected.append(report)
            reports.append(report)
        return reports

    def earnings(self, arbiter: Arbiter) -> float:
        return sum(
            arbiter.lineage.revenue_of(r.dataset) for r in self.collected
        )


class Arbitrageur:
    """Buys, transforms, and relists mashups for profit."""

    def __init__(self, actor_id: str):
        self.actor_id = actor_id
        self.buyer = BuyerPlatform(actor_id)
        self.acquisitions: list[DeliveredMashup] = []
        self.listings: list[str] = []

    def join_market(self, arbiter: Arbiter, funding: float) -> None:
        arbiter.register_participant(self.actor_id, funding=funding)
        arbiter.attach_buyer_platform(self.buyer)

    def acquire(
        self,
        arbiter: Arbiter,
        attributes: list[str],
        wanted_keys: list,
        max_price: float,
        key: str = "entity_id",
    ) -> DeliveredMashup | None:
        """Buy a mashup of ``attributes`` through the normal buyer flow."""
        wtp = WTPFunction(
            buyer=self.actor_id,
            task=QueryCompletenessTask(
                wanted_keys=wanted_keys, attributes=attributes, key=key
            ),
            curve=PriceCurve.single(0.5, max_price),
            key=key,
        )
        arbiter.submit_wtp(wtp)
        result = arbiter.run_round()
        mine = [d for d in result.deliveries if d.buyer == self.actor_id]
        if not mine:
            return None
        delivered = self.buyer.latest
        self.acquisitions.append(delivered)
        return delivered

    def relist(
        self,
        arbiter: Arbiter,
        delivered: DeliveredMashup,
        new_name: str,
        transform: Callable[[Relation], Relation] | None = None,
        reserve_price: float = 0.0,
    ) -> Relation:
        """Re-offer an acquired mashup (license-checked) as a new dataset."""
        sources = _sources_from_plan(delivered.plan_description)
        for dataset in sources:
            arbiter.licenses.check_resale(dataset, self.actor_id)
        relation = delivered.relation
        if transform is not None:
            relation = transform(relation)
        relisted = relation.renamed(new_name).with_provenance_root(new_name)
        share_dataset(
            arbiter, relisted, self.actor_id, reserve_price=reserve_price
        )
        self.listings.append(new_name)
        arbiter.audit.append(
            "arbitrage_relist",
            {"actor": self.actor_id, "dataset": new_name,
             "derived_from": sources},
        )
        return relisted

    def profit(self, arbiter: Arbiter) -> float:
        """Resale earnings minus acquisition spending."""
        earned = sum(
            arbiter.lineage.revenue_of(name) for name in self.listings
        )
        spent = sum(d.price_paid for d in self.acquisitions)
        return earned - spent


def _sources_from_plan(plan_description: str) -> list[str]:
    """Recover source dataset names from a plan's describe() text."""
    sources = []
    for line in plan_description.splitlines():
        if line.startswith("base: "):
            sources.append(line.split("base: ", 1)[1].strip())
        elif line.startswith("join "):
            sources.append(line.split()[1])
    return sources
