"""Full-stack market simulation: agent populations on the real DMMS.

Section 6.1 asks for "a simulation platform where it is possible to
implement different rules and change the behavior of players".  The
mechanism-level simulator (:mod:`repro.simulator.engine`) isolates the
allocation/payment rules; this module closes the loop by running strategy
populations against a complete :class:`~repro.platform.DataMarket` façade —
mashup building, WTP evaluation, licensing, ledger and all — so a market
design is tested exactly as it would be deployed (Fig. 1: the same design
object flows from simulation into production through the same typed API).

Buyers draw a private per-round value for a data product and submit a
completeness WTP whose price step is their *strategy-distorted* bid; the
arbiter does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..market.design import MarketDesign
from ..platform import DataMarket
from ..relation import Relation
from ..wtp import PriceCurve, QueryCompletenessTask, WTPFunction
from .metrics import StrategyStats, gini
from .workload import ValueSampler, build_population


@dataclass
class FullStackResult:
    rounds: int
    revenue: float
    transactions: int
    rejections: int
    welfare: float  # winners' true values
    by_strategy: dict[str, StrategyStats] = field(default_factory=dict)
    seller_balances: dict[str, float] = field(default_factory=dict)

    @property
    def seller_gini(self) -> float:
        values = [max(v, 0.0) for v in self.seller_balances.values()]
        return gini(values) if values else 0.0


def simulate_market_deployment(
    design: MarketDesign,
    datasets: list[Relation],
    wanted_attributes: list[str],
    value_sampler: ValueSampler,
    strategy_mix: dict[str, float],
    strategy_kwargs: dict[str, dict] | None = None,
    n_buyers: int = 8,
    n_rounds: int = 10,
    satisfaction_threshold: float = 0.5,
    key: str = "entity_id",
    seed: int = 0,
    arrivals: dict[int, list[Relation]] | None = None,
    departures: dict[int, list[str]] | None = None,
    planner: str = "beam",
) -> FullStackResult:
    """Deploy ``design`` on a real arbiter and run agent populations.

    Each round, every agent draws a true value v, submits a completeness
    WTP bidding ``strategy.bid(v)``, and the arbiter clears the market.
    Utilities use the *true* values, so strategic distortion shows up as
    welfare/utility loss exactly as in the mechanism-level simulator.

    ``arrivals`` (round -> new seller datasets) and ``departures``
    (round -> dataset names to retire) exercise the long-running
    deployment story: the discovery indexes are patched incrementally
    before the round clears, with no full rebuild stalling the market.

    ``planner`` selects the DoD plan enumerator the deployed arbiter runs:
    ``"beam"`` (component-pruned best-first search, the default) or
    ``"exhaustive"`` (the reference-oracle product sweep).
    """
    if planner not in ("beam", "exhaustive"):
        raise SimulationError(
            f"unknown planner {planner!r}: expected 'beam' or 'exhaustive'"
        )
    if n_rounds < 1 or n_buyers < 1:
        raise SimulationError("need at least one round and one buyer")
    if not datasets:
        raise SimulationError("need at least one seller dataset")
    arrivals = arrivals or {}
    departures = departures or {}
    # replay the churn timeline upfront: every departure must name a dataset
    # live at that round (departures are processed before arrivals), and no
    # arrival may reuse a still-live name
    active = {ds.name for ds in datasets}
    if len(active) != len(datasets):
        raise SimulationError("initial datasets have duplicate names")
    for r in sorted(set(departures) | set(arrivals)):
        for name in departures.get(r, ()):
            if name not in active:
                raise SimulationError(
                    f"departure of {name!r} at round {r} names a dataset "
                    f"that is not live then"
                )
            active.discard(name)
        for ds in arrivals.get(r, ()):
            if ds.name in active:
                raise SimulationError(
                    f"arrival of {ds.name!r} at round {r} clashes with a "
                    f"still-live dataset of that name"
                )
            active.add(ds.name)
    rng = np.random.default_rng(seed)
    # the deployed platform is the same façade production callers use:
    # every mutation below flows through DataMarket's typed operations
    market = DataMarket(design, exhaustive=(planner == "exhaustive"))
    sellers: list[str] = []

    def _accept(dataset: Relation) -> None:
        seller = f"seller_{len(sellers)}"
        sellers.append(seller)
        market.register_dataset(dataset, seller=seller)

    for dataset in datasets:
        _accept(dataset)

    agents = build_population(n_buyers, strategy_mix, strategy_kwargs)
    funding = 0.0 if design.incentive != "money" else 1e7
    for agent in agents:
        market.register_participant(agent.name, funding=funding)

    all_datasets = list(datasets) + [
        ds for round_datasets in arrivals.values() for ds in round_datasets
    ]
    wanted_keys = sorted(
        {row[0] for ds in all_datasets for row in ds.rows}
    )
    revenue = welfare = 0.0
    transactions = rejections = 0
    for _round in range(n_rounds):
        for name in departures.get(_round, ()):
            market.retire_dataset(name)
        for dataset in arrivals.get(_round, ()):
            _accept(dataset)
        true_values = {a.name: value_sampler(rng) for a in agents}
        for agent in agents:
            bid = agent.submit(true_values[agent.name], rng)
            if bid <= 0:
                continue
            market.submit_wtp(
                WTPFunction(
                    buyer=agent.name,
                    task=QueryCompletenessTask(
                        wanted_keys=wanted_keys,
                        attributes=wanted_attributes,
                        key=key,
                    ),
                    curve=PriceCurve.single(satisfaction_threshold, bid),
                    key=key,
                )
            )
        report = market.run_round()
        revenue += report.revenue
        transactions += report.transactions
        rejections += len(report.rejections)
        winners = {d.buyer: d.price_paid for d in report.deliveries}
        for agent in agents:
            won = agent.name in winners
            payment = winners.get(agent.name, 0.0)
            if won:
                welfare += true_values[agent.name]
            agent.settle(won, true_values[agent.name], payment)

    by_strategy: dict[str, StrategyStats] = {}
    for agent in agents:
        stats = by_strategy.setdefault(agent.strategy.label, StrategyStats())
        stats.agents += 1
        stats.utility += agent.utility
        stats.wins += agent.wins
        stats.spent += agent.spent
    seller_balances = {
        seller: market.ledger.balance(seller) for seller in sellers
    }
    return FullStackResult(
        rounds=n_rounds,
        revenue=revenue,
        transactions=transactions,
        rejections=rejections,
        welfare=welfare,
        by_strategy=by_strategy,
        seller_balances=seller_balances,
    )
