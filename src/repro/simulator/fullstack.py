"""Full-stack market simulation: agent populations on the real DMMS.

Section 6.1 asks for "a simulation platform where it is possible to
implement different rules and change the behavior of players".  The
mechanism-level simulator (:mod:`repro.simulator.engine`) isolates the
allocation/payment rules; this module closes the loop by running strategy
populations against a complete :class:`~repro.market.arbiter.Arbiter` —
mashup building, WTP evaluation, licensing, ledger and all — so a market
design is tested exactly as it would be deployed (Fig. 1: the same design
object flows from simulation into production).

Buyers draw a private per-round value for a data product and submit a
completeness WTP whose price step is their *strategy-distorted* bid; the
arbiter does the rest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError
from ..market.arbiter import Arbiter
from ..market.design import MarketDesign
from ..relation import Relation
from ..wtp import PriceCurve, QueryCompletenessTask, WTPFunction
from .metrics import StrategyStats, gini
from .workload import ValueSampler, build_population


@dataclass
class FullStackResult:
    rounds: int
    revenue: float
    transactions: int
    rejections: int
    welfare: float  # winners' true values
    by_strategy: dict[str, StrategyStats] = field(default_factory=dict)
    seller_balances: dict[str, float] = field(default_factory=dict)

    @property
    def seller_gini(self) -> float:
        values = [max(v, 0.0) for v in self.seller_balances.values()]
        return gini(values) if values else 0.0


def simulate_market_deployment(
    design: MarketDesign,
    datasets: list[Relation],
    wanted_attributes: list[str],
    value_sampler: ValueSampler,
    strategy_mix: dict[str, float],
    strategy_kwargs: dict[str, dict] | None = None,
    n_buyers: int = 8,
    n_rounds: int = 10,
    satisfaction_threshold: float = 0.5,
    key: str = "entity_id",
    seed: int = 0,
) -> FullStackResult:
    """Deploy ``design`` on a real arbiter and run agent populations.

    Each round, every agent draws a true value v, submits a completeness
    WTP bidding ``strategy.bid(v)``, and the arbiter clears the market.
    Utilities use the *true* values, so strategic distortion shows up as
    welfare/utility loss exactly as in the mechanism-level simulator.
    """
    if n_rounds < 1 or n_buyers < 1:
        raise SimulationError("need at least one round and one buyer")
    if not datasets:
        raise SimulationError("need at least one seller dataset")
    rng = np.random.default_rng(seed)
    arbiter = Arbiter(design)
    for i, dataset in enumerate(datasets):
        arbiter.accept_dataset(dataset, seller=f"seller_{i}")

    agents = build_population(n_buyers, strategy_mix, strategy_kwargs)
    funding = 0.0 if design.incentive != "money" else 1e7
    for agent in agents:
        arbiter.register_participant(agent.name, funding=funding)

    wanted_keys = sorted(
        {row[0] for ds in datasets for row in ds.rows}
    )
    revenue = welfare = 0.0
    transactions = rejections = 0
    for _round in range(n_rounds):
        true_values = {a.name: value_sampler(rng) for a in agents}
        for agent in agents:
            bid = agent.submit(true_values[agent.name], rng)
            if bid <= 0:
                continue
            arbiter.submit_wtp(
                WTPFunction(
                    buyer=agent.name,
                    task=QueryCompletenessTask(
                        wanted_keys=wanted_keys,
                        attributes=wanted_attributes,
                        key=key,
                    ),
                    curve=PriceCurve.single(satisfaction_threshold, bid),
                    key=key,
                )
            )
        result = arbiter.run_round()
        revenue += result.revenue
        transactions += result.transactions
        rejections += len(result.rejections)
        winners = {d.buyer: d.price_paid for d in result.deliveries}
        for agent in agents:
            won = agent.name in winners
            payment = winners.get(agent.name, 0.0)
            if won:
                welfare += true_values[agent.name]
            agent.settle(won, true_values[agent.name], payment)

    by_strategy: dict[str, StrategyStats] = {}
    for agent in agents:
        stats = by_strategy.setdefault(agent.strategy.label, StrategyStats())
        stats.agents += 1
        stats.utility += agent.utility
        stats.wins += agent.wins
        stats.spent += agent.spent
    seller_balances = {
        f"seller_{i}": arbiter.ledger.balance(f"seller_{i}")
        for i in range(len(datasets))
    }
    return FullStackResult(
        rounds=n_rounds,
        revenue=revenue,
        transactions=transactions,
        rejections=rejections,
        welfare=welfare,
        by_strategy=by_strategy,
        seller_balances=seller_balances,
    )
