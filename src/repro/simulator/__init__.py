"""Market simulator: agents, workloads, engine, coalitions, ecosystem."""

from .actors import Arbitrageur, CollectionReport, OpportunisticSeller
from .adversary import CollusionResult, simulate_collusion
from .agents import (
    STRATEGY_FACTORIES,
    BuyerAgent,
    BuyerStrategy,
    Faulty,
    Ignorant,
    Overbidding,
    RiskLover,
    Shading,
    Truthful,
    make_strategy,
)
from .engine import (
    SimulationConfig,
    compare_designs,
    empirical_ic_regret,
    simulate_mechanism,
)
from .fullstack import FullStackResult, simulate_market_deployment
from .metrics import SimulationMetrics, StrategyStats, gini
from .streaming import (
    StreamingBuyer,
    StreamingMetrics,
    simulate_streaming_market,
)
from .workload import (
    DISTRIBUTIONS,
    bimodal_values,
    build_population,
    exponential_values,
    lognormal_values,
    poisson_arrivals,
    uniform_values,
)

__all__ = [
    "BuyerAgent",
    "BuyerStrategy",
    "Truthful",
    "Shading",
    "Overbidding",
    "Ignorant",
    "RiskLover",
    "Faulty",
    "make_strategy",
    "STRATEGY_FACTORIES",
    "SimulationConfig",
    "simulate_mechanism",
    "empirical_ic_regret",
    "compare_designs",
    "SimulationMetrics",
    "StrategyStats",
    "gini",
    "uniform_values",
    "lognormal_values",
    "exponential_values",
    "bimodal_values",
    "poisson_arrivals",
    "build_population",
    "DISTRIBUTIONS",
    "simulate_collusion",
    "CollusionResult",
    "Arbitrageur",
    "OpportunisticSeller",
    "CollectionReport",
    "simulate_streaming_market",
    "StreamingMetrics",
    "StreamingBuyer",
    "simulate_market_deployment",
    "FullStackResult",
]
