"""Agent behaviour models for market simulation.

Section 6.1: "rationality assumptions made at design time may break in the
wild...  that does not account for risk-lover or ignorant players.
Furthermore, some players may be adversarial in practice, forming coalitions
with other players to game the market.  Or less dramatic, a faulty piece of
software may cause erratic behavior."

Each strategy maps a buyer's private value to the bid they actually submit.
The simulator measures what every market design must survive: how much
revenue/welfare/incentive-compatibility degrades under each population.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError


class BuyerStrategy(ABC):
    """Maps private value -> submitted bid."""

    label: str = "strategy"

    @abstractmethod
    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        ...


@dataclass
class Truthful(BuyerStrategy):
    """Reports the private value exactly — the behaviour IC designs elicit."""

    label: str = "truthful"

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        return true_value


@dataclass
class Shading(BuyerStrategy):
    """Strategically under-bids by a fixed factor (classic demand reduction)."""

    factor: float = 0.7
    label: str = "shading"

    def __post_init__(self):
        if not 0 <= self.factor <= 1:
            raise SimulationError("shading factor must be in [0, 1]")

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        return self.factor * true_value


@dataclass
class Overbidding(BuyerStrategy):
    """Bids above value (spiteful or confused under non-IC rules)."""

    factor: float = 1.3
    label: str = "overbidding"

    def __post_init__(self):
        if self.factor < 1:
            raise SimulationError("overbidding factor must be >= 1")

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        return self.factor * true_value


@dataclass
class Ignorant(BuyerStrategy):
    """Does not know its own value: bids uniformly at random in [0, scale]."""

    scale: float = 100.0
    label: str = "ignorant"

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        return float(rng.uniform(0.0, self.scale))


@dataclass
class RiskLover(BuyerStrategy):
    """Gambles: mostly shades deeply, occasionally bids far above value."""

    gamble_probability: float = 0.2
    gamble_factor: float = 2.0
    label: str = "risk_lover"

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        if rng.random() < self.gamble_probability:
            return self.gamble_factor * true_value
        return 0.4 * true_value


@dataclass
class Faulty(BuyerStrategy):
    """Erratic software: sometimes drops the bid, sometimes garbage."""

    failure_probability: float = 0.3
    label: str = "faulty"

    def bid(self, true_value: float, rng: np.random.Generator) -> float:
        roll = rng.random()
        if roll < self.failure_probability / 2:
            return 0.0  # dropped message
        if roll < self.failure_probability:
            return float(rng.uniform(0.0, 10.0 * max(true_value, 1.0)))
        return true_value


@dataclass
class BuyerAgent:
    """One simulated buyer: identity + strategy + running utility."""

    name: str
    strategy: BuyerStrategy
    utility: float = 0.0
    wins: int = 0
    spent: float = 0.0

    def submit(self, true_value: float, rng: np.random.Generator) -> float:
        return max(0.0, self.strategy.bid(true_value, rng))

    def settle(self, won: bool, true_value: float, payment: float) -> None:
        if won:
            self.utility += true_value - payment
            self.wins += 1
            self.spent += payment


STRATEGY_FACTORIES = {
    "truthful": Truthful,
    "shading": Shading,
    "overbidding": Overbidding,
    "ignorant": Ignorant,
    "risk_lover": RiskLover,
    "faulty": Faulty,
}


def make_strategy(label: str, **kwargs) -> BuyerStrategy:
    try:
        factory = STRATEGY_FACTORIES[label]
    except KeyError:
        raise SimulationError(
            f"unknown strategy {label!r}; "
            f"expected one of {sorted(STRATEGY_FACTORIES)}"
        ) from None
    return factory(**kwargs)
