"""The market simulator (Fig. 1, box 3).

"A market design that is sound on paper may suffer unexpected setbacks in
practice...  We plan to design a simulation platform where it is possible
to implement different rules and change the behavior of players, and where
it is possible to model adversarial, coalition-building, as well as risky
and ignorant players.  The simulation platform will test a market design's
robustness before deployment" (Section 6.1).

:func:`simulate_mechanism` stresses one mechanism (one good per round,
repeated) against a strategy population; :func:`empirical_ic_regret`
measures how much a single deviating buyer can gain over truthful play —
zero (up to noise) for incentive-compatible designs, positive otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..errors import SimulationError
from ..mechanisms import Bid, Mechanism
from .agents import BuyerStrategy, Truthful
from .metrics import SimulationMetrics, StrategyStats
from .workload import ValueSampler, build_population


@dataclass
class SimulationConfig:
    mechanism: Mechanism
    n_rounds: int = 50
    n_buyers: int = 20
    strategy_mix: Mapping[str, float] = field(
        default_factory=lambda: {"truthful": 1.0}
    )
    strategy_kwargs: Mapping[str, dict] | None = None
    value_sampler: ValueSampler | None = None
    seed: int = 0
    #: draw the whole (rounds × buyers) valuation matrix in one vectorized
    #: call when the sampler supports it (``sample_batch`` attribute, as the
    #: samplers in :mod:`repro.simulator.workload` do).  Off by default:
    #: batched draws consume the random stream differently, so per-call and
    #: batched runs of the same seed are equal in distribution, not bitwise.
    batch_values: bool = False

    def validate(self) -> None:
        if self.n_rounds < 1:
            raise SimulationError("need at least one round")
        if self.n_buyers < 1:
            raise SimulationError("need at least one buyer")


def simulate_mechanism(config: SimulationConfig) -> SimulationMetrics:
    """Repeatedly clear one good with the configured population."""
    config.validate()
    rng = np.random.default_rng(config.seed)
    sampler = config.value_sampler or (lambda r: float(r.uniform(0, 100)))
    agents = build_population(
        config.n_buyers, config.strategy_mix, config.strategy_kwargs
    )
    value_matrix = None
    if config.batch_values:
        sample_batch = getattr(sampler, "sample_batch", None)
        if sample_batch is not None:
            value_matrix = np.asarray(
                sample_batch(rng, config.n_rounds * len(agents)), dtype=float
            ).reshape(config.n_rounds, len(agents))
    revenue = 0.0
    welfare = 0.0
    transactions = 0
    for _round in range(config.n_rounds):
        if value_matrix is not None:
            true_values = {
                a.name: float(value_matrix[_round, i])
                for i, a in enumerate(agents)
            }
        else:
            true_values = {a.name: sampler(rng) for a in agents}
        bids = [
            Bid(a.name, a.submit(true_values[a.name], rng)) for a in agents
        ]
        outcome = config.mechanism.run(bids)
        revenue += outcome.revenue
        transactions += len(outcome.winners)
        for agent in agents:
            won = outcome.won(agent.name)
            payment = outcome.payment_of(agent.name)
            if won:
                welfare += true_values[agent.name]
            agent.settle(won, true_values[agent.name], payment)
    by_strategy: dict[str, StrategyStats] = {}
    for agent in agents:
        stats = by_strategy.setdefault(agent.strategy.label, StrategyStats())
        stats.agents += 1
        stats.utility += agent.utility
        stats.wins += agent.wins
        stats.spent += agent.spent
    return SimulationMetrics(
        rounds=config.n_rounds,
        revenue=revenue,
        welfare=welfare,
        transactions=transactions,
        by_strategy=by_strategy,
    )


def empirical_ic_regret(
    mechanism: Mechanism,
    deviation: BuyerStrategy,
    value_sampler: ValueSampler,
    n_rivals: int = 9,
    n_trials: int = 300,
    seed: int = 0,
) -> float:
    """Mean utility gain of ``deviation`` over truthful play, against
    truthful rivals drawn from the same value distribution.

    Positive regret means the design rewards manipulation (IC violated);
    <= 0 (within noise) is the signature of incentive compatibility.
    """
    if n_trials < 1 or n_rivals < 1:
        raise SimulationError("need at least one trial and one rival")
    rng = np.random.default_rng(seed)
    truthful = Truthful()
    gain = 0.0
    for _ in range(n_trials):
        my_value = value_sampler(rng)
        rival_values = [value_sampler(rng) for _ in range(n_rivals)]
        rival_bids = [
            Bid(f"r{i}", v) for i, v in enumerate(rival_values)
        ]
        state = rng.bit_generator.state
        for strategy, bucket in ((truthful, 0), (deviation, 1)):
            rng.bit_generator.state = state  # same randomness for both arms
            my_bid = max(0.0, strategy.bid(my_value, rng))
            outcome = mechanism.run(rival_bids + [Bid("me", my_bid)])
            utility = (
                my_value - outcome.payment_of("me")
                if outcome.won("me")
                else 0.0
            )
            if bucket == 0:
                truthful_utility = utility
            else:
                gain += utility - truthful_utility
    return gain / n_trials


def compare_designs(
    mechanisms: Sequence[Mechanism],
    strategy_mixes: Mapping[str, Mapping[str, float]],
    value_sampler: ValueSampler,
    n_rounds: int = 50,
    n_buyers: int = 20,
    seed: int = 0,
) -> dict[tuple[str, str], SimulationMetrics]:
    """(mechanism, population) grid of simulations — benchmark E1's core."""
    out: dict[tuple[str, str], SimulationMetrics] = {}
    for mechanism in mechanisms:
        for mix_name, mix in strategy_mixes.items():
            config = SimulationConfig(
                mechanism=mechanism,
                n_rounds=n_rounds,
                n_buyers=n_buyers,
                strategy_mix=mix,
                seed=seed,
            )
            out[(mechanism.name, mix_name)] = simulate_mechanism(config)
    return out
