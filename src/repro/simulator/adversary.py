"""Adversarial coalitions: bid-suppression collusion.

Section 6.1 requires modelling "adversarial [players], forming coalitions
with other players to game the market".  The canonical attack on
second-price-style mechanisms is *bid suppression*: coalition members agree
that only their highest-value member bids seriously while the rest bid
zero, deflating the clearing price; the winner then shares the spoils.

:func:`simulate_collusion` measures the attack's effect on arbiter revenue
and the coalition's joint gain for any mechanism — benchmark E2 sweeps the
coalition size across mechanisms.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import SimulationError
from ..mechanisms import Bid, Mechanism
from .workload import ValueSampler


@dataclass
class CollusionResult:
    mechanism: str
    coalition_size: int
    honest_revenue: float
    collusive_revenue: float
    honest_coalition_utility: float
    collusive_coalition_utility: float
    rounds: int

    @property
    def revenue_loss(self) -> float:
        return self.honest_revenue - self.collusive_revenue

    @property
    def revenue_loss_fraction(self) -> float:
        if self.honest_revenue == 0:
            return 0.0
        return self.revenue_loss / self.honest_revenue

    @property
    def coalition_gain(self) -> float:
        return (
            self.collusive_coalition_utility - self.honest_coalition_utility
        )


def simulate_collusion(
    mechanism: Mechanism,
    value_sampler: ValueSampler,
    n_buyers: int = 10,
    coalition_size: int = 3,
    n_rounds: int = 200,
    seed: int = 0,
) -> CollusionResult:
    """Compare honest rounds with rounds where a coalition suppresses bids.

    The coalition consists of the first ``coalition_size`` buyers each
    round; under collusion only its highest-value member bids (truthfully),
    the rest bid zero.  Utilities are pooled over the coalition.
    """
    if not 1 <= coalition_size <= n_buyers:
        raise SimulationError("coalition size must be in [1, n_buyers]")
    rng = np.random.default_rng(seed)
    honest_revenue = collusive_revenue = 0.0
    honest_utility = collusive_utility = 0.0
    for _ in range(n_rounds):
        values = [value_sampler(rng) for _ in range(n_buyers)]
        names = [f"b{i}" for i in range(n_buyers)]
        coalition = set(names[:coalition_size])

        honest_bids = [Bid(n, v) for n, v in zip(names, values)]
        outcome = mechanism.run(honest_bids)
        honest_revenue += outcome.revenue
        honest_utility += _coalition_utility(outcome, coalition, names, values)

        champion = max(
            range(coalition_size), key=lambda i: (values[i], -i)
        )
        collusive_bids = []
        for i, (n, v) in enumerate(zip(names, values)):
            if n in coalition and i != champion:
                collusive_bids.append(Bid(n, 0.0))
            else:
                collusive_bids.append(Bid(n, v))
        outcome = mechanism.run(collusive_bids)
        collusive_revenue += outcome.revenue
        collusive_utility += _coalition_utility(
            outcome, coalition, names, values
        )
    return CollusionResult(
        mechanism=mechanism.name,
        coalition_size=coalition_size,
        honest_revenue=honest_revenue,
        collusive_revenue=collusive_revenue,
        honest_coalition_utility=honest_utility,
        collusive_coalition_utility=collusive_utility,
        rounds=n_rounds,
    )


def _coalition_utility(outcome, coalition, names, values) -> float:
    total = 0.0
    for name, value in zip(names, values):
        if name in coalition and outcome.won(name):
            total += value - outcome.payment_of(name)
    return total
