"""Workload models: valuation distributions, arrivals, populations.

Section 6.1 lists "modeling workloads to simulate different strategy
distributions of players" as one of the database challenges of large-scale
market simulation.  This module is that workload generator: named valuation
distributions, Poisson arrival processes, and deterministic population
builders that mix strategies in given proportions.
"""

from __future__ import annotations

from typing import Callable, Mapping

import numpy as np

from ..errors import SimulationError
from .agents import BuyerAgent, make_strategy

ValueSampler = Callable[[np.random.Generator], float]


def _with_batch(sampler: ValueSampler, batch) -> ValueSampler:
    """Attach a ``sample_batch(rng, size) -> np.ndarray`` vectorized draw.

    The engine's ``batch_values`` mode uses it to fill the whole
    (rounds × buyers) valuation matrix in one call instead of one Python
    call per buyer per round."""
    sampler.sample_batch = batch
    return sampler


def uniform_values(low: float = 0.0, high: float = 100.0) -> ValueSampler:
    if high <= low:
        raise SimulationError("need high > low")
    return _with_batch(
        lambda rng: float(rng.uniform(low, high)),
        lambda rng, size: rng.uniform(low, high, size=size),
    )


def lognormal_values(mean: float = 3.0, sigma: float = 0.6) -> ValueSampler:
    if sigma <= 0:
        raise SimulationError("sigma must be positive")
    return _with_batch(
        lambda rng: float(rng.lognormal(mean, sigma)),
        lambda rng, size: rng.lognormal(mean, sigma, size=size),
    )


def exponential_values(scale: float = 50.0) -> ValueSampler:
    if scale <= 0:
        raise SimulationError("scale must be positive")
    return _with_batch(
        lambda rng: float(rng.exponential(scale)),
        lambda rng, size: rng.exponential(scale, size=size),
    )


def bimodal_values(
    low_mean: float = 20.0, high_mean: float = 80.0, high_fraction: float = 0.3
) -> ValueSampler:
    """Casual buyers + whales: the distribution reserve prices exploit."""
    if not 0 < high_fraction < 1:
        raise SimulationError("high_fraction must be in (0, 1)")

    def sample(rng: np.random.Generator) -> float:
        if rng.random() < high_fraction:
            return abs(float(rng.normal(high_mean, high_mean / 10)))
        return abs(float(rng.normal(low_mean, low_mean / 10)))

    def sample_batch(rng: np.random.Generator, size: int) -> np.ndarray:
        whale = rng.random(size) < high_fraction
        low = np.abs(rng.normal(low_mean, low_mean / 10, size=size))
        high = np.abs(rng.normal(high_mean, high_mean / 10, size=size))
        return np.where(whale, high, low)

    return _with_batch(sample, sample_batch)


DISTRIBUTIONS: dict[str, Callable[..., ValueSampler]] = {
    "uniform": uniform_values,
    "lognormal": lognormal_values,
    "exponential": exponential_values,
    "bimodal": bimodal_values,
}


def poisson_arrivals(
    rate: float, n_rounds: int, rng: np.random.Generator
) -> list[int]:
    """Number of newly arriving buyers per round (streaming markets)."""
    if rate <= 0:
        raise SimulationError("arrival rate must be positive")
    return [int(k) for k in rng.poisson(rate, size=n_rounds)]


def build_population(
    n_buyers: int,
    strategy_mix: Mapping[str, float],
    strategy_kwargs: Mapping[str, dict] | None = None,
) -> list[BuyerAgent]:
    """Create agents with strategies in the given proportions.

    Counts are assigned by largest remainder so the population is exactly
    ``n_buyers`` and deterministic for a given mix.
    """
    if n_buyers < 1:
        raise SimulationError("need at least one buyer")
    if not strategy_mix:
        raise SimulationError("strategy mix is empty")
    total = sum(strategy_mix.values())
    if total <= 0:
        raise SimulationError("strategy mix weights must sum to > 0")
    kwargs = strategy_kwargs or {}
    quotas = {
        label: n_buyers * weight / total
        for label, weight in strategy_mix.items()
    }
    counts = {label: int(q) for label, q in quotas.items()}
    remainder = n_buyers - sum(counts.values())
    by_fraction = sorted(
        quotas, key=lambda label: -(quotas[label] - counts[label])
    )
    for label in by_fraction[:remainder]:
        counts[label] += 1
    agents: list[BuyerAgent] = []
    for label in sorted(counts):
        for i in range(counts[label]):
            agents.append(
                BuyerAgent(
                    name=f"{label}_{i}",
                    strategy=make_strategy(label, **kwargs.get(label, {})),
                )
            )
    return agents
