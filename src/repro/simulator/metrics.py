"""Simulation metrics: revenue, welfare, inequality, IC regret."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SimulationError


@dataclass
class StrategyStats:
    agents: int = 0
    utility: float = 0.0
    wins: int = 0
    spent: float = 0.0

    @property
    def mean_utility(self) -> float:
        return self.utility / self.agents if self.agents else 0.0


@dataclass
class SimulationMetrics:
    """Aggregates one simulation run."""

    rounds: int
    revenue: float
    welfare: float  # sum of winners' true values
    transactions: int
    by_strategy: dict[str, StrategyStats] = field(default_factory=dict)

    @property
    def revenue_per_round(self) -> float:
        return self.revenue / self.rounds if self.rounds else 0.0

    def table_rows(self) -> list[tuple]:
        """(strategy, agents, mean utility, wins, spent) rows for reports."""
        return [
            (label, s.agents, round(s.mean_utility, 3), s.wins,
             round(s.spent, 2))
            for label, s in sorted(self.by_strategy.items())
        ]


def gini(values: list[float]) -> float:
    """Gini coefficient of a non-negative distribution (0 = equal)."""
    if not values:
        raise SimulationError("gini of an empty list")
    arr = np.sort(np.asarray(values, dtype=float))
    if np.any(arr < 0):
        raise SimulationError("gini requires non-negative values")
    total = arr.sum()
    if total == 0:
        return 0.0
    n = len(arr)
    index = np.arange(1, n + 1)
    return float((2 * np.sum(index * arr) / (n * total)) - (n + 1) / n)
