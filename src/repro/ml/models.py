"""From-scratch classifiers used inside WTP task packages.

The paper's running example is a buyer who ships "the code to train an ML
classifier" to the arbiter and only pays if the classifier reaches a target
accuracy.  These minimal numpy models are that code: deterministic, fast, and
dependency-free, so the WTP evaluator can re-run them on every candidate
mashup.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class LogisticRegression:
    """Binary logistic regression via full-batch gradient descent."""

    learning_rate: float = 0.5
    epochs: int = 300
    l2: float = 1e-3
    weights: np.ndarray | None = field(default=None, repr=False)
    bias: float = 0.0
    _mu: np.ndarray | None = field(default=None, repr=False)
    _sigma: np.ndarray | None = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "LogisticRegression":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=float)
        if x.ndim != 2 or y.ndim != 1 or x.shape[0] != y.shape[0]:
            raise ValueError("x must be (n, k) and y must be (n,)")
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        # standardize for stable optimization
        self._mu = x.mean(axis=0)
        self._sigma = x.std(axis=0)
        self._sigma[self._sigma == 0] = 1.0
        xs = (x - self._mu) / self._sigma

        n, k = xs.shape
        w = np.zeros(k)
        b = 0.0
        for _ in range(self.epochs):
            z = xs @ w + b
            p = _sigmoid(z)
            grad_w = xs.T @ (p - y) / n + self.l2 * w
            grad_b = float(np.mean(p - y))
            w -= self.learning_rate * grad_w
            b -= self.learning_rate * grad_b
        self.weights, self.bias = w, b
        return self

    def predict_proba(self, x: np.ndarray) -> np.ndarray:
        if self.weights is None:
            raise ValueError("model is not fitted")
        xs = (np.asarray(x, dtype=float) - self._mu) / self._sigma
        return _sigmoid(xs @ self.weights + self.bias)

    def predict(self, x: np.ndarray) -> np.ndarray:
        return (self.predict_proba(x) >= 0.5).astype(int)


@dataclass
class KNNClassifier:
    """k-nearest-neighbours with Euclidean distance (majority vote)."""

    k: int = 5
    _x: np.ndarray | None = field(default=None, repr=False)
    _y: np.ndarray | None = field(default=None, repr=False)

    def fit(self, x: np.ndarray, y: np.ndarray) -> "KNNClassifier":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.shape[0] != y.shape[0] or x.shape[0] == 0:
            raise ValueError("x and y must be non-empty and aligned")
        self._x, self._y = x, y
        return self

    def neighbours(self, point: np.ndarray) -> np.ndarray:
        """Indices of the k nearest training points (ties by index)."""
        d = np.linalg.norm(self._x - point, axis=1)
        k = min(self.k, len(d))
        return np.argsort(d, kind="stable")[:k]

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self._x is None:
            raise ValueError("model is not fitted")
        x = np.asarray(x, dtype=float)
        out = np.empty(x.shape[0], dtype=int)
        for i, point in enumerate(x):
            votes = self._y[self.neighbours(point)]
            out[i] = np.bincount(votes).argmax()
        return out


@dataclass
class DecisionStump:
    """One-level decision tree: best single-feature threshold split."""

    feature: int | None = None
    threshold: float = 0.0
    left_label: int = 0
    right_label: int = 1

    def fit(self, x: np.ndarray, y: np.ndarray) -> "DecisionStump":
        x = np.asarray(x, dtype=float)
        y = np.asarray(y, dtype=int)
        if x.shape[0] == 0:
            raise ValueError("cannot fit on zero samples")
        best_err = np.inf
        for j in range(x.shape[1]):
            values = np.unique(x[:, j])
            if len(values) > 32:
                values = np.quantile(values, np.linspace(0.02, 0.98, 32))
            for t in values:
                left = x[:, j] <= t
                for ll, rl in ((0, 1), (1, 0)):
                    pred = np.where(left, ll, rl)
                    err = float(np.mean(pred != y))
                    if err < best_err:
                        best_err = err
                        self.feature, self.threshold = j, float(t)
                        self.left_label, self.right_label = ll, rl
        return self

    def predict(self, x: np.ndarray) -> np.ndarray:
        if self.feature is None:
            raise ValueError("model is not fitted")
        x = np.asarray(x, dtype=float)
        return np.where(
            x[:, self.feature] <= self.threshold,
            self.left_label,
            self.right_label,
        )


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -35, 35)))
