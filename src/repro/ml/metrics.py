"""Evaluation metrics and splitting utilities for WTP tasks."""

from __future__ import annotations

import numpy as np


def accuracy(y_true: np.ndarray, y_pred: np.ndarray) -> float:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape:
        raise ValueError("shape mismatch")
    if y_true.size == 0:
        raise ValueError("empty label vectors")
    return float(np.mean(y_true == y_pred))


def precision_recall_f1(
    y_true: np.ndarray, y_pred: np.ndarray, positive: int = 1
) -> tuple[float, float, float]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    tp = int(np.sum((y_pred == positive) & (y_true == positive)))
    fp = int(np.sum((y_pred == positive) & (y_true != positive)))
    fn = int(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall
        else 0.0
    )
    return precision, recall, f1


def train_test_split(
    x: np.ndarray,
    y: np.ndarray,
    test_fraction: float = 0.3,
    seed: int = 0,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Deterministic shuffled split -> (x_train, x_test, y_train, y_test)."""
    if not 0.0 < test_fraction < 1.0:
        raise ValueError("test_fraction must be in (0, 1)")
    x = np.asarray(x)
    y = np.asarray(y)
    n = x.shape[0]
    if n < 2:
        raise ValueError("need at least 2 samples to split")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    n_test = max(1, int(round(n * test_fraction)))
    test, train = order[:n_test], order[n_test:]
    return x[train], x[test], y[train], y[test]


def cross_val_accuracy(
    model_factory,
    x: np.ndarray,
    y: np.ndarray,
    folds: int = 5,
    seed: int = 0,
) -> float:
    """Mean accuracy over k shuffled folds (fresh model per fold)."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y)
    n = x.shape[0]
    if folds < 2 or folds > n:
        raise ValueError("folds must be in [2, n_samples]")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    chunks = np.array_split(order, folds)
    scores = []
    for i in range(folds):
        test = chunks[i]
        train = np.concatenate([chunks[j] for j in range(folds) if j != i])
        model = model_factory()
        model.fit(x[train], y[train])
        scores.append(accuracy(y[test], model.predict(x[test])))
    return float(np.mean(scores))
