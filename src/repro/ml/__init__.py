"""Minimal ML substrate: classifiers + metrics for WTP task packages."""

from .metrics import (
    accuracy,
    cross_val_accuracy,
    precision_recall_f1,
    train_test_split,
)
from .models import DecisionStump, KNNClassifier, LogisticRegression

__all__ = [
    "LogisticRegression",
    "KNNClassifier",
    "DecisionStump",
    "accuracy",
    "precision_recall_f1",
    "train_test_split",
    "cross_val_accuracy",
]
