"""repro - a data market platform (reproduction of Fernandez, Subramaniam &
Franklin, "Data Market Platforms: Trading Data Assets to Solve Data
Problems", PVLDB 13(11), 2020).

The package implements the paper's full stack:

* :mod:`repro.platform` - the unified :class:`DataMarket` façade (Fig. 1's
  single DMMS) with its typed request/result API and graph-version plan cache
* :mod:`repro.relation` - provenance-carrying relational substrate
* :mod:`repro.discovery` / :mod:`repro.integration` / :mod:`repro.fusion` /
  :mod:`repro.mashup` - the Mashup Builder (Fig. 3)
* :mod:`repro.wtp` - willing-to-pay functions and data tasks
* :mod:`repro.privacy` - statistical privacy for the seller platform
* :mod:`repro.valuation` / :mod:`repro.pricing` /
  :mod:`repro.mechanisms` - the market design toolbox (Fig. 1, box 2)
* :mod:`repro.market` - the internal DMMS layer: arbiter, seller, buyer
  platforms (Fig. 2)
* :mod:`repro.simulator` - the market simulator (Fig. 1, box 3)

Quickstart — everything flows through one :class:`DataMarket` façade::

    from repro import BuyerPlatform, DataMarket, external_market

    market = DataMarket(external_market())
    market.register_dataset(my_relation, seller="acme", reserve_price=5.0)

    buyer = BuyerPlatform("b1")
    market.register_participant("b1", funding=200.0)
    market.attach_buyer_platform(buyer)
    market.submit_wtp(buyer.classification_wtp(
        labels=my_labels, features=["a", "b"],
        price_steps=[(0.8, 100.0), (0.9, 150.0)],
    ))
    report = market.run_round()      # RoundReport, stamped with `as_of`
"""

from .market import (
    Arbiter,
    BuyerPlatform,
    MarketDesign,
    RoundResult,
    SellerPlatform,
    barter_market,
    exclusive_auction_market,
    external_market,
    internal_market,
)
from .mashup import MashupBuilder
from .platform import (
    DataMarket,
    DisputeResult,
    InfoRequestView,
    InsuranceQuote,
    InsuranceSettlement,
    NegotiationReport,
    PlanResult,
    RegisterResult,
    RetireResult,
    RoundReport,
    SearchResult,
    TrustDistribution,
    TrustReport,
    WTPReceipt,
)
from .relation import Column, Relation, Schema
from .wtp import IntrinsicRequirements, PriceCurve, WTPFunction

__version__ = "0.2.0"

__all__ = [
    "DataMarket",
    "RegisterResult",
    "RetireResult",
    "SearchResult",
    "PlanResult",
    "WTPReceipt",
    "RoundReport",
    "NegotiationReport",
    "InfoRequestView",
    "DisputeResult",
    "InsuranceQuote",
    "InsuranceSettlement",
    "TrustReport",
    "TrustDistribution",
    "Arbiter",
    "SellerPlatform",
    "BuyerPlatform",
    "MarketDesign",
    "RoundResult",
    "external_market",
    "internal_market",
    "barter_market",
    "exclusive_auction_market",
    "MashupBuilder",
    "Relation",
    "Schema",
    "Column",
    "WTPFunction",
    "PriceCurve",
    "IntrinsicRequirements",
    "__version__",
]
