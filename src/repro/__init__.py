"""repro - a data market platform (reproduction of Fernandez, Subramaniam &
Franklin, "Data Market Platforms: Trading Data Assets to Solve Data
Problems", PVLDB 13(11), 2020).

The package implements the paper's full stack:

* :mod:`repro.relation` - provenance-carrying relational substrate
* :mod:`repro.discovery` / :mod:`repro.integration` / :mod:`repro.fusion` /
  :mod:`repro.mashup` - the Mashup Builder (Fig. 3)
* :mod:`repro.wtp` - willing-to-pay functions and data tasks
* :mod:`repro.privacy` - statistical privacy for the seller platform
* :mod:`repro.valuation` / :mod:`repro.pricing` /
  :mod:`repro.mechanisms` - the market design toolbox (Fig. 1, box 2)
* :mod:`repro.market` - the DMMS: arbiter, seller, buyer platforms (Fig. 2)
* :mod:`repro.simulator` - the market simulator (Fig. 1, box 3)

Quickstart::

    from repro import Arbiter, BuyerPlatform, SellerPlatform, external_market

    arbiter = Arbiter(external_market())
    seller = SellerPlatform("acme")
    seller.package(my_relation, reserve_price=5.0)
    seller.share_all(arbiter)

    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=200.0)
    arbiter.attach_buyer_platform(buyer)
    buyer.submit(arbiter, buyer.classification_wtp(
        labels=my_labels, features=["a", "b"],
        price_steps=[(0.8, 100.0), (0.9, 150.0)],
    ))
    result = arbiter.run_round()
"""

from .market import (
    Arbiter,
    BuyerPlatform,
    MarketDesign,
    RoundResult,
    SellerPlatform,
    barter_market,
    exclusive_auction_market,
    external_market,
    internal_market,
)
from .mashup import MashupBuilder
from .relation import Column, Relation, Schema
from .wtp import IntrinsicRequirements, PriceCurve, WTPFunction

__version__ = "0.1.0"

__all__ = [
    "Arbiter",
    "SellerPlatform",
    "BuyerPlatform",
    "MarketDesign",
    "RoundResult",
    "external_market",
    "internal_market",
    "barter_market",
    "exclusive_auction_market",
    "MashupBuilder",
    "Relation",
    "Schema",
    "Column",
    "WTPFunction",
    "PriceCurve",
    "IntrinsicRequirements",
    "__version__",
]
