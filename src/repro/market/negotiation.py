"""Negotiation rounds between arbiter and sellers (Section 4.1).

"If the AMS cannot find mashups that fulfill the buyer's needs, it can
describe the information it lacks and ask the sellers to complete it.
Sellers are incentivized to add that information to receive a profit."

The manager turns the mashup builder's gap report into open
:class:`InfoRequest`s with bounties proportional to observed demand.
Sellers respond with either a mapping explanation (a
:class:`~repro.integration.dod.TransformHint`) or a brand-new dataset; a
successful response closes the request and records who to credit when the
attribute later sells.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import NegotiationError
from ..integration import TransformHint
from ..relation import Relation


class RequestStatus(enum.Enum):
    OPEN = "open"
    FULFILLED = "fulfilled"
    WITHDRAWN = "withdrawn"


@dataclass
class InfoRequest:
    request_id: int
    attribute: str
    description: str
    bounty: float
    status: RequestStatus = RequestStatus.OPEN
    fulfilled_by: str | None = None


class NegotiationManager:
    """Open requests for missing attributes + seller responses."""

    def __init__(self, base_bounty: float = 1.0):
        if base_bounty < 0:
            raise NegotiationError("base bounty must be non-negative")
        self.base_bounty = base_bounty
        self._requests: list[InfoRequest] = []
        self._by_attribute: dict[str, int] = {}

    # -- arbiter side -----------------------------------------------------------
    def publish_gaps(self, demand: dict[str, int]) -> list[InfoRequest]:
        """Open (or re-price) one request per missing attribute; bounty
        scales with how many buyers asked for it."""
        out = []
        for attribute, count in sorted(demand.items()):
            bounty = self.base_bounty * count
            if attribute in self._by_attribute:
                request = self._requests[self._by_attribute[attribute]]
                if request.status is RequestStatus.OPEN:
                    request.bounty = max(request.bounty, bounty)
                    out.append(request)
                continue
            request = InfoRequest(
                request_id=len(self._requests),
                attribute=attribute,
                description=(
                    f"buyers requested attribute {attribute!r} "
                    f"{count} time(s); no seller currently supplies it"
                ),
                bounty=bounty,
            )
            self._requests.append(request)
            self._by_attribute[attribute] = request.request_id
            out.append(request)
        return out

    def open_requests(self) -> list[InfoRequest]:
        return [r for r in self._requests if r.status is RequestStatus.OPEN]

    def request(self, request_id: int) -> InfoRequest:
        try:
            return self._requests[request_id]
        except IndexError:
            raise NegotiationError(
                f"unknown request id {request_id}"
            ) from None

    # -- seller side --------------------------------------------------------------
    def respond_with_hint(
        self, request_id: int, seller: str, hint: TransformHint
    ) -> InfoRequest:
        """A seller explains how an existing column maps to the attribute."""
        request = self._open(request_id)
        if hint.target_attribute != request.attribute:
            raise NegotiationError(
                f"hint targets {hint.target_attribute!r} but the request "
                f"is for {request.attribute!r}"
            )
        request.status = RequestStatus.FULFILLED
        request.fulfilled_by = seller
        return request

    def respond_with_dataset(
        self, request_id: int, seller: str, dataset: Relation
    ) -> InfoRequest:
        """An opportunistic seller supplies a new dataset with the column."""
        request = self._open(request_id)
        if request.attribute not in dataset.schema:
            raise NegotiationError(
                f"dataset {dataset.name!r} does not contain the requested "
                f"attribute {request.attribute!r}"
            )
        request.status = RequestStatus.FULFILLED
        request.fulfilled_by = seller
        return request

    def withdraw(self, request_id: int) -> None:
        self._open(request_id).status = RequestStatus.WITHDRAWN

    def _open(self, request_id: int) -> InfoRequest:
        request = self.request(request_id)
        if request.status is not RequestStatus.OPEN:
            raise NegotiationError(
                f"request {request_id} is {request.status.value}, not open"
            )
        return request
