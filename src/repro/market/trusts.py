"""Data trusts: coalitions of individuals selling pooled personal data.

Section 4.5: "Because many times an individual's own data is not worth much
in itself — but quickly raises its value when aggregated with other users —
it is conceivable that coalitions of users would form who collectively
would choose to relinquish/sell certain personal information to benefit
together."  (The paper cites Delacroix & Lawrence's bottom-up data trusts.)

A :class:`DataTrust` pools each member's rows into one market-facing
dataset whose per-row provenance remembers the contributing member, sells
it through a normal :class:`~repro.market.seller.SellerPlatform` flow, and
distributes the trust's revenue back to members in proportion to how many
of *their* rows the sold mashups actually used (row-level token shares) —
individual-level revenue sharing that falls directly out of the provenance
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MarketError
from ..relation import ProvToken, Relation, Schema, token_shares


class TrustError(MarketError):
    pass


@dataclass
class MemberContribution:
    member: str
    rows: int
    #: [start, end) row positions inside the pooled dataset
    start: int
    end: int


class DataTrust:
    """A member coalition that pools and sells personal data together."""

    def __init__(self, name: str, schema: Schema | list):
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: list[tuple] = []
        self._contributions: list[MemberContribution] = []
        self._payouts: dict[str, float] = {}

    # -- membership -------------------------------------------------------------
    def contribute(self, member: str, relation: Relation) -> MemberContribution:
        """Add one member's personal rows to the pool."""
        if relation.schema.names != self.schema.names:
            raise TrustError(
                f"contribution schema {relation.schema.names} does not "
                f"match the trust's {self.schema.names}"
            )
        if len(relation) == 0:
            raise TrustError(f"member {member!r} contributed zero rows")
        start = len(self._rows)
        for row in relation.rows:
            self.schema.validate_row(row)
            self._rows.append(tuple(row))
        contribution = MemberContribution(
            member=member, rows=len(relation), start=start,
            end=len(self._rows),
        )
        self._contributions.append(contribution)
        return contribution

    @property
    def members(self) -> list[str]:
        return sorted({c.member for c in self._contributions})

    @property
    def total_rows(self) -> int:
        """Pooled rows across all contributions."""
        return len(self._rows)

    def member_of_row(self, row_id: int) -> str:
        for c in self._contributions:
            if c.start <= row_id < c.end:
                return c.member
        raise TrustError(f"row {row_id} belongs to no contribution")

    # -- the market-facing dataset -------------------------------------------------
    def pooled_dataset(self) -> Relation:
        """The pooled relation the trust offers on the market."""
        if not self._rows:
            raise TrustError("the trust has no contributions to pool")
        return Relation(self.name, self.schema, self._rows)

    # -- revenue distribution ---------------------------------------------------------
    def distribute(self, sold_mashup: Relation, amount: float) -> dict[str, float]:
        """Split ``amount`` over members by their rows' share in the mashup.

        Uses row-level token shares of the sold mashup's provenance: a
        member is paid in proportion to the responsibility carried by the
        pooled rows they contributed.  Rows of other datasets (the mashup
        may join external data) absorb their own share — the trust only
        distributes what its rows earned, returning the actually
        distributed total alongside the per-member ledger.
        """
        if amount < 0:
            raise TrustError("amount must be non-negative")
        member_weight: dict[str, float] = {}
        total_weight = 0.0
        for expr in sold_mashup.provenance:
            for token, share in token_shares(expr).items():
                if not isinstance(token, ProvToken):
                    continue
                if token.source != self.name:
                    continue
                member = self.member_of_row(token.row_id)
                member_weight[member] = member_weight.get(member, 0.0) + share
                total_weight += share
        if total_weight == 0:
            raise TrustError(
                f"the sold mashup used no rows of trust {self.name!r}"
            )
        payouts = {
            member: amount * weight / total_weight
            for member, weight in member_weight.items()
        }
        for member, value in payouts.items():
            self._payouts[member] = self._payouts.get(member, 0.0) + value
        return payouts

    def payout_of(self, member: str) -> float:
        return self._payouts.get(member, 0.0)

    def statement(self) -> Relation:
        """Per-member contribution/payout statement (transparency)."""
        rows = []
        for member in self.members:
            contributed = sum(
                c.rows for c in self._contributions if c.member == member
            )
            rows.append((member, contributed, round(self.payout_of(member), 6)))
        return Relation(
            f"{self.name}_statement",
            [("member", "str"), ("rows_contributed", "int"),
             ("payout", "float")],
            rows,
        )
