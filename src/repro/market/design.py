"""Market designs: the five-component rule bundles of Section 3.1.

A :class:`MarketDesign` packages (1) the elicitation protocol, (2+3) the
allocation and payment functions (a :class:`~repro.mechanisms.Mechanism`),
(4) the revenue-allocation method and (5) the revenue-sharing method, plus
the market goal and incentive type.  The presets reproduce Section 3.3's
design space:

* :func:`external_market` — independent organizations, money, maximize
  revenue (Myerson reserve / RSOP for digital goods), Shapley sharing;
* :func:`internal_market` — one organization, bonus points, maximize social
  welfare (posted price at cost, i.e. allocate to everyone who values it),
  provenance sharing;
* :func:`barter_market` — data-for-data coalitions (hospitals): credits
  earned by supplying data are the only currency.

The same DMMS (arbiter/seller/buyer platforms) runs all of them — the
plug'n'play requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MarketDesignError
from ..mechanisms import (
    ExPostMechanism,
    Mechanism,
    PostedPriceMechanism,
    RSOPAuction,
    VickreyAuction,
)

GOALS = ("revenue", "welfare", "transactions")
INCENTIVES = ("money", "points", "credits")
ELICITATIONS = ("upfront", "ex_post", "both")
REVENUE_SHARING = ("provenance", "shapley", "uniform")


@dataclass
class MarketDesign:
    """A complete, deployable rule set for one market."""

    name: str
    goal: str
    incentive: str
    elicitation: str
    mechanism: Mechanism
    revenue_sharing: str = "provenance"
    expost: ExPostMechanism | None = None
    arbiter_commission: float = 0.1
    #: grant handed to every participant at registration (points/credits
    #: markets need liquidity to bootstrap)
    participation_grant: float = 0.0
    #: incentive minted and split among contributing sellers per completed
    #: transaction — how internal markets reward sharing even when the
    #: clearing price is zero (bonus points, Section 3.3)
    seller_reward: float = 0.0

    def validate(self) -> None:
        """The 'practical' requirement of Section 3.1."""
        if self.goal not in GOALS:
            raise MarketDesignError(
                f"unknown goal {self.goal!r}; expected one of {GOALS}"
            )
        if self.incentive not in INCENTIVES:
            raise MarketDesignError(
                f"unknown incentive {self.incentive!r}; "
                f"expected one of {INCENTIVES}"
            )
        if self.elicitation not in ELICITATIONS:
            raise MarketDesignError(
                f"unknown elicitation {self.elicitation!r}"
            )
        if self.revenue_sharing not in REVENUE_SHARING:
            raise MarketDesignError(
                f"unknown revenue sharing {self.revenue_sharing!r}"
            )
        if not 0 <= self.arbiter_commission < 1:
            raise MarketDesignError(
                "arbiter commission must be in [0, 1)"
            )
        if self.participation_grant < 0:
            raise MarketDesignError("participation grant must be >= 0")
        if self.seller_reward < 0:
            raise MarketDesignError("seller reward must be >= 0")
        if self.elicitation in ("ex_post", "both") and self.expost is None:
            raise MarketDesignError(
                "ex-post elicitation requires an ExPostMechanism"
            )
        if (
            self.expost is not None
            and not self.expost.is_truthful_config()
        ):
            raise MarketDesignError(
                "ex-post mechanism is not truthful "
                "(audit_probability * penalty_multiplier < 1); strategic "
                "buyers will under-report"
            )

    def summary(self) -> str:
        return (
            f"{self.name}: goal={self.goal}, incentive={self.incentive}, "
            f"elicitation={self.elicitation}, "
            f"mechanism={self.mechanism.name}, "
            f"sharing={self.revenue_sharing}, "
            f"commission={self.arbiter_commission:.0%}"
        )


def external_market(
    commission: float = 0.1, rsop_seed: int = 0
) -> MarketDesign:
    """Money market across organizations, revenue-maximizing."""
    design = MarketDesign(
        name="external",
        goal="revenue",
        incentive="money",
        elicitation="both",
        mechanism=RSOPAuction(seed=rsop_seed),
        revenue_sharing="shapley",
        expost=ExPostMechanism(
            payment_share=0.5, audit_probability=0.3, penalty_multiplier=4.0
        ),
        arbiter_commission=commission,
    )
    design.validate()
    return design


def internal_market(grant: float = 100.0) -> MarketDesign:
    """Bonus-point market inside one organization, welfare-maximizing:
    posted price 0 + commission 0 allocates data to everyone who wants it;
    sellers are rewarded with points minted per transaction."""
    design = MarketDesign(
        name="internal",
        goal="welfare",
        incentive="points",
        elicitation="upfront",
        mechanism=PostedPriceMechanism(price=0.0),
        revenue_sharing="provenance",
        arbiter_commission=0.0,
        participation_grant=grant,
        seller_reward=10.0,
    )
    design.validate()
    return design


def barter_market(grant: float = 10.0) -> MarketDesign:
    """Credit-based data-for-data exchange (hospital coalitions)."""
    design = MarketDesign(
        name="barter",
        goal="transactions",
        incentive="credits",
        elicitation="upfront",
        mechanism=PostedPriceMechanism(price=1.0),
        revenue_sharing="uniform",
        arbiter_commission=0.0,
        participation_grant=grant,
    )
    design.validate()
    return design


def exclusive_auction_market(
    k: int = 1, reserve: float = 0.0, commission: float = 0.1
) -> MarketDesign:
    """Scarce (exclusive-license) goods cleared by a k-unit Vickrey."""
    design = MarketDesign(
        name="exclusive",
        goal="revenue",
        incentive="money",
        elicitation="upfront",
        mechanism=VickreyAuction(k=k, reserve=reserve),
        revenue_sharing="shapley",
        arbiter_commission=commission,
    )
    design.validate()
    return design
