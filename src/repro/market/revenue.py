"""The Revenue Allocation Engine (Fig. 2).

Implements Section 3.2.3's two problems:

* **revenue allocation** — "what portion of p is allocated to each row in
  m": :func:`row_allocation` splits the sale price uniformly over mashup
  rows (each row is one unit of the delivered good);
* **revenue sharing** — "how the price from each row in m is shared among
  the contributing datasets": three interchangeable methods, selected by the
  market design:

  - ``provenance`` — evaluate each row's semiring annotation with
    :func:`~repro.relation.provenance.token_shares` (joint factors split a
    row's value; alternative derivations share it) and aggregate by source
    dataset.  Exact, cheap, and faithful to how the mashup was built.
  - ``shapley`` — treat the contributing datasets as a coalition whose
    characteristic function re-evaluates the buyer's WTP on partial
    mashups; allocate by exact Shapley value.  Captures task synergies that
    provenance cannot see, at exponential cost in the (small) number of
    datasets.
  - ``uniform`` — equal split; the baseline ablation.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import IntegrationError, ValuationError
from ..integration.plan import Mashup, MashupPlan
from ..relation import Relation, source_shares
from ..valuation import CoalitionGame, exact_shapley, normalize_to_total
from ..wtp import TaskEvaluationError, WTPFunction


@dataclass(frozen=True)
class RevenueSplit:
    """The final division of one sale's proceeds."""

    total_price: float
    arbiter_fee: float
    dataset_shares: dict[str, float]
    method: str

    @property
    def sellers_total(self) -> float:
        return sum(self.dataset_shares.values())

    def conserves(self) -> bool:
        return abs(
            self.arbiter_fee + self.sellers_total - self.total_price
        ) < 1e-6


def row_allocation(mashup: Relation, price: float) -> list[float]:
    """Revenue allocation: the portion of ``price`` carried by each row."""
    n = len(mashup)
    if n == 0:
        return []
    return [price / n] * n


def provenance_shares(mashup: Relation) -> dict[str, float]:
    """Per-dataset share weights from the mashup's provenance annotations."""
    shares = source_shares(mashup.provenance)
    if not shares:
        raise ValuationError(
            "mashup rows carry no provenance; cannot share revenue"
        )
    return shares


def shapley_shares(
    mashup: Mashup,
    wtp: WTPFunction,
    resolver,
    max_players: int = 10,
) -> dict[str, float]:
    """Per-dataset Shapley weights from re-evaluating the WTP on partial
    mashups (coalitions of the plan's source datasets).

    A coalition's value is the WTP price the buyer would have paid for the
    mashup rebuilt from only those datasets; disconnected or task-breaking
    coalitions are worth zero.
    """
    sources = mashup.plan.sources()
    if len(sources) == 1:
        return {sources[0]: 1.0}

    def value(coalition: frozenset) -> float:
        """One coalition's WTP price; batched via value_batch by the
        estimator, which folds all 2^n partial-mashup evaluations into a
        single memoized pass."""
        partial = _partial_plan(mashup.plan, coalition)
        if partial is None:
            return 0.0
        try:
            relation = partial.run(resolver)
        except IntegrationError:
            return 0.0
        if len(relation) == 0:
            return 0.0
        try:
            _satisfaction, price = wtp.evaluate(relation)
        except TaskEvaluationError:
            return 0.0
        return price

    game = CoalitionGame.of(sources, value)
    return exact_shapley(game, max_players=max_players)


def _partial_plan(
    plan: MashupPlan, coalition: frozenset
) -> MashupPlan | None:
    """Restrict a plan to a dataset coalition (prefix-closed join chain).

    Coalitions not containing the plan's base are re-rooted when they are a
    single dataset (its own columns stand alone); multi-dataset coalitions
    that exclude the base would need full re-planning and are conservatively
    valued at zero.
    """
    if plan.base not in coalition:
        if len(coalition) == 1:
            (dataset,) = coalition
            equivalent = _join_equivalences(plan)
            transforms = [
                t for t in plan.transforms
                if _source_of(t.source_column) == dataset
            ]
            transformed = {t.output_column for t in transforms}
            output: dict[str, str] = {}
            for attr, src in plan.output.items():
                if attr in transformed:
                    output[attr] = attr
                elif "__" in src and _source_of(src) == dataset:
                    output[attr] = src
                elif "__" in src:
                    # join keys are shared values: remap through the join
                    # predicate to this dataset's own column when possible
                    twin = next(
                        (c for c in equivalent.get(src, ())
                         if _source_of(c) == dataset),
                        None,
                    )
                    if twin is not None:
                        output[attr] = twin
            if not output:
                return None
            return MashupPlan(
                base=dataset, joins=[], transforms=transforms, output=output
            )
        return None
    included = {plan.base}
    joins = []
    for step in plan.joins:
        if step.dataset not in coalition:
            continue
        left_source = step.left_on.split("__")[0]
        if left_source not in included:
            return None  # chain broken: cannot reach this dataset
        joins.append(step)
        included.add(step.dataset)
    transforms = [
        t for t in plan.transforms
        if t.source_column.split("__")[0] in included
    ]
    transformed = {t.output_column for t in transforms}
    output: dict[str, str] = {}
    for attr, src in plan.output.items():
        if attr in transformed:
            output[attr] = attr
        elif "__" in src and _source_of(src) in included:
            output[attr] = src
    if not output:
        return None
    return MashupPlan(
        base=plan.base, joins=joins, transforms=transforms, output=output
    )


def _source_of(qualified_column: str) -> str:
    return qualified_column.split("__")[0]


def _join_equivalences(plan: MashupPlan) -> dict[str, set[str]]:
    """Equivalence classes of qualified columns linked by join predicates."""
    classes: dict[str, set[str]] = {}
    for step in plan.joins:
        for a, b in step.pairs:
            merged = classes.get(a, {a}) | classes.get(b, {b})
            for member in merged:
                classes[member] = merged
    return classes


class RevenueAllocationEngine:
    """Selects and applies the design's revenue-sharing method."""

    def __init__(self, method: str, commission: float):
        if method not in ("provenance", "shapley", "uniform"):
            raise ValuationError(f"unknown revenue-sharing method {method!r}")
        self.method = method
        self.commission = commission

    def split(
        self,
        mashup: Mashup,
        price: float,
        wtp: WTPFunction | None = None,
        resolver=None,
    ) -> RevenueSplit:
        fee = price * self.commission
        pot = price - fee
        sources = mashup.plan.sources()
        if self.method == "uniform" or len(sources) == 1:
            weights = {s: 1.0 for s in sources}
        elif self.method == "provenance":
            weights = provenance_shares(mashup.relation)
            # datasets that contributed no surviving rows still appear with 0
            for s in sources:
                weights.setdefault(s, 0.0)
        elif len(sources) > 10:
            # exact Shapley over >10 datasets is impractical (2^n task
            # re-evaluations): fall back to provenance sharing rather than
            # stall the market round
            weights = provenance_shares(mashup.relation)
            for s in sources:
                weights.setdefault(s, 0.0)
        else:  # shapley
            if wtp is None or resolver is None:
                raise ValuationError(
                    "shapley sharing needs the WTP function and a resolver"
                )
            weights = shapley_shares(mashup, wtp, resolver)
        shares = normalize_to_total(weights, pot)
        return RevenueSplit(
            total_price=price,
            arbiter_fee=fee,
            dataset_shares=shares,
            method=self.method,
        )

    def split_batch(
        self,
        settlements: list[tuple[Mashup, float]],
        wtps: list[WTPFunction | None] | None = None,
        resolver=None,
        on_error=None,
    ) -> list["RevenueSplit | None"]:
        """Settle many sales of one round in one grouped entry point.

        The arbiter hands all of a cleared group's winners here together
        so every settlement is computed before any ledger movement.  Each
        settlement is still priced independently — the games have disjoint
        characteristic functions (one WTP each), so there is nothing to
        share *across* sales; the vectorization happens *within* each
        sale's Shapley game, whose 2^n coalitions evaluate through the
        batched ``exact_shapley`` path.

        Shapley settlement re-runs buyer-supplied task code on partial
        mashups, so with ``on_error`` given, a settlement that raises is
        contained: ``on_error(index, exception)`` is called and that slot
        comes back ``None`` — one hostile winner must not abort the other
        winners' settlements.  Without ``on_error`` exceptions propagate.
        """
        if wtps is None:
            wtps = [None] * len(settlements)
        if len(wtps) != len(settlements):
            raise ValuationError(
                "split_batch needs one WTP entry per settlement"
            )
        results: list[RevenueSplit | None] = []
        for i, ((mashup, price), wtp) in enumerate(zip(settlements, wtps)):
            if on_error is None:
                results.append(
                    self.split(mashup, price, wtp=wtp, resolver=resolver)
                )
                continue
            try:
                results.append(
                    self.split(mashup, price, wtp=wtp, resolver=resolver)
                )
            except Exception as exc:  # noqa: BLE001 - sandbox boundary
                on_error(i, exc)
                results.append(None)
        return results
