"""Accountability: tamper-evident audit log + seller-facing lineage.

Section 4.2: "The SMP must allow sellers to track how their datasets are
being sold in the market, e.g., as part of what mashups... the SMP maintains
fine-grained lineage information that is made available on demand."

Section 4.4's trust discussion motivates the hash chain: the arbiter commits
every market event to an append-only log whose records chain SHA-256 hashes,
so any later tampering is detectable by :meth:`AuditLog.verify` — the
laptop-scale stand-in for the blockchain/decentralization techniques the
paper cites (see DESIGN.md substitutions).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass

from ..errors import AuditError


@dataclass(frozen=True)
class AuditRecord:
    index: int
    kind: str
    payload: dict
    prev_hash: str
    hash: str


def _hash_record(index: int, kind: str, payload: dict, prev_hash: str) -> str:
    body = json.dumps(
        {"index": index, "kind": kind, "payload": payload, "prev": prev_hash},
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(body.encode()).hexdigest()


class AuditLog:
    """Append-only, hash-chained record of market events."""

    GENESIS = "0" * 64

    def __init__(self):
        self._records: list[AuditRecord] = []

    def append(self, kind: str, payload: dict) -> AuditRecord:
        prev = self._records[-1].hash if self._records else self.GENESIS
        index = len(self._records)
        record = AuditRecord(
            index=index,
            kind=kind,
            payload=dict(payload),
            prev_hash=prev,
            hash=_hash_record(index, kind, payload, prev),
        )
        self._records.append(record)
        return record

    def __len__(self) -> int:
        return len(self._records)

    def records(self, kind: str | None = None) -> list[AuditRecord]:
        if kind is None:
            return list(self._records)
        return [r for r in self._records if r.kind == kind]

    def verify(self) -> bool:
        """Recompute the whole chain; raise AuditError on any mismatch."""
        prev = self.GENESIS
        for i, record in enumerate(self._records):
            if record.index != i:
                raise AuditError(f"record {i} has wrong index {record.index}")
            if record.prev_hash != prev:
                raise AuditError(f"record {i} breaks the hash chain")
            expected = _hash_record(i, record.kind, record.payload, prev)
            if record.hash != expected:
                raise AuditError(f"record {i} content was tampered with")
            prev = record.hash
        return True


@dataclass(frozen=True)
class SaleRecord:
    """One dataset's participation in one sold mashup."""

    transaction_id: int
    dataset: str
    buyer: str
    mashup_sources: tuple[str, ...]
    dataset_share: float
    total_price: float


class LineageStore:
    """Per-dataset sales lineage, queryable by sellers on demand."""

    def __init__(self):
        self._by_dataset: dict[str, list[SaleRecord]] = {}

    def record_sale(
        self,
        transaction_id: int,
        buyer: str,
        total_price: float,
        shares: dict[str, float],
        mashup_sources: list[str],
    ) -> None:
        for dataset, share in shares.items():
            record = SaleRecord(
                transaction_id=transaction_id,
                dataset=dataset,
                buyer=buyer,
                mashup_sources=tuple(mashup_sources),
                dataset_share=share,
                total_price=total_price,
            )
            self._by_dataset.setdefault(dataset, []).append(record)

    def sales_of(self, dataset: str) -> list[SaleRecord]:
        return list(self._by_dataset.get(dataset, []))

    def revenue_of(self, dataset: str) -> float:
        return sum(r.dataset_share for r in self.sales_of(dataset))

    def mashups_containing(self, dataset: str) -> list[tuple[str, ...]]:
        return [r.mashup_sources for r in self.sales_of(dataset)]

    def datasets(self) -> list[str]:
        return sorted(self._by_dataset)
