"""The Buyer Management Platform (Section 4.3, Fig. 2 right).

Helps buyers *define* WTP functions without hand-writing them (the paper's
"interfaces that permit descriptions of a multiplicity of tasks"), submit
them to an arbiter, receive deliveries, and — for exploratory buyers — file
the ex-post value report after using the data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import MarketError
from ..relation import Relation
from ..wtp import (
    AggregateAccuracyTask,
    ClassificationTask,
    ExplorationTask,
    IntrinsicRequirements,
    PriceCurve,
    QueryCompletenessTask,
    WTPFunction,
)


@dataclass
class DeliveredMashup:
    transaction_id: int
    relation: Relation
    price_paid: float
    plan_description: str


class BuyerPlatform:
    """One buyer's local tooling; talks to an arbiter to acquire mashups."""

    def __init__(self, buyer_id: str):
        self.buyer_id = buyer_id
        self.deliveries: list[DeliveredMashup] = []

    # -- WTP builders (the interface layer of Section 3.2.2.1) -----------------
    def classification_wtp(
        self,
        labels: Relation,
        features: Sequence[str],
        price_steps: Sequence[tuple[float, float]],
        key: str = "entity_id",
        examples: Relation | None = None,
        intrinsic: IntrinsicRequirements | None = None,
        **task_kwargs,
    ) -> WTPFunction:
        """'I will pay $X for >=80% accuracy' in one call."""
        return WTPFunction(
            buyer=self.buyer_id,
            task=ClassificationTask(
                labels=labels, features=list(features), key=key, **task_kwargs
            ),
            curve=PriceCurve(tuple(price_steps)),
            intrinsic=intrinsic or IntrinsicRequirements(),
            key=key,
            examples=examples,
        )

    def completeness_wtp(
        self,
        wanted_keys: Sequence,
        attributes: Sequence[str],
        price_steps: Sequence[tuple[float, float]],
        key: str = "entity_id",
    ) -> WTPFunction:
        return WTPFunction(
            buyer=self.buyer_id,
            task=QueryCompletenessTask(
                wanted_keys=list(wanted_keys),
                attributes=list(attributes),
                key=key,
            ),
            curve=PriceCurve(tuple(price_steps)),
            key=key,
        )

    def aggregate_wtp(
        self,
        attribute: str,
        reference_value: float,
        price_steps: Sequence[tuple[float, float]],
        aggregate: str = "mean",
    ) -> WTPFunction:
        return WTPFunction(
            buyer=self.buyer_id,
            task=AggregateAccuracyTask(attribute, reference_value, aggregate),
            curve=PriceCurve(tuple(price_steps)),
        )

    def exploration_wtp(
        self,
        attributes: Sequence[str],
        max_budget: float,
        key: str | None = None,
    ) -> WTPFunction:
        """Ex-post buyer: gets data first, reports realized value later."""
        return WTPFunction(
            buyer=self.buyer_id,
            task=ExplorationTask(list(attributes)),
            curve=PriceCurve.single(0.0, max_budget),
            elicitation="ex_post",
            key=key,
        )

    # -- market interaction -------------------------------------------------------
    def submit(self, arbiter, wtp: WTPFunction) -> None:
        if wtp.buyer != self.buyer_id:
            raise MarketError(
                f"WTP is signed by {wtp.buyer!r}, not {self.buyer_id!r}"
            )
        arbiter.submit_wtp(wtp)

    def receive(self, delivery: "DeliveredMashup") -> None:
        self.deliveries.append(delivery)

    @property
    def latest(self) -> DeliveredMashup:
        if not self.deliveries:
            raise MarketError(f"buyer {self.buyer_id!r} has no deliveries")
        return self.deliveries[-1]

    def report_expost_value(
        self, arbiter, transaction_id: int, realized_value: float
    ) -> None:
        """File the a-posteriori value report for an ex-post delivery."""
        arbiter.receive_expost_report(
            self.buyer_id, transaction_id, realized_value
        )
