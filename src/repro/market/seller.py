"""The Seller Management Platform (Section 4.2, Fig. 2 left).

Wraps one seller's interaction with the arbiter: packaging datasets (bulk
CSV directories or in-memory relations), optional anonymization before
sharing (k-anonymity or ε-DP perturbation drawn from a privacy budget),
reserve prices, licenses, accountability queries, and negotiation responses.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import MarketError
from ..integration import TransformHint
from ..privacy import PrivacyAccountant, anonymize, perturb_numeric_column
from ..relation import Relation, read_csv_dir
from .licensing import ContextualIntegrityPolicy, License


@dataclass
class SellerOffer:
    """A dataset as the seller wants it traded."""

    relation: Relation
    reserve_price: float = 0.0
    license: License | None = None
    policy: ContextualIntegrityPolicy | None = None


def share_dataset(
    market,
    relation: Relation,
    seller: str,
    reserve_price: float = 0.0,
    license: License | None = None,
    policy: ContextualIntegrityPolicy | None = None,
) -> None:
    """Register ``relation`` with a market, whichever API it speaks.

    Prefers the :class:`~repro.platform.DataMarket` façade's typed
    register/update split; falls back to a bare arbiter's
    ``accept_dataset``.  The single dispatch point for every seller-side
    helper (seller platforms, opportunistic sellers, arbitrageurs).
    """
    if hasattr(market, "register_dataset"):
        op = (
            market.update_dataset
            if relation.name in market.licenses
            else market.register_dataset
        )
        op(
            relation,
            seller,
            reserve_price=reserve_price,
            license=license,
            policy=policy,
        )
    else:
        market.accept_dataset(
            relation,
            seller=seller,
            reserve_price=reserve_price,
            license=license,
            policy=policy,
        )


class SellerPlatform:
    """One seller's local tooling; talks to an arbiter to share data."""

    def __init__(self, seller_id: str, privacy_budget: float | None = None):
        self.seller_id = seller_id
        self.accountant = PrivacyAccountant()
        self._default_budget = privacy_budget
        self._offers: dict[str, SellerOffer] = {}

    # -- packaging -------------------------------------------------------------
    def package(
        self,
        relation: Relation,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> SellerOffer:
        if reserve_price < 0:
            raise MarketError("reserve price must be non-negative")
        if relation.name in self._offers:
            raise MarketError(
                f"dataset {relation.name!r} is already packaged"
            )
        offer = SellerOffer(relation, reserve_price, license, policy)
        self._offers[relation.name] = offer
        if self._default_budget is not None:
            self.accountant.register(relation.name, self._default_budget)
        return offer

    def package_csv_dir(self, path: str, reserve_price: float = 0.0) -> list[SellerOffer]:
        """Bulk interface: share every CSV in a directory (data-lake mode)."""
        return [
            self.package(rel, reserve_price=reserve_price)
            for rel in read_csv_dir(path)
        ]

    @property
    def offers(self) -> list[SellerOffer]:
        return [self._offers[k] for k in sorted(self._offers)]

    def offer(self, dataset: str) -> SellerOffer:
        try:
            return self._offers[dataset]
        except KeyError:
            raise MarketError(
                f"seller {self.seller_id!r} has no offer {dataset!r}"
            ) from None

    # -- privacy pre-processing ---------------------------------------------------
    def anonymized_offer(
        self,
        dataset: str,
        quasi_identifiers: list[str],
        k: int,
        suppress: list[str] | None = None,
    ) -> SellerOffer:
        """Replace an offer's relation by its k-anonymized version."""
        offer = self.offer(dataset)
        safe = anonymize(
            offer.relation, quasi_identifiers, k, suppress=suppress
        ).with_provenance_root(offer.relation.name)
        offer.relation = safe.renamed(offer.relation.name)
        return offer

    def dp_offer(
        self,
        dataset: str,
        column: str,
        epsilon: float,
        rng: np.random.Generator,
        sensitivity: float = 1.0,
    ) -> SellerOffer:
        """Replace an offer's numeric column by an ε-DP perturbed copy,
        drawing ε from this seller's privacy budget."""
        offer = self.offer(dataset)
        if dataset in self.accountant:
            self.accountant.spend(dataset, epsilon, purpose=f"perturb {column}")
        noisy = perturb_numeric_column(
            offer.relation, column, epsilon, rng, sensitivity=sensitivity
        ).renamed(offer.relation.name)
        offer.relation = noisy.with_provenance_root(offer.relation.name)
        return offer

    # -- market interaction -----------------------------------------------------
    def share_all(self, market) -> None:
        """Register every packaged offer with the market.

        Accepts the :class:`~repro.platform.DataMarket` façade (preferring
        its typed register/update operations) or a bare arbiter.
        """
        for offer in self.offers:
            share_dataset(
                market,
                offer.relation,
                self.seller_id,
                reserve_price=offer.reserve_price,
                license=offer.license,
                policy=offer.policy,
            )

    def my_sales(self, arbiter) -> dict[str, float]:
        """Accountability: revenue earned per dataset (from the lineage)."""
        return {
            name: arbiter.lineage.revenue_of(name)
            for name in sorted(self._offers)
        }

    def respond_to_request(
        self, arbiter, request_id: int, hint: TransformHint
    ) -> None:
        """Answer a negotiation round with mapping information."""
        arbiter.negotiation.respond_with_hint(
            request_id, self.seller_id, hint
        )
        arbiter.builder.add_hint(hint)
