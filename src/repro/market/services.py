"""Arbiter services: recommendations, with the leakage caveat.

Section 4.1: "the arbiter could recommend datasets to buyers based on what
similar buyers have purchased before.  This kind of service, however, leaks
information that was previously private to other buyers."  The recommender
is therefore explicit about that externality: every recommendation carries a
``leaks_information`` flag and the co-purchase evidence behind it, so market
designs can price or disable the service.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Recommendation:
    dataset: str
    score: float
    #: buyers whose history produced this recommendation — the leaked signal
    evidence_buyers: tuple[str, ...]
    leaks_information: bool = True


class RecommendationService:
    """Item-based collaborative filtering over purchase histories."""

    def __init__(self):
        self._purchases: dict[str, set[str]] = {}

    def record_purchase(self, buyer: str, datasets: list[str]) -> None:
        self._purchases.setdefault(buyer, set()).update(datasets)

    def purchases_of(self, buyer: str) -> set[str]:
        return set(self._purchases.get(buyer, set()))

    def recommend(self, buyer: str, limit: int = 5) -> list[Recommendation]:
        """Datasets bought by buyers with overlapping histories."""
        mine = self._purchases.get(buyer, set())
        scores: dict[str, float] = {}
        evidence: dict[str, set[str]] = {}
        for other, theirs in self._purchases.items():
            if other == buyer or not mine:
                continue
            overlap = len(mine & theirs) / len(mine | theirs)
            if overlap == 0:
                continue
            for dataset in theirs - mine:
                scores[dataset] = scores.get(dataset, 0.0) + overlap
                evidence.setdefault(dataset, set()).add(other)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return [
            Recommendation(
                dataset=d,
                score=round(s, 6),
                evidence_buyers=tuple(sorted(evidence[d])),
            )
            for d, s in ranked[:limit]
        ]
