"""A data-insurance sketch (Section 7.1).

"Once data has a value and a price, it is possible to build an insurance
market around it...  How liable is a company that suffers a data breach?...
Can/Should insurance cover these cases?"  And from the FAQ: "it is possible
to envision a data insurance market, where a different entity than the
seller (i.e., the arbiter) takes liability for any legal problems caused by
that data."

Minimal actuarial model: the insurer quotes a premium
``breach_probability · liability · (1 + loading)`` per period, collects it
through the ledger, and pays out the liability on a filed breach claim.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import MarketError
from .transaction import Ledger


class InsuranceError(MarketError):
    pass


@dataclass
class InsurancePolicy:
    policy_id: int
    dataset: str
    insured: str  # account that pays premiums and receives payouts
    liability: float  # payout on breach
    breach_probability: float  # insurer's risk estimate per period
    loading: float = 0.25  # insurer margin
    active: bool = True
    claims_paid: int = 0

    @property
    def premium(self) -> float:
        return self.breach_probability * self.liability * (1.0 + self.loading)


class InsuranceDesk:
    """Issues policies, collects premiums, settles breach claims."""

    INSURER_ACCOUNT = "insurer"

    def __init__(self, ledger: Ledger):
        self.ledger = ledger
        self.ledger.ensure_account(self.INSURER_ACCOUNT)
        self._policies: list[InsurancePolicy] = []

    def underwrite(
        self,
        dataset: str,
        insured: str,
        liability: float,
        breach_probability: float,
        loading: float = 0.25,
    ) -> InsurancePolicy:
        if liability <= 0:
            raise InsuranceError("liability must be positive")
        if not 0 < breach_probability < 1:
            raise InsuranceError("breach probability must be in (0, 1)")
        if loading < 0:
            raise InsuranceError("loading must be non-negative")
        policy = InsurancePolicy(
            policy_id=len(self._policies),
            dataset=dataset,
            insured=insured,
            liability=liability,
            breach_probability=breach_probability,
            loading=loading,
        )
        self._policies.append(policy)
        return policy

    def policy(self, policy_id: int) -> InsurancePolicy:
        try:
            return self._policies[policy_id]
        except IndexError:
            raise InsuranceError(f"unknown policy {policy_id}") from None

    def collect_premium(self, policy_id: int) -> float:
        policy = self.policy(policy_id)
        if not policy.active:
            raise InsuranceError(f"policy {policy_id} is inactive")
        self.ledger.transfer(
            policy.insured,
            self.INSURER_ACCOUNT,
            policy.premium,
            memo=f"premium policy={policy_id} dataset={policy.dataset}",
        )
        return policy.premium

    def file_claim(self, policy_id: int) -> float:
        """A breach occurred: pay the liability and retire the policy."""
        policy = self.policy(policy_id)
        if not policy.active:
            raise InsuranceError(f"policy {policy_id} is inactive")
        self.ledger.transfer(
            self.INSURER_ACCOUNT,
            policy.insured,
            policy.liability,
            memo=f"claim policy={policy_id} dataset={policy.dataset}",
        )
        policy.claims_paid += 1
        policy.active = False
        return policy.liability

    def solvency(self) -> float:
        return self.ledger.balance(self.INSURER_ACCOUNT)

    def expected_profit_per_period(self) -> float:
        """Sum over active policies of premium - p·liability (the loading)."""
        return sum(
            p.premium - p.breach_probability * p.liability
            for p in self._policies
            if p.active
        )
