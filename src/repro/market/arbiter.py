"""The Arbiter Management Platform — Fig. 2's pipeline, end to end.

One call to :meth:`Arbiter.run_round` executes the architecture left to
right:

1. **Mashup Builder** — every queued WTP becomes a
   :class:`~repro.integration.dod.MashupRequest`; candidate mashups come
   back ranked ([m1..mn] in the figure);
2. **WTP Evaluator** — each candidate is filtered by the buyer's intrinsic
   constraints, then the task package runs on it to measure the degree of
   satisfaction and the resulting wtp price ([mi: wtpi]);
3. **Pricing Engine** — buyers bidding on the same good (identical mashup
   content) are cleared by the market design's mechanism, which fixes
   winners and payments;
4. **Transaction Support** — licensing and reserve-price checks, then the
   ledger moves the incentive and the buyer receives the mashup;
5. **Revenue Allocation Engine** — the payment is split between arbiter
   commission and contributing datasets (provenance / Shapley / uniform per
   the design), and the lineage + audit log record everything.

Ex-post buyers (Section 3.2.2.2) skip steps 2–3: they receive the best
*coverage* mashup immediately and settle later through
:meth:`receive_expost_report` / :meth:`settle_expost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import LicensingError, MarketError
from ..integration import Mashup, MashupRequest
from ..mashup import MashupBuilder
from ..mechanisms import Bid, ExPostReport
from ..wtp import WTPFunction
from .accountability import AuditLog, LineageStore
from .buyer import DeliveredMashup
from .design import MarketDesign
from .licensing import ContextualIntegrityPolicy, License, LicenseRegistry
from .negotiation import NegotiationManager
from .revenue import RevenueAllocationEngine, RevenueSplit
from .services import RecommendationService
from .transaction import Ledger

ARBITER_ACCOUNT = "arbiter"


@dataclass
class Delivery:
    """A completed upfront transaction."""

    transaction_id: int
    buyer: str
    mashup: Mashup
    satisfaction: float
    bid: float
    price_paid: float
    split: RevenueSplit


@dataclass
class Rejection:
    buyer: str
    reason: str


@dataclass
class ExPostDelivery:
    """Data handed out before payment; awaiting the buyer's value report."""

    transaction_id: int
    buyer: str
    mashup: Mashup
    reported_value: float | None = None
    settled: bool = False


@dataclass
class RoundResult:
    deliveries: list[Delivery] = field(default_factory=list)
    rejections: list[Rejection] = field(default_factory=list)
    expost_deliveries: list[ExPostDelivery] = field(default_factory=list)

    @property
    def revenue(self) -> float:
        return sum(d.price_paid for d in self.deliveries)

    @property
    def transactions(self) -> int:
        return len(self.deliveries)


class Arbiter:
    """The arbiter platform: one instance per deployed market design."""

    def __init__(self, design: MarketDesign, builder: MashupBuilder | None = None):
        design.validate()
        self.design = design
        self.builder = builder or MashupBuilder()
        self.ledger = Ledger(unit=design.incentive)
        self.ledger.ensure_account(ARBITER_ACCOUNT)
        self.audit = AuditLog()
        self.lineage = LineageStore()
        self.licenses = LicenseRegistry()
        self.negotiation = NegotiationManager()
        self.recommendations = RecommendationService()
        self.revenue_engine = RevenueAllocationEngine(
            design.revenue_sharing, design.arbiter_commission
        )
        self._pending_wtps: list[WTPFunction] = []
        self._reserves: dict[str, float] = {}
        self._expost: dict[int, ExPostDelivery] = {}
        self._tx_counter = 0
        self._buyer_platforms: dict[str, object] = {}
        self.audit.append("market_created", {"design": design.summary()})

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_participant(self, name: str, funding: float = 0.0) -> None:
        """Open a ledger account (+ grant + optional funding)."""
        if name in self.ledger:
            raise MarketError(f"participant {name!r} already registered")
        self.ledger.open_account(name)
        grant = self.design.participation_grant
        if grant > 0:
            self.ledger.mint(name, grant, memo="participation grant")
        if funding > 0:
            self.ledger.mint(name, funding, memo="external funding")
        self.audit.append(
            "participant_registered", {"name": name, "funding": funding}
        )

    def attach_buyer_platform(self, platform) -> None:
        """Deliveries will be pushed to the platform's ``receive``."""
        self._buyer_platforms[platform.buyer_id] = platform

    def accept_dataset(
        self,
        relation,
        seller: str,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> None:
        """Fig. 2's seller→arbiter dataset flow."""
        if seller not in self.ledger:
            self.register_participant(seller)
        if reserve_price < 0:
            raise MarketError("reserve price must be non-negative")
        self.builder.add_dataset(relation, owner=seller)
        self.licenses.register(
            relation.name, owner=seller, license=license, policy=policy
        )
        self._reserves[relation.name] = reserve_price
        self.audit.append(
            "dataset_accepted",
            {
                "dataset": relation.name,
                "seller": seller,
                "rows": len(relation),
                "reserve": reserve_price,
            },
        )

    def submit_wtp(self, wtp: WTPFunction) -> None:
        if wtp.buyer not in self.ledger:
            raise MarketError(
                f"buyer {wtp.buyer!r} is not registered; "
                "call register_participant first"
            )
        if wtp.elicitation == "ex_post" and self.design.elicitation == "upfront":
            raise MarketError(
                "this market design does not support ex-post elicitation"
            )
        if wtp.elicitation == "upfront" and self.design.elicitation == "ex_post":
            raise MarketError(
                "this market design only supports ex-post elicitation"
            )
        self._pending_wtps.append(wtp)
        self.audit.append(
            "wtp_submitted",
            {"buyer": wtp.buyer, "attributes": wtp.attributes,
             "elicitation": wtp.elicitation},
        )

    # ------------------------------------------------------------------
    # the round
    # ------------------------------------------------------------------
    def run_round(self, context: str = "*") -> RoundResult:
        result = RoundResult()
        wtps, self._pending_wtps = self._pending_wtps, []

        offers: list[tuple[WTPFunction, Mashup, float, float]] = []
        for wtp in wtps:
            if wtp.elicitation == "ex_post":
                self._deliver_expost(wtp, result)
                continue
            offer = self._best_offer(wtp, result)
            if offer is not None:
                offers.append(offer)

        # Pricing Engine: group offers by identical good, clear per group
        groups: dict[str, list[tuple[WTPFunction, Mashup, float, float]]] = {}
        for offer in offers:
            key = offer[1].relation.content_hash()
            groups.setdefault(key, []).append(offer)

        for group in groups.values():
            self._clear_group(group, result, context)

        # Negotiation Rounds: publish unmet demand to sellers
        gaps = self.builder.gap_report()
        if gaps.demand:
            self.negotiation.publish_gaps(gaps.demand)
        return result

    # -- step 1+2: mashup builder + WTP evaluator ------------------------------
    def _best_offer(self, wtp: WTPFunction, result: RoundResult):
        request = MashupRequest(
            attributes=wtp.attributes, key=wtp.key, examples=wtp.examples
        )
        mashups = self.builder.build(request)
        if not mashups:
            result.rejections.append(
                Rejection(wtp.buyer, "no mashup could be assembled")
            )
            return None
        best = None
        for mashup in mashups:
            if not wtp.intrinsic.satisfied_by(
                mashup.relation, mashup.sources(), self.builder.metadata
            ):
                continue
            # The WTP evaluator runs *buyer-supplied code* on arbiter
            # hardware (Section 3.2.2.1): any crash must be contained and
            # recorded, never propagated into the market round.
            try:
                evaluated = wtp.try_evaluate(mashup.relation)
            except Exception as exc:  # noqa: BLE001 - sandbox boundary
                self.audit.append(
                    "wtp_evaluation_crashed",
                    {"buyer": wtp.buyer, "error": repr(exc)},
                )
                evaluated = None
            if evaluated is None:
                continue
            satisfaction, price = evaluated
            if not _sane_evaluation(satisfaction, price):
                self.audit.append(
                    "wtp_evaluation_rejected",
                    {"buyer": wtp.buyer, "satisfaction": repr(satisfaction),
                     "price": repr(price)},
                )
                continue
            if best is None or price > best[3] or (
                price == best[3] and satisfaction > best[2]
            ):
                best = (wtp, mashup, satisfaction, price)
        if best is None:
            result.rejections.append(
                Rejection(wtp.buyer, "no candidate mashup passed evaluation")
            )
            return None
        if best[3] <= 0:
            result.rejections.append(
                Rejection(
                    wtp.buyer,
                    f"satisfaction {best[2]:.3f} below the buyer's paying "
                    f"threshold",
                )
            )
            return None
        return best

    # -- step 3..5: pricing, transaction, revenue allocation ---------------------
    def _clear_group(self, group, result: RoundResult, context: str) -> None:
        bids = [Bid(wtp.buyer, price) for wtp, _m, _s, price in group]
        outcome = self.design.mechanism.run(bids)
        by_buyer = {wtp.buyer: (wtp, m, s, p) for wtp, m, s, p in group}
        for bid in bids:
            if not outcome.won(bid.bidder):
                result.rejections.append(
                    Rejection(bid.bidder, "outbid in the clearing mechanism")
                )
        for buyer in outcome.winners:
            wtp, mashup, satisfaction, bid_price = by_buyer[buyer]
            payment = outcome.payment_of(buyer)
            self._execute_transaction(
                wtp, mashup, satisfaction, bid_price, payment, result, context
            )

    def _execute_transaction(
        self,
        wtp: WTPFunction,
        mashup: Mashup,
        satisfaction: float,
        bid_price: float,
        payment: float,
        result: RoundResult,
        context: str,
    ) -> None:
        sources = mashup.plan.sources()
        # licensing + contextual integrity
        try:
            for dataset in sources:
                self.licenses.check_sale(dataset, wtp.buyer, context)
        except LicensingError as exc:
            result.rejections.append(Rejection(wtp.buyer, str(exc)))
            self.audit.append(
                "sale_blocked", {"buyer": wtp.buyer, "reason": str(exc)}
            )
            return
        # exclusivity tax (Section 4.4)
        taxed = payment
        for dataset in sources:
            license = self.licenses.license_of(dataset)
            taxed = license.price_with_tax(taxed) if taxed else taxed
        split = self.revenue_engine.split(
            mashup, taxed, wtp=wtp, resolver=self.builder.metadata.relation
        )
        # reserve prices: every dataset's share must clear its reserve
        for dataset in sources:
            reserve = self._reserves.get(dataset, 0.0)
            if split.dataset_shares.get(dataset, 0.0) < reserve - 1e-9:
                result.rejections.append(
                    Rejection(
                        wtp.buyer,
                        f"dataset {dataset!r} reserve {reserve:.2f} not met "
                        f"(share {split.dataset_shares.get(dataset, 0.0):.2f})",
                    )
                )
                self.audit.append(
                    "sale_blocked",
                    {"buyer": wtp.buyer, "dataset": dataset,
                     "reason": "reserve not met"},
                )
                return
        # move the incentive
        try:
            if taxed > 0:
                self.ledger.transfer(
                    wtp.buyer, ARBITER_ACCOUNT, taxed, memo="purchase"
                )
        except MarketError as exc:
            result.rejections.append(Rejection(wtp.buyer, str(exc)))
            return
        for dataset, share in split.dataset_shares.items():
            if share > 0:
                self.ledger.transfer(
                    ARBITER_ACCOUNT,
                    self.licenses.owner_of(dataset),
                    share,
                    memo=f"revenue share for {dataset}",
                )
        if self.design.seller_reward > 0 and sources:
            per_dataset = self.design.seller_reward / len(sources)
            for dataset in sources:
                self.ledger.mint(
                    self.licenses.owner_of(dataset),
                    per_dataset,
                    memo=f"seller reward for {dataset}",
                )
        # finalize
        tx_id = self._next_tx()
        for dataset in sources:
            self.licenses.record_sale(dataset, wtp.buyer)
        self.lineage.record_sale(
            tx_id, wtp.buyer, taxed, split.dataset_shares, sources
        )
        self.recommendations.record_purchase(wtp.buyer, sources)
        self.audit.append(
            "transaction",
            {
                "tx": tx_id,
                "buyer": wtp.buyer,
                "sources": sources,
                "satisfaction": round(satisfaction, 6),
                "bid": round(bid_price, 6),
                "paid": round(taxed, 6),
            },
        )
        delivery = Delivery(
            transaction_id=tx_id,
            buyer=wtp.buyer,
            mashup=mashup,
            satisfaction=satisfaction,
            bid=bid_price,
            price_paid=taxed,
            split=split,
        )
        result.deliveries.append(delivery)
        platform = self._buyer_platforms.get(wtp.buyer)
        if platform is not None:
            platform.receive(
                DeliveredMashup(
                    transaction_id=tx_id,
                    relation=mashup.relation,
                    price_paid=taxed,
                    plan_description=mashup.plan.describe(),
                )
            )

    # -- ex-post flow --------------------------------------------------------------
    def _deliver_expost(self, wtp: WTPFunction, result: RoundResult) -> None:
        if self.design.expost is None:
            result.rejections.append(
                Rejection(wtp.buyer, "market has no ex-post mechanism")
            )
            return
        request = MashupRequest(
            attributes=wtp.attributes, key=wtp.key, examples=wtp.examples
        )
        mashups = self.builder.build(request)
        if not mashups:
            result.rejections.append(
                Rejection(wtp.buyer, "no mashup could be assembled")
            )
            return
        mashup = max(mashups, key=lambda m: m.coverage)
        tx_id = self._next_tx()
        delivery = ExPostDelivery(tx_id, wtp.buyer, mashup)
        self._expost[tx_id] = delivery
        result.expost_deliveries.append(delivery)
        self.audit.append(
            "expost_delivered",
            {"tx": tx_id, "buyer": wtp.buyer, "sources": mashup.plan.sources()},
        )
        platform = self._buyer_platforms.get(wtp.buyer)
        if platform is not None:
            platform.receive(
                DeliveredMashup(
                    transaction_id=tx_id,
                    relation=mashup.relation,
                    price_paid=0.0,
                    plan_description=mashup.plan.describe(),
                )
            )

    def receive_expost_report(
        self, buyer: str, transaction_id: int, reported_value: float
    ) -> None:
        delivery = self._expost.get(transaction_id)
        if delivery is None or delivery.buyer != buyer:
            raise MarketError(
                f"no ex-post delivery {transaction_id} for buyer {buyer!r}"
            )
        if delivery.settled:
            raise MarketError(f"delivery {transaction_id} already settled")
        if reported_value < 0:
            raise MarketError("reported value must be non-negative")
        delivery.reported_value = reported_value
        self.audit.append(
            "expost_reported",
            {"tx": transaction_id, "buyer": buyer, "reported": reported_value},
        )

    def settle_expost(
        self,
        rng: np.random.Generator,
        true_values: dict[int, float] | None = None,
    ) -> list[Delivery]:
        """Charge all reported ex-post deliveries through the mechanism.

        ``true_values`` (tx_id -> v) is the auditor's ground truth; in a
        simulation the engine passes the buyers' actual realized values, in
        production it would come from usage metering.  Missing entries mean
        the audit trusts the report.
        """
        mechanism = self.design.expost
        if mechanism is None:
            raise MarketError("market has no ex-post mechanism")
        settled: list[Delivery] = []
        for tx_id, delivery in sorted(self._expost.items()):
            if delivery.settled or delivery.reported_value is None:
                continue
            true_value = (true_values or {}).get(
                tx_id, delivery.reported_value
            )
            charge = mechanism.charge(
                ExPostReport(delivery.buyer, delivery.reported_value, true_value),
                rng,
            )
            amount = charge.total
            if amount > 0:
                self.ledger.transfer(
                    delivery.buyer, ARBITER_ACCOUNT, amount,
                    memo=f"ex-post settlement tx={tx_id}",
                )
            # ex-post settlements have no WTP to re-evaluate, so shapley
            # markets fall back to provenance sharing here
            engine = self.revenue_engine
            if engine.method == "shapley":
                engine = RevenueAllocationEngine(
                    "provenance", self.design.arbiter_commission
                )
            split = engine.split(delivery.mashup, amount)
            for dataset, share in split.dataset_shares.items():
                if share > 0:
                    self.ledger.transfer(
                        ARBITER_ACCOUNT,
                        self.licenses.owner_of(dataset),
                        share,
                        memo=f"ex-post revenue share for {dataset}",
                    )
            sources = delivery.mashup.plan.sources()
            self.lineage.record_sale(
                tx_id, delivery.buyer, amount, split.dataset_shares, sources
            )
            self.audit.append(
                "expost_settled",
                {"tx": tx_id, "buyer": delivery.buyer,
                 "paid": round(amount, 6), "audited": charge.audited},
            )
            delivery.settled = True
            settled.append(
                Delivery(
                    transaction_id=tx_id,
                    buyer=delivery.buyer,
                    mashup=delivery.mashup,
                    satisfaction=float("nan"),
                    bid=delivery.reported_value,
                    price_paid=amount,
                    split=split,
                )
            )
        return settled

    # ------------------------------------------------------------------
    def _next_tx(self) -> int:
        self._tx_counter += 1
        return self._tx_counter


def _sane_evaluation(satisfaction: object, price: object) -> bool:
    """Reject task outputs the market cannot act on (NaN, out of range,
    non-numeric) — malicious or buggy task packages must not distort the
    clearing mechanism."""
    import math

    if not isinstance(satisfaction, (int, float)) or isinstance(
        satisfaction, bool
    ):
        return False
    if not isinstance(price, (int, float)) or isinstance(price, bool):
        return False
    if not (math.isfinite(satisfaction) and math.isfinite(price)):
        return False
    return 0.0 <= satisfaction <= 1.0 and price >= 0.0
