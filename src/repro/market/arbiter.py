"""The Arbiter Management Platform — Fig. 2's pipeline, end to end.

One call to :meth:`Arbiter.run_round` executes the architecture left to
right:

1. **Mashup Builder** — every queued WTP becomes a
   :class:`~repro.integration.dod.MashupRequest`; candidate mashups come
   back ranked ([m1..mn] in the figure);
2. **WTP Evaluator** — each candidate is filtered by the buyer's intrinsic
   constraints, then all surviving candidates are scored by the task
   package in one *batched* call per buyer
   (:meth:`~repro.wtp.wtp.WTPFunction.evaluate_batch`) to measure the
   degree of satisfaction and the resulting wtp price ([mi: wtpi]);
3. **Pricing Engine** — buyers bidding on the same good (identical mashup
   content) are cleared by the market design's mechanism, which fixes
   winners and payments;
4. **Transaction Support** — licensing and reserve-price checks, then the
   ledger moves the incentive and the buyer receives the mashup;
5. **Revenue Allocation Engine** — every winner's payment in a cleared
   group is split in one batched settlement call
   (:meth:`~repro.market.revenue.RevenueAllocationEngine.split_batch`)
   between arbiter commission and contributing datasets (provenance /
   Shapley / uniform per the design) — Shapley games run through the
   vectorized estimators of :mod:`repro.valuation` — and the lineage +
   audit log record everything.

Ex-post buyers (Section 3.2.2.2) skip steps 2–3: they receive the best
*coverage* mashup immediately and settle later through
:meth:`receive_expost_report` / :meth:`settle_expost`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import NamedTuple

import numpy as np

from ..errors import (
    DatasetNotFoundError,
    DatasetOwnershipError,
    DiscoveryError,
    DuplicateParticipantError,
    InvalidRequestError,
    LicensingError,
    MarketError,
    UnknownParticipantError,
)
from ..integration import Mashup, MashupRequest
from ..mashup import MashupBuilder
from ..mechanisms import Bid, ExPostReport
from ..wtp import WTPFunction
from .accountability import AuditLog, LineageStore
from .buyer import DeliveredMashup
from .design import MarketDesign
from .licensing import (
    ContextualIntegrityPolicy,
    License,
    LicenseKind,
    LicenseRegistry,
)
from .negotiation import NegotiationManager
from .revenue import RevenueAllocationEngine, RevenueSplit
from .services import RecommendationService
from .transaction import Ledger

ARBITER_ACCOUNT = "arbiter"


class PendingSettlement(NamedTuple):
    """A cleared winner awaiting revenue settlement and commit."""

    wtp: WTPFunction
    mashup: Mashup
    satisfaction: float
    bid_price: float
    taxed: float
    #: settlement deferred to commit time: an earlier winner of the same
    #: group contends for this sale's exclusivity/transfer slots
    contended: bool


@dataclass
class Delivery:
    """A completed upfront transaction."""

    transaction_id: int
    buyer: str
    mashup: Mashup
    satisfaction: float
    bid: float
    price_paid: float
    split: RevenueSplit


@dataclass
class Rejection:
    buyer: str
    reason: str


@dataclass
class ExPostDelivery:
    """Data handed out before payment; awaiting the buyer's value report."""

    transaction_id: int
    buyer: str
    mashup: Mashup
    reported_value: float | None = None
    settled: bool = False


@dataclass
class RoundResult:
    deliveries: list[Delivery] = field(default_factory=list)
    rejections: list[Rejection] = field(default_factory=list)
    expost_deliveries: list[ExPostDelivery] = field(default_factory=list)

    @property
    def revenue(self) -> float:
        return sum(d.price_paid for d in self.deliveries)

    @property
    def transactions(self) -> int:
        return len(self.deliveries)


class Arbiter:
    """The arbiter platform: one instance per deployed market design."""

    def __init__(self, design: MarketDesign, builder: MashupBuilder | None = None):
        design.validate()
        self.design = design
        self.builder = builder or MashupBuilder()
        self.ledger = Ledger(unit=design.incentive)
        self.ledger.ensure_account(ARBITER_ACCOUNT)
        self.audit = AuditLog()
        self.lineage = LineageStore()
        self.licenses = LicenseRegistry()
        self.negotiation = NegotiationManager()
        self.recommendations = RecommendationService()
        self.revenue_engine = RevenueAllocationEngine(
            design.revenue_sharing, design.arbiter_commission
        )
        self._pending_wtps: list[WTPFunction] = []
        self._reserves: dict[str, float] = {}
        self._expost: dict[int, ExPostDelivery] = {}
        self._tx_counter = 0
        self._buyer_platforms: dict[str, object] = {}
        self.audit.append("market_created", {"design": design.summary()})

    # ------------------------------------------------------------------
    # registration
    # ------------------------------------------------------------------
    def register_participant(self, name: str, funding: float = 0.0) -> None:
        """Open a ledger account (+ grant + optional funding)."""
        if name in self.ledger:
            raise DuplicateParticipantError(
                f"participant {name!r} already registered"
            )
        if funding < 0:
            raise InvalidRequestError("funding must be non-negative")
        self.ledger.open_account(name)
        grant = self.design.participation_grant
        if grant > 0:
            self.ledger.mint(name, grant, memo="participation grant")
        if funding > 0:
            self.ledger.mint(name, funding, memo="external funding")
        self.audit.append(
            "participant_registered", {"name": name, "funding": funding}
        )

    def attach_buyer_platform(self, platform) -> None:
        """Deliveries will be pushed to the platform's ``receive``."""
        self._buyer_platforms[platform.buyer_id] = platform

    def accept_dataset(
        self,
        relation,
        seller: str,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> None:
        """Fig. 2's seller→arbiter dataset flow.

        Re-accepting a name the same seller already holds is an *update*
        (new version + refreshed reserve, with granted licensees preserved,
        an omitted ``license``/``policy`` keeping the current one, and
        silent license downgrades rejected); a name held by a different
        seller, or an update stripping licensees' rights, is rejected
        before any state moves.
        """
        if seller not in self.ledger:
            self.register_participant(seller)
        if reserve_price < 0:
            raise InvalidRequestError("reserve price must be non-negative")
        if relation.name in self.licenses:
            if self.licenses.owner_of(relation.name) != seller:
                raise DatasetOwnershipError(
                    f"dataset {relation.name!r} is already registered to "
                    f"{self.licenses.owner_of(relation.name)!r}"
                )
            # license continuity: granted licensees survive the update (an
            # EXCLUSIVE dataset must not regain free slots), and a
            # rights-stripping downgrade aborts before discovery state moves
            self.licenses.update(
                relation.name, owner=seller, license=license, policy=policy
            )
            self.builder.add_dataset(relation, owner=seller)
        else:
            self.builder.add_dataset(relation, owner=seller)
            self.licenses.register(
                relation.name, owner=seller, license=license, policy=policy
            )
        self._reserves[relation.name] = reserve_price
        self.audit.append(
            "dataset_accepted",
            {
                "dataset": relation.name,
                "seller": seller,
                "rows": len(relation),
                "reserve": reserve_price,
            },
        )

    def adopt_dataset(
        self,
        name: str,
        seller: str,
        reserve_price: float,
        license: License | None,
        policy: ContextualIntegrityPolicy | None,
    ) -> None:
        """Durable-store replay: restore market-side registration state for
        a dataset whose discovery state is being replayed separately.

        Unlike :meth:`accept_dataset` this never touches the builder — the
        store re-installs profiles/candidates/edges wholesale — it only
        re-opens the seller's account (if needed), re-registers the license
        and reserve, and records the replay in the audit log."""
        if seller not in self.ledger:
            self.register_participant(seller)
        self.licenses.register(name, owner=seller, license=license, policy=policy)
        self._reserves[name] = reserve_price
        self.audit.append(
            "dataset_replayed",
            {"dataset": name, "seller": seller, "reserve": reserve_price},
        )

    def retire_dataset(self, dataset: str) -> None:
        """Seller withdrawal: prune the dataset from discovery in place.

        Already-granted licenses and lineage records stay on the books —
        past sales remain auditable — but no future mashup may source it.
        """
        try:
            self.builder.remove_dataset(dataset)
        except DiscoveryError as exc:
            raise DatasetNotFoundError(str(exc)) from None
        if dataset in self.licenses:
            self.licenses.deregister(dataset)
        self._reserves.pop(dataset, None)
        self.audit.append("dataset_retired", {"dataset": dataset})

    def submit_wtp(self, wtp: WTPFunction) -> None:
        if wtp.buyer not in self.ledger:
            raise UnknownParticipantError(
                f"buyer {wtp.buyer!r} is not registered; "
                "call register_participant first"
            )
        if wtp.elicitation == "ex_post" and self.design.elicitation == "upfront":
            raise MarketError(
                "this market design does not support ex-post elicitation"
            )
        if wtp.elicitation == "upfront" and self.design.elicitation == "ex_post":
            raise MarketError(
                "this market design only supports ex-post elicitation"
            )
        self._pending_wtps.append(wtp)
        self.audit.append(
            "wtp_submitted",
            {"buyer": wtp.buyer, "attributes": wtp.attributes,
             "elicitation": wtp.elicitation},
        )

    @property
    def pending_wtps(self) -> int:
        """WTP functions queued for the next round."""
        return len(self._pending_wtps)

    def reserve_price_of(self, dataset: str) -> float:
        """The live reserve price of a registered dataset (0.0 default)."""
        return self._reserves.get(dataset, 0.0)

    # ------------------------------------------------------------------
    # the round
    # ------------------------------------------------------------------
    def run_round(self, context: str = "*") -> RoundResult:
        result = RoundResult()
        wtps, self._pending_wtps = self._pending_wtps, []

        offers: list[tuple[WTPFunction, Mashup, float, float]] = []
        for wtp in wtps:
            if wtp.elicitation == "ex_post":
                self._deliver_expost(wtp, result)
                continue
            offer = self._best_offer(wtp, result)
            if offer is not None:
                offers.append(offer)

        # Pricing Engine: group offers by identical good, clear per group
        groups: dict[str, list[tuple[WTPFunction, Mashup, float, float]]] = {}
        for offer in offers:
            key = offer[1].relation.content_hash()
            groups.setdefault(key, []).append(offer)

        for group in groups.values():
            self._clear_group(group, result, context)

        # Negotiation Rounds: publish unmet demand to sellers
        gaps = self.builder.gap_report()
        if gaps.demand:
            self.negotiation.publish_gaps(gaps.demand)
        return result

    # -- step 1+2: mashup builder + WTP evaluator ------------------------------
    def _best_offer(self, wtp: WTPFunction, result: RoundResult):
        request = MashupRequest(
            attributes=wtp.attributes, key=wtp.key, examples=wtp.examples
        )
        mashups = self.builder.build(request)
        if not mashups:
            result.rejections.append(
                Rejection(wtp.buyer, "no mashup could be assembled")
            )
            return None
        candidates = [
            mashup for mashup in mashups
            if wtp.intrinsic.satisfied_by(
                mashup.relation, mashup.sources(), self.builder.metadata
            )
        ]
        # The WTP evaluator runs *buyer-supplied code* on arbiter hardware
        # (Section 3.2.2.1): every candidate of this buyer is scored in a
        # single batched call, and any crash — of one candidate or of the
        # whole batch — is contained and recorded, never propagated into
        # the market round.
        try:
            outcomes = wtp.evaluate_batch([m.relation for m in candidates])
        except Exception as exc:  # noqa: BLE001 - sandbox boundary
            self.audit.append(
                "wtp_evaluation_crashed",
                {"buyer": wtp.buyer, "error": repr(exc)},
            )
            outcomes = []
            candidates = []
        best = None
        for mashup, outcome in zip(candidates, outcomes):
            if outcome.error is not None:
                self.audit.append(
                    "wtp_evaluation_crashed",
                    {"buyer": wtp.buyer, "error": repr(outcome.error)},
                )
                continue
            if not outcome.evaluated:
                continue
            satisfaction, price = outcome.satisfaction, outcome.price
            if not _sane_evaluation(satisfaction, price):
                self.audit.append(
                    "wtp_evaluation_rejected",
                    {"buyer": wtp.buyer, "satisfaction": repr(satisfaction),
                     "price": repr(price)},
                )
                continue
            if best is None or price > best[3] or (
                price == best[3] and satisfaction > best[2]
            ):
                best = (wtp, mashup, satisfaction, price)
        if best is None:
            result.rejections.append(
                Rejection(wtp.buyer, "no candidate mashup passed evaluation")
            )
            return None
        if best[3] <= 0:
            result.rejections.append(
                Rejection(
                    wtp.buyer,
                    f"satisfaction {best[2]:.3f} below the buyer's paying "
                    f"threshold",
                )
            )
            return None
        return best

    # -- step 3..5: pricing, transaction, revenue allocation ---------------------
    def _clear_group(self, group, result: RoundResult, context: str) -> None:
        bids = [Bid(wtp.buyer, price) for wtp, _m, _s, price in group]
        outcome = self.design.mechanism.run(bids)
        by_buyer = {wtp.buyer: (wtp, m, s, p) for wtp, m, s, p in group}
        for bid in bids:
            if not outcome.won(bid.bidder):
                result.rejections.append(
                    Rejection(bid.bidder, "outbid in the clearing mechanism")
                )
        # Revenue Allocation Engine: this group's settlements are computed
        # in one batched call (per round context) — exclusivity taxes
        # first, then the winners' Shapley/provenance splits through
        # RevenueAllocationEngine.split_batch — before any ledger movement.
        # Licensing is gated FIRST: a Shapley settlement re-runs
        # buyer-supplied task code on partial mashups, so a sale the
        # license registry forbids must never reach that work.  A winner
        # contending with *earlier winners of this group* for exclusivity
        # slots (``tentative``) is not rejected here — whether a slot
        # remains depends on whether those winners actually commit — but
        # its settlement is deferred to commit time, after the outcome of
        # the earlier transactions is known.
        winners = []
        tentative: dict[str, set[str]] = {}
        for buyer in outcome.winners:
            wtp, mashup, satisfaction, bid_price = by_buyer[buyer]
            payment = outcome.payment_of(buyer)
            sources = mashup.plan.sources()
            if not self._licenses_permit(sources, wtp.buyer, context, result):
                continue
            # kinds whose check_sale outcome depends on prior sales: an
            # earlier winner of this group committing can invalidate this
            # sale, so its settlement must wait for that outcome
            contended = any(
                self.licenses.license_of(d).kind
                in (LicenseKind.EXCLUSIVE, LicenseKind.TRANSFER)
                and (tentative.get(d, set()) - {wtp.buyer})
                for d in sources
            )
            for dataset in sources:
                tentative.setdefault(dataset, set()).add(wtp.buyer)
            # exclusivity tax (Section 4.4)
            taxed = payment
            for dataset in sources:
                license = self.licenses.license_of(dataset)
                taxed = license.price_with_tax(taxed) if taxed else taxed
            winners.append(
                PendingSettlement(
                    wtp, mashup, satisfaction, bid_price, taxed, contended
                )
            )
        eager = [w for w in winners if not w.contended]
        eager_splits = dict(
            zip(
                map(id, eager),
                self.revenue_engine.split_batch(
                    [(w.mashup, w.taxed) for w in eager],
                    wtps=[w.wtp for w in eager],
                    resolver=self.builder.metadata.relation,
                    on_error=lambda i, exc: self._settlement_crashed(
                        eager[i].wtp, exc, result
                    ),
                ),
            )
        )
        for w in winners:
            if w.contended:
                # settle lazily: earlier winners have now committed (or
                # failed), so the registry reflects who holds the slots
                if not self._licenses_permit(
                    w.mashup.plan.sources(), w.wtp.buyer, context, result
                ):
                    continue
                try:
                    split = self.revenue_engine.split(
                        w.mashup, w.taxed, wtp=w.wtp,
                        resolver=self.builder.metadata.relation,
                    )
                except Exception as exc:  # noqa: BLE001 - sandbox boundary
                    self._settlement_crashed(w.wtp, exc, result)
                    continue
            else:
                split = eager_splits[id(w)]
                if split is None:  # settlement crashed; already recorded
                    continue
            self._execute_transaction(
                w.wtp, w.mashup, w.satisfaction, w.bid_price, w.taxed,
                split, result, context,
            )

    def _licenses_permit(
        self, sources, buyer: str, context: str, result: RoundResult
    ) -> bool:
        """check_sale over all sources; on violation: reject + audit."""
        try:
            for dataset in sources:
                self.licenses.check_sale(dataset, buyer, context)
        except LicensingError as exc:
            result.rejections.append(Rejection(buyer, str(exc)))
            self.audit.append(
                "sale_blocked", {"buyer": buyer, "reason": str(exc)}
            )
            return False
        return True

    def _settlement_crashed(
        self, wtp: WTPFunction, exc: Exception, result: RoundResult
    ) -> None:
        """Contain a revenue-settlement crash (Shapley re-runs buyer task
        code on partial mashups) to the one winner it belongs to."""
        result.rejections.append(
            Rejection(wtp.buyer, "revenue settlement failed for this sale")
        )
        self.audit.append(
            "settlement_crashed",
            {"buyer": wtp.buyer, "error": repr(exc)},
        )

    def _execute_transaction(
        self,
        wtp: WTPFunction,
        mashup: Mashup,
        satisfaction: float,
        bid_price: float,
        taxed: float,
        split: RevenueSplit,
        result: RoundResult,
        context: str,
    ) -> None:
        sources = mashup.plan.sources()
        # licensing + contextual integrity, re-checked sequentially at
        # commit time: the group-level gate ran against round-start state,
        # but an exclusive sale committed earlier in this loop must still
        # block later buyers of the same round
        if not self._licenses_permit(sources, wtp.buyer, context, result):
            return
        # reserve prices: every dataset's share must clear its reserve
        for dataset in sources:
            reserve = self._reserves.get(dataset, 0.0)
            if split.dataset_shares.get(dataset, 0.0) < reserve - 1e-9:
                result.rejections.append(
                    Rejection(
                        wtp.buyer,
                        f"dataset {dataset!r} reserve {reserve:.2f} not met "
                        f"(share {split.dataset_shares.get(dataset, 0.0):.2f})",
                    )
                )
                self.audit.append(
                    "sale_blocked",
                    {"buyer": wtp.buyer, "dataset": dataset,
                     "reason": "reserve not met"},
                )
                return
        # move the incentive
        try:
            if taxed > 0:
                self.ledger.transfer(
                    wtp.buyer, ARBITER_ACCOUNT, taxed, memo="purchase"
                )
        except MarketError as exc:
            result.rejections.append(Rejection(wtp.buyer, str(exc)))
            return
        for dataset, share in split.dataset_shares.items():
            if share > 0:
                self.ledger.transfer(
                    ARBITER_ACCOUNT,
                    self.licenses.owner_of(dataset),
                    share,
                    memo=f"revenue share for {dataset}",
                )
        if self.design.seller_reward > 0 and sources:
            per_dataset = self.design.seller_reward / len(sources)
            for dataset in sources:
                self.ledger.mint(
                    self.licenses.owner_of(dataset),
                    per_dataset,
                    memo=f"seller reward for {dataset}",
                )
        # finalize
        tx_id = self._next_tx()
        for dataset in sources:
            self.licenses.record_sale(dataset, wtp.buyer)
        self.lineage.record_sale(
            tx_id, wtp.buyer, taxed, split.dataset_shares, sources
        )
        self.recommendations.record_purchase(wtp.buyer, sources)
        self.audit.append(
            "transaction",
            {
                "tx": tx_id,
                "buyer": wtp.buyer,
                "sources": sources,
                "satisfaction": round(satisfaction, 6),
                "bid": round(bid_price, 6),
                "paid": round(taxed, 6),
            },
        )
        delivery = Delivery(
            transaction_id=tx_id,
            buyer=wtp.buyer,
            mashup=mashup,
            satisfaction=satisfaction,
            bid=bid_price,
            price_paid=taxed,
            split=split,
        )
        result.deliveries.append(delivery)
        platform = self._buyer_platforms.get(wtp.buyer)
        if platform is not None:
            platform.receive(
                DeliveredMashup(
                    transaction_id=tx_id,
                    relation=mashup.relation,
                    price_paid=taxed,
                    plan_description=mashup.plan.describe(),
                )
            )

    # -- ex-post flow --------------------------------------------------------------
    def _deliver_expost(self, wtp: WTPFunction, result: RoundResult) -> None:
        if self.design.expost is None:
            result.rejections.append(
                Rejection(wtp.buyer, "market has no ex-post mechanism")
            )
            return
        request = MashupRequest(
            attributes=wtp.attributes, key=wtp.key, examples=wtp.examples
        )
        mashups = self.builder.build(request)
        if not mashups:
            result.rejections.append(
                Rejection(wtp.buyer, "no mashup could be assembled")
            )
            return
        mashup = max(mashups, key=lambda m: m.coverage)
        tx_id = self._next_tx()
        delivery = ExPostDelivery(tx_id, wtp.buyer, mashup)
        self._expost[tx_id] = delivery
        result.expost_deliveries.append(delivery)
        self.audit.append(
            "expost_delivered",
            {"tx": tx_id, "buyer": wtp.buyer, "sources": mashup.plan.sources()},
        )
        platform = self._buyer_platforms.get(wtp.buyer)
        if platform is not None:
            platform.receive(
                DeliveredMashup(
                    transaction_id=tx_id,
                    relation=mashup.relation,
                    price_paid=0.0,
                    plan_description=mashup.plan.describe(),
                )
            )

    def receive_expost_report(
        self, buyer: str, transaction_id: int, reported_value: float
    ) -> None:
        delivery = self._expost.get(transaction_id)
        if delivery is None or delivery.buyer != buyer:
            raise MarketError(
                f"no ex-post delivery {transaction_id} for buyer {buyer!r}"
            )
        if delivery.settled:
            raise MarketError(f"delivery {transaction_id} already settled")
        if reported_value < 0:
            raise MarketError("reported value must be non-negative")
        delivery.reported_value = reported_value
        self.audit.append(
            "expost_reported",
            {"tx": transaction_id, "buyer": buyer, "reported": reported_value},
        )

    def settle_expost(
        self,
        rng: np.random.Generator,
        true_values: dict[int, float] | None = None,
    ) -> list[Delivery]:
        """Charge all reported ex-post deliveries through the mechanism.

        ``true_values`` (tx_id -> v) is the auditor's ground truth; in a
        simulation the engine passes the buyers' actual realized values, in
        production it would come from usage metering.  Missing entries mean
        the audit trusts the report.
        """
        mechanism = self.design.expost
        if mechanism is None:
            raise MarketError("market has no ex-post mechanism")
        settled: list[Delivery] = []
        for tx_id, delivery in sorted(self._expost.items()):
            if delivery.settled or delivery.reported_value is None:
                continue
            true_value = (true_values or {}).get(
                tx_id, delivery.reported_value
            )
            charge = mechanism.charge(
                ExPostReport(delivery.buyer, delivery.reported_value, true_value),
                rng,
            )
            amount = charge.total
            if amount > 0:
                self.ledger.transfer(
                    delivery.buyer, ARBITER_ACCOUNT, amount,
                    memo=f"ex-post settlement tx={tx_id}",
                )
            # ex-post settlements have no WTP to re-evaluate, so shapley
            # markets fall back to provenance sharing here
            engine = self.revenue_engine
            if engine.method == "shapley":
                engine = RevenueAllocationEngine(
                    "provenance", self.design.arbiter_commission
                )
            split = engine.split(delivery.mashup, amount)
            for dataset, share in split.dataset_shares.items():
                if share > 0:
                    self.ledger.transfer(
                        ARBITER_ACCOUNT,
                        self.licenses.owner_of(dataset),
                        share,
                        memo=f"ex-post revenue share for {dataset}",
                    )
            sources = delivery.mashup.plan.sources()
            self.lineage.record_sale(
                tx_id, delivery.buyer, amount, split.dataset_shares, sources
            )
            self.audit.append(
                "expost_settled",
                {"tx": tx_id, "buyer": delivery.buyer,
                 "paid": round(amount, 6), "audited": charge.audited},
            )
            delivery.settled = True
            settled.append(
                Delivery(
                    transaction_id=tx_id,
                    buyer=delivery.buyer,
                    mashup=delivery.mashup,
                    satisfaction=float("nan"),
                    bid=delivery.reported_value,
                    price_paid=amount,
                    split=split,
                )
            )
        return settled

    # ------------------------------------------------------------------
    def _next_tx(self) -> int:
        self._tx_counter += 1
        return self._tx_counter


def _sane_evaluation(satisfaction: object, price: object) -> bool:
    """Reject task outputs the market cannot act on (NaN, out of range,
    non-numeric) — malicious or buggy task packages must not distort the
    clearing mechanism."""
    import math

    if not isinstance(satisfaction, (int, float)) or isinstance(
        satisfaction, bool
    ):
        return False
    if not isinstance(price, (int, float)) or isinstance(price, bool):
        return False
    if not (math.isfinite(satisfaction) and math.isfinite(price)):
        return False
    return 0.0 <= satisfaction <= 1.0 and price >= 0.0
