"""The Data Market Management System (DMMS): arbiter, seller, buyer
platforms, market designs, transactions, licensing, accountability."""

from .accountability import AuditLog, AuditRecord, LineageStore, SaleRecord
from .arbiter import (
    ARBITER_ACCOUNT,
    Arbiter,
    Delivery,
    ExPostDelivery,
    Rejection,
    RoundResult,
)
from .buyer import BuyerPlatform, DeliveredMashup
from .design import (
    MarketDesign,
    barter_market,
    exclusive_auction_market,
    external_market,
    internal_market,
)
from .disputes import (
    Dispute,
    DisputeDesk,
    DisputeError,
    DisputeKind,
    DisputeStatus,
)
from .insurance import InsuranceDesk, InsuranceError, InsurancePolicy
from .licensing import (
    OPEN_CONTEXT,
    ContextualIntegrityPolicy,
    License,
    LicenseKind,
    LicenseRegistry,
)
from .negotiation import InfoRequest, NegotiationManager, RequestStatus
from .revenue import (
    RevenueAllocationEngine,
    RevenueSplit,
    provenance_shares,
    row_allocation,
    shapley_shares,
)
from .seller import SellerOffer, SellerPlatform, share_dataset
from .trusts import DataTrust, MemberContribution, TrustError
from .services import Recommendation, RecommendationService
from .transaction import Ledger, Transfer

__all__ = [
    "Arbiter",
    "RoundResult",
    "Delivery",
    "Rejection",
    "ExPostDelivery",
    "ARBITER_ACCOUNT",
    "MarketDesign",
    "external_market",
    "internal_market",
    "barter_market",
    "exclusive_auction_market",
    "SellerPlatform",
    "SellerOffer",
    "share_dataset",
    "BuyerPlatform",
    "DeliveredMashup",
    "Ledger",
    "Transfer",
    "AuditLog",
    "AuditRecord",
    "LineageStore",
    "SaleRecord",
    "License",
    "LicenseKind",
    "LicenseRegistry",
    "ContextualIntegrityPolicy",
    "OPEN_CONTEXT",
    "NegotiationManager",
    "InfoRequest",
    "RequestStatus",
    "RevenueAllocationEngine",
    "RevenueSplit",
    "row_allocation",
    "provenance_shares",
    "shapley_shares",
    "RecommendationService",
    "Recommendation",
    "InsuranceDesk",
    "InsurancePolicy",
    "InsuranceError",
    "DisputeDesk",
    "Dispute",
    "DisputeKind",
    "DisputeStatus",
    "DisputeError",
    "DataTrust",
    "MemberContribution",
    "TrustError",
]
