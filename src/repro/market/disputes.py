"""Dispute management (Section 4.4).

"For situations when the chain of trust is broken, dispute management
systems must be either embedded in or informed by the transactions that
take place in the DMMS so the appropriate entities can intervene and
resolve the situation."

The desk is *informed by* the DMMS exactly as the paper asks: every filed
dispute is adjudicated against the tamper-evident audit log and the lineage
store — a claim that contradicts the recorded transaction is dismissed,
a substantiated claim triggers a ledger refund, and the resolution itself
is appended to the audit log.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..errors import MarketError
from .accountability import AuditLog, LineageStore
from .transaction import Ledger


class DisputeError(MarketError):
    pass


class DisputeStatus(enum.Enum):
    OPEN = "open"
    UPHELD = "upheld"  # complainant was right: refund issued
    DISMISSED = "dismissed"  # records contradict the claim


class DisputeKind(enum.Enum):
    NOT_DELIVERED = "not_delivered"  # "I paid but have no transaction"
    OVERCHARGED = "overcharged"  # "I was charged more than recorded"
    UNPAID_SHARE = "unpaid_share"  # seller: "my dataset sold but I got 0"


@dataclass
class Dispute:
    dispute_id: int
    complainant: str
    kind: DisputeKind
    transaction_id: int
    claimed_amount: float
    status: DisputeStatus = DisputeStatus.OPEN
    resolution: str = ""
    refund: float = 0.0


class DisputeDesk:
    """Files and adjudicates disputes against the market's own records."""

    def __init__(self, ledger: Ledger, audit: AuditLog, lineage: LineageStore,
                 arbiter_account: str = "arbiter"):
        self.ledger = ledger
        self.audit = audit
        self.lineage = lineage
        self.arbiter_account = arbiter_account
        self._disputes: list[Dispute] = []

    def file(
        self,
        complainant: str,
        kind: DisputeKind,
        transaction_id: int,
        claimed_amount: float,
    ) -> Dispute:
        if claimed_amount < 0:
            raise DisputeError("claimed amount must be non-negative")
        if complainant not in self.ledger:
            raise DisputeError(f"unknown participant {complainant!r}")
        dispute = Dispute(
            dispute_id=len(self._disputes),
            complainant=complainant,
            kind=kind,
            transaction_id=transaction_id,
            claimed_amount=claimed_amount,
        )
        self._disputes.append(dispute)
        self.audit.append(
            "dispute_filed",
            {"dispute": dispute.dispute_id, "by": complainant,
             "kind": kind.value, "tx": transaction_id},
        )
        return dispute

    def dispute(self, dispute_id: int) -> Dispute:
        try:
            return self._disputes[dispute_id]
        except IndexError:
            raise DisputeError(f"unknown dispute {dispute_id}") from None

    def open_disputes(self) -> list[Dispute]:
        return [d for d in self._disputes if d.status is DisputeStatus.OPEN]

    # -- adjudication -----------------------------------------------------------
    def resolve(self, dispute_id: int) -> Dispute:
        """Adjudicate one dispute from the audit/lineage evidence."""
        dispute = self.dispute(dispute_id)
        if dispute.status is not DisputeStatus.OPEN:
            raise DisputeError(
                f"dispute {dispute_id} is already {dispute.status.value}"
            )
        self.audit.verify()  # evidence must be intact before it is used
        record = self._transaction_record(dispute.transaction_id)

        if dispute.kind is DisputeKind.NOT_DELIVERED:
            if record is None:
                self._uphold(
                    dispute,
                    "no transaction record exists: refund the claim",
                    dispute.claimed_amount,
                )
            else:
                self._dismiss(
                    dispute,
                    f"transaction {dispute.transaction_id} is on record "
                    f"(buyer {record['buyer']})",
                )
        elif dispute.kind is DisputeKind.OVERCHARGED:
            if record is None:
                self._dismiss(dispute, "no such transaction on record")
            else:
                recorded = float(record["paid"])
                if dispute.claimed_amount > recorded + 1e-9:
                    self._uphold(
                        dispute,
                        f"recorded payment is {recorded}; refunding the "
                        f"difference",
                        dispute.claimed_amount - recorded,
                    )
                else:
                    self._dismiss(
                        dispute,
                        f"claimed {dispute.claimed_amount} does not exceed "
                        f"the recorded payment {recorded}",
                    )
        elif dispute.kind is DisputeKind.UNPAID_SHARE:
            owed = self._owed_share(dispute)
            paid = self._paid_to(dispute.complainant, dispute.transaction_id)
            if owed > paid + 1e-6:
                self._uphold(
                    dispute,
                    f"lineage records a {owed:.2f} share but only "
                    f"{paid:.2f} was transferred",
                    owed - paid,
                )
            else:
                self._dismiss(
                    dispute,
                    f"ledger shows {paid:.2f} transferred against a "
                    f"{owed:.2f} lineage share",
                )
        return dispute

    # -- evidence helpers ----------------------------------------------------------
    def _transaction_record(self, transaction_id: int) -> dict | None:
        for record in self.audit.records("transaction"):
            if record.payload.get("tx") == transaction_id:
                return record.payload
        return None

    def _owed_share(self, dispute: Dispute) -> float:
        total = 0.0
        for dataset in self.lineage.datasets():
            for sale in self.lineage.sales_of(dataset):
                if sale.transaction_id == dispute.transaction_id:
                    total += sale.dataset_share
        return total

    def _paid_to(self, account: str, transaction_id: int) -> float:
        # revenue-share transfers carry a "revenue share for <ds>" memo;
        # without per-tx memos we conservatively sum all such transfers
        return sum(
            t.amount
            for t in self.ledger.history(account)
            if t.destination == account and "revenue share" in t.memo
        )

    def _uphold(self, dispute: Dispute, reason: str, refund: float) -> None:
        dispute.status = DisputeStatus.UPHELD
        dispute.resolution = reason
        dispute.refund = refund
        if refund > 0:
            self.ledger.transfer(
                self.arbiter_account,
                dispute.complainant,
                refund,
                memo=f"dispute {dispute.dispute_id} refund",
            )
        self.audit.append(
            "dispute_resolved",
            {"dispute": dispute.dispute_id, "status": "upheld",
             "refund": refund, "reason": reason},
        )

    def _dismiss(self, dispute: Dispute, reason: str) -> None:
        dispute.status = DisputeStatus.DISMISSED
        dispute.resolution = reason
        self.audit.append(
            "dispute_resolved",
            {"dispute": dispute.dispute_id, "status": "dismissed",
             "reason": reason},
        )
