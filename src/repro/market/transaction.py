"""Transaction support: the incentive ledger.

Fig. 2's "Transaction Support" box.  The ledger is deliberately
incentive-agnostic — external markets move *money*, internal markets move
*bonus points*, barter markets move *credits* (Section 3.3's plug'n'play
requirement) — all are balances on named accounts with atomic transfers and
a full history.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import InsufficientFundsError, LedgerError


@dataclass(frozen=True)
class Transfer:
    """One executed movement of incentive between two accounts."""

    transfer_id: int
    source: str
    destination: str
    amount: float
    memo: str = ""


class Ledger:
    """Named accounts with non-negative balances and atomic transfers."""

    def __init__(self, unit: str = "money"):
        self.unit = unit
        self._balances: dict[str, float] = {}
        self._history: list[Transfer] = []

    # -- accounts ------------------------------------------------------------
    def open_account(self, name: str, initial: float = 0.0) -> None:
        if name in self._balances:
            raise LedgerError(f"account {name!r} already exists")
        if initial < 0:
            raise LedgerError("initial balance must be non-negative")
        self._balances[name] = float(initial)

    def ensure_account(self, name: str) -> None:
        if name not in self._balances:
            self.open_account(name)

    def __contains__(self, name: str) -> bool:
        return name in self._balances

    @property
    def accounts(self) -> list[str]:
        return sorted(self._balances)

    def balance(self, name: str) -> float:
        try:
            return self._balances[name]
        except KeyError:
            raise LedgerError(f"unknown account {name!r}") from None

    # -- movements -----------------------------------------------------------
    def mint(self, name: str, amount: float, memo: str = "mint") -> Transfer:
        """Create incentive out of thin air (buyer funding, point grants)."""
        if amount < 0:
            raise LedgerError("cannot mint a negative amount")
        self.ensure_account(name)
        self._balances[name] += amount
        return self._record("__mint__", name, amount, memo)

    def transfer(
        self, source: str, destination: str, amount: float, memo: str = ""
    ) -> Transfer:
        if amount < 0:
            raise LedgerError("cannot transfer a negative amount")
        if source not in self._balances:
            raise LedgerError(f"unknown source account {source!r}")
        if destination not in self._balances:
            raise LedgerError(f"unknown destination account {destination!r}")
        if self._balances[source] < amount - 1e-9:
            raise InsufficientFundsError(
                f"account {source!r} holds {self._balances[source]:.2f} "
                f"{self.unit}, cannot pay {amount:.2f}"
            )
        self._balances[source] -= amount
        self._balances[destination] += amount
        return self._record(source, destination, amount, memo)

    def _record(
        self, source: str, destination: str, amount: float, memo: str
    ) -> Transfer:
        transfer = Transfer(
            transfer_id=len(self._history),
            source=source,
            destination=destination,
            amount=amount,
            memo=memo,
        )
        self._history.append(transfer)
        return transfer

    # -- history ---------------------------------------------------------------
    def history(self, account: str | None = None) -> list[Transfer]:
        if account is None:
            return list(self._history)
        return [
            t for t in self._history
            if account in (t.source, t.destination)
        ]

    def __iter__(self) -> Iterator[Transfer]:
        return iter(self._history)

    def total_minted(self) -> float:
        return sum(t.amount for t in self._history if t.source == "__mint__")

    def conservation_check(self) -> bool:
        """Invariant: total balances == total minted (nothing leaks)."""
        return abs(sum(self._balances.values()) - self.total_minted()) < 1e-6
