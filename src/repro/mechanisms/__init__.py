"""Allocation and payment mechanisms: auctions, digital goods, ex-post."""

from .auctions import GSPAuction, MyersonAuction, VickreyAuction
from .base import Bid, Mechanism, Outcome
from .digital import PostedPriceMechanism, RSOPAuction
from .expost import ExPostCharge, ExPostMechanism, ExPostReport

__all__ = [
    "Bid",
    "Outcome",
    "Mechanism",
    "VickreyAuction",
    "GSPAuction",
    "MyersonAuction",
    "PostedPriceMechanism",
    "RSOPAuction",
    "ExPostMechanism",
    "ExPostReport",
    "ExPostCharge",
]
