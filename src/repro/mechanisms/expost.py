"""The ex-post elicitation mechanism for exploratory buyers.

Section 3.2.2.2: "Buyers get the data they want before they pay any money
for it.  After using the data and discovering — a posteriori — how much they
value the dataset, they pay the corresponding quantity to the arbiter...
The crucial aspect of the mechanisms we are designing is that they make
reporting the real value the buyer's preferred strategy."

Implementation: the buyer receives the data and reports a realized value
``r``; they pay ``α · r``.  With probability ``audit_probability`` the
arbiter audits the buyer (in a simulation the true value v is observable;
in practice: usage metering, dispute resolution).  A caught under-reporter
pays ``penalty_multiplier`` times the evaded amount: α·(v − r)·m.

Expected utility of reporting r <= v:

    U(r) = v − α·r − q·α·(v − r)·m
         = v − α·v + α·(v − r)·(1 − q·m)

which is maximized at r = v (truthful) whenever q·m >= 1 — the
:meth:`ExPostMechanism.is_truthful_config` condition benchmark E7 verifies
empirically.  Over-reporting (r > v) is never profitable since payment
increases in r.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import MechanismError


@dataclass(frozen=True)
class ExPostReport:
    buyer: str
    reported_value: float
    true_value: float  # observable only under audit / in simulation

    def __post_init__(self):
        if self.reported_value < 0 or self.true_value < 0:
            raise MechanismError("values must be non-negative")


@dataclass(frozen=True)
class ExPostCharge:
    buyer: str
    base_payment: float
    audited: bool
    penalty: float

    @property
    def total(self) -> float:
        return self.base_payment + self.penalty


@dataclass
class ExPostMechanism:
    """Pay-after-use with random audits."""

    payment_share: float = 0.5  # α: fraction of reported value paid
    audit_probability: float = 0.3  # q
    penalty_multiplier: float = 4.0  # m
    name: str = "ex_post"

    def __post_init__(self):
        if not 0 < self.payment_share <= 1:
            raise MechanismError("payment_share must be in (0, 1]")
        if not 0 <= self.audit_probability <= 1:
            raise MechanismError("audit_probability must be in [0, 1]")
        if self.penalty_multiplier < 0:
            raise MechanismError("penalty_multiplier must be non-negative")

    def is_truthful_config(self) -> bool:
        """q·m >= 1 makes truthful reporting a best response."""
        return self.audit_probability * self.penalty_multiplier >= 1.0

    def expected_utility(self, true_value: float, reported: float) -> float:
        """Buyer's expected utility of reporting ``reported`` (<= analysis
        only covers under/truthful reports; over-reports just pay more)."""
        if reported < 0 or true_value < 0:
            raise MechanismError("values must be non-negative")
        alpha, q, m = (
            self.payment_share,
            self.audit_probability,
            self.penalty_multiplier,
        )
        shortfall = max(0.0, true_value - reported)
        return (
            true_value
            - alpha * reported
            - q * alpha * shortfall * m
        )

    def charge(
        self, report: ExPostReport, rng: np.random.Generator
    ) -> ExPostCharge:
        """Charge one buyer, flipping the audit coin with ``rng``."""
        base = self.payment_share * report.reported_value
        audited = bool(rng.random() < self.audit_probability)
        penalty = 0.0
        if audited and report.true_value > report.reported_value + 1e-12:
            shortfall = report.true_value - report.reported_value
            penalty = self.payment_share * shortfall * self.penalty_multiplier
        return ExPostCharge(report.buyer, base, audited, penalty)

    def settle(
        self, reports: Sequence[ExPostReport], rng: np.random.Generator
    ) -> list[ExPostCharge]:
        return [self.charge(r, rng) for r in reports]

    def best_report(self, true_value: float, grid: int = 101) -> float:
        """Grid-search the buyer's optimal report in [0, v] (analysis aid)."""
        candidates = np.linspace(0.0, true_value, grid)
        utilities = [self.expected_utility(true_value, r) for r in candidates]
        return float(candidates[int(np.argmax(utilities))])
