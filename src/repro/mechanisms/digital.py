"""Mechanisms for freely replicable goods (infinite supply).

Section 3.2.1: "Because data is freely replicable, it could be trivially
allocated to anyone who wants it because its supply is infinite.  That is at
odds with eliciting truthful behavior from buyers...  Mechanisms to trade
digital goods with infinite supply have been proposed before [Goldberg &
Hartline et al.].  We are building on these ideas."

* :class:`PostedPriceMechanism` — the trivially truthful baseline: everyone
  at or above the posted price is served.
* :class:`RSOPAuction` — Goldberg–Hartline Random Sampling Optimal Price:
  split bidders in two halves, compute each half's optimal posted price,
  offer it to the *other* half.  Truthful (your bid never sets your own
  price) and constant-competitive with optimal fixed-price revenue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import MechanismError
from ..pricing import optimal_posted_price
from .base import Bid, Mechanism, Outcome


@dataclass
class PostedPriceMechanism(Mechanism):
    """Serve every bidder with bid >= price at exactly the posted price."""

    price: float
    name: str = "posted"
    incentive_compatible: bool = True

    def __post_init__(self):
        if self.price < 0:
            raise MechanismError("posted price must be non-negative")

    def run(self, bids: Sequence[Bid]) -> Outcome:
        ranked = self._sorted_bids(bids)
        winners = [b for b in ranked if b.amount >= self.price]
        return Outcome(
            allocations={b.bidder: 1.0 for b in winners},
            payments={b.bidder: self.price for b in winners},
        )


@dataclass
class RSOPAuction(Mechanism):
    """Random Sampling Optimal Price auction for digital goods."""

    seed: int = 0
    name: str = "rsop"
    incentive_compatible: bool = True

    def run(self, bids: Sequence[Bid]) -> Outcome:
        ranked = self._sorted_bids(bids)
        if not ranked:
            return Outcome()
        if len(ranked) == 1:
            # a lone bidder cannot be priced by a sample: serve at 0
            return Outcome(
                allocations={ranked[0].bidder: 1.0},
                payments={ranked[0].bidder: 0.0},
            )
        rng = np.random.default_rng(self.seed)
        coin = rng.random(len(ranked)) < 0.5
        group_a = [b for b, c in zip(ranked, coin) if c]
        group_b = [b for b, c in zip(ranked, coin) if not c]
        if not group_a or not group_b:
            # degenerate split: put the first bidder alone in group A
            group_a, group_b = [ranked[0]], ranked[1:]
        price_for_b = optimal_posted_price([b.amount for b in group_a]).price
        price_for_a = optimal_posted_price([b.amount for b in group_b]).price
        allocations: dict[str, float] = {}
        payments: dict[str, float] = {}
        for b in group_a:
            if b.amount >= price_for_a:
                allocations[b.bidder] = 1.0
                payments[b.bidder] = price_for_a
        for b in group_b:
            if b.amount >= price_for_b:
                allocations[b.bidder] = 1.0
                payments[b.bidder] = price_for_b
        return Outcome(allocations=allocations, payments=payments)
