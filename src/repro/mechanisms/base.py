"""Mechanism interfaces: bids, outcomes, and the allocation/payment pair.

Section 3.1's market design has an *allocation function* ("which buyers get
what mashup") and a *payment function* ("how much money buyers need to pay").
A :class:`Mechanism` implements both at once — auctions are the canonical
example the paper gives — and returns an :class:`Outcome` the arbiter's
transaction support executes.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import MechanismError


@dataclass(frozen=True)
class Bid:
    """A buyer's declared willingness to pay for the good on offer."""

    bidder: str
    amount: float

    def __post_init__(self):
        if self.amount < 0:
            raise MechanismError(
                f"bid from {self.bidder!r} is negative ({self.amount})"
            )


@dataclass
class Outcome:
    """Who wins and what they pay.  ``allocations[bidder]`` is the quantity
    (or slot index for position auctions) allocated."""

    allocations: dict[str, float] = field(default_factory=dict)
    payments: dict[str, float] = field(default_factory=dict)

    @property
    def winners(self) -> list[str]:
        return sorted(b for b, q in self.allocations.items() if q > 0)

    @property
    def revenue(self) -> float:
        return sum(self.payments.values())

    def payment_of(self, bidder: str) -> float:
        return self.payments.get(bidder, 0.0)

    def won(self, bidder: str) -> bool:
        return self.allocations.get(bidder, 0.0) > 0


class Mechanism(ABC):
    """An allocation + payment rule."""

    #: human-readable name used in benchmark tables
    name: str = "mechanism"

    #: True when truthful bidding is a dominant strategy (used by the
    #: simulator's IC-regret metric to label expected behaviour)
    incentive_compatible: bool = False

    @abstractmethod
    def run(self, bids: Sequence[Bid]) -> Outcome:
        """Clear the market for one good given the submitted bids."""

    @staticmethod
    def _sorted_bids(bids: Sequence[Bid]) -> list[Bid]:
        """Bids sorted by amount descending, ties broken by bidder name
        (deterministic clearing)."""
        _check_unique(bids)
        return sorted(bids, key=lambda b: (-b.amount, b.bidder))


def _check_unique(bids: Sequence[Bid]) -> None:
    names = [b.bidder for b in bids]
    if len(set(names)) != len(names):
        dupes = sorted({n for n in names if names.count(n) > 1})
        raise MechanismError(f"duplicate bidders: {dupes}")
