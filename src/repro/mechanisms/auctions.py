"""Classic auctions: Vickrey (k-unit, uniform price) and GSP.

Section 3.2.1 grounds the discussion in "a generalized second-price auction
[where] buyers bid for assets and the market decides who obtains the asset
in such a way that the top-K bids are allocated the K finite assets and each
kth-buyer pays the bid made by the (k-1)-buyer".  Both are implemented here;
the Vickrey variant is the incentive-compatible workhorse the market designs
use for scarce (exclusive-license) goods.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import MechanismError
from .base import Bid, Mechanism, Outcome


@dataclass
class VickreyAuction(Mechanism):
    """k-unit uniform-price Vickrey: top-k bids win, all pay the (k+1)-th.

    Truthful for unit-demand bidders; the textbook choice when a dataset is
    sold under an exclusive license with k slots (artificial scarcity,
    Section 4.4).
    """

    k: int = 1
    reserve: float = 0.0
    name: str = "vickrey"
    incentive_compatible: bool = True

    def __post_init__(self):
        if self.k < 1:
            raise MechanismError("k must be >= 1")
        if self.reserve < 0:
            raise MechanismError("reserve must be non-negative")

    def run(self, bids: Sequence[Bid]) -> Outcome:
        ranked = self._sorted_bids(bids)
        eligible = [b for b in ranked if b.amount >= self.reserve]
        winners = eligible[: self.k]
        if not winners:
            return Outcome()
        if len(eligible) > self.k:
            clearing = max(eligible[self.k].amount, self.reserve)
        else:
            clearing = self.reserve
        return Outcome(
            allocations={b.bidder: 1.0 for b in winners},
            payments={b.bidder: clearing for b in winners},
        )


@dataclass
class GSPAuction(Mechanism):
    """Generalized second price over ranked slots with click weights.

    Slot i has weight ``slot_weights[i]`` (descending); bidder in slot i
    pays the next bidder's bid per unit of weight.  Not truthful in general
    — the simulator uses it to show IC failure empirically.
    """

    slot_weights: tuple[float, ...] = (1.0,)
    name: str = "gsp"
    incentive_compatible: bool = False

    def __post_init__(self):
        if not self.slot_weights:
            raise MechanismError("need at least one slot")
        weights = list(self.slot_weights)
        if any(w <= 0 for w in weights):
            raise MechanismError("slot weights must be positive")
        if sorted(weights, reverse=True) != weights:
            raise MechanismError("slot weights must be non-increasing")

    def run(self, bids: Sequence[Bid]) -> Outcome:
        ranked = self._sorted_bids(bids)
        allocations: dict[str, float] = {}
        payments: dict[str, float] = {}
        for slot, bid in enumerate(ranked[: len(self.slot_weights)]):
            weight = self.slot_weights[slot]
            next_bid = (
                ranked[slot + 1].amount if slot + 1 < len(ranked) else 0.0
            )
            allocations[bid.bidder] = weight
            payments[bid.bidder] = next_bid * weight
        return Outcome(allocations=allocations, payments=payments)


@dataclass
class MyersonAuction(Mechanism):
    """Second-price auction with Myerson's optimal reserve.

    Revenue-optimal for a single item under regular valuation distributions
    (the external-market design's "extract as much money as possible").
    """

    reserve: float
    name: str = "myerson"
    incentive_compatible: bool = True

    def __post_init__(self):
        if self.reserve < 0:
            raise MechanismError("reserve must be non-negative")

    def run(self, bids: Sequence[Bid]) -> Outcome:
        ranked = self._sorted_bids(bids)
        eligible = [b for b in ranked if b.amount >= self.reserve]
        if not eligible:
            return Outcome()
        winner = eligible[0]
        second = eligible[1].amount if len(eligible) > 1 else 0.0
        price = max(second, self.reserve)
        return Outcome(
            allocations={winner.bidder: 1.0},
            payments={winner.bidder: price},
        )
