"""Differential privacy primitives for the seller management platform.

Section 4.2: "the SMP must incorporate some support for the safe release of
such sensitive datasets", leveraging "the rich literature on differential
privacy".  We implement the standard mechanisms sellers need before sharing:

* Laplace mechanism (pure ε-DP) and Gaussian mechanism ((ε, δ)-DP),
* randomized response for binary attributes,
* DP releases of the aggregate statistics the metadata engine profiles
  (count, mean, histogram) over relations,
* a column perturbation helper that produces the noisy dataset a seller
  actually ships to the arbiter, parameterized by ε so the privacy–value
  experiment (E8) can sweep it.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import PrivacyError
from ..relation import Relation


def _check_epsilon(epsilon: float) -> None:
    if not epsilon > 0:
        raise PrivacyError(f"epsilon must be positive, got {epsilon}")


def laplace_mechanism(
    value: float, sensitivity: float, epsilon: float, rng: np.random.Generator
) -> float:
    """Release ``value`` with Laplace(sensitivity/ε) noise (ε-DP)."""
    _check_epsilon(epsilon)
    if sensitivity < 0:
        raise PrivacyError("sensitivity must be non-negative")
    return float(value + rng.laplace(0.0, sensitivity / epsilon))


def gaussian_mechanism(
    value: float,
    sensitivity: float,
    epsilon: float,
    delta: float,
    rng: np.random.Generator,
) -> float:
    """Release ``value`` with Gaussian noise ((ε, δ)-DP, classic analysis)."""
    _check_epsilon(epsilon)
    if not 0 < delta < 1:
        raise PrivacyError(f"delta must be in (0, 1), got {delta}")
    sigma = sensitivity * math.sqrt(2.0 * math.log(1.25 / delta)) / epsilon
    return float(value + rng.normal(0.0, sigma))


def randomized_response(
    value: bool, epsilon: float, rng: np.random.Generator
) -> bool:
    """ε-DP randomized response: tell the truth w.p. e^ε/(1+e^ε)."""
    _check_epsilon(epsilon)
    p_truth = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    return bool(value) if rng.random() < p_truth else not bool(value)


def rr_unbias(observed_fraction: float, epsilon: float) -> float:
    """Debias the observed positive fraction of randomized responses."""
    _check_epsilon(epsilon)
    p = math.exp(epsilon) / (1.0 + math.exp(epsilon))
    return (observed_fraction + p - 1.0) / (2.0 * p - 1.0)


# -- DP releases over relations -------------------------------------------------


def dp_count(
    relation: Relation, epsilon: float, rng: np.random.Generator
) -> float:
    """DP row count (sensitivity 1)."""
    return laplace_mechanism(float(len(relation)), 1.0, epsilon, rng)


def dp_mean(
    relation: Relation,
    column: str,
    epsilon: float,
    rng: np.random.Generator,
    lower: float,
    upper: float,
) -> float:
    """DP mean of a clamped numeric column (sensitivity (u-l)/n)."""
    if upper <= lower:
        raise PrivacyError("need upper > lower clamp bounds")
    values = [
        min(max(float(v), lower), upper)
        for v in relation.column(column)
        if v is not None
    ]
    if not values:
        raise PrivacyError(f"column {column!r} has no values to average")
    sensitivity = (upper - lower) / len(values)
    return laplace_mechanism(
        sum(values) / len(values), sensitivity, epsilon, rng
    )


def dp_histogram(
    relation: Relation,
    column: str,
    epsilon: float,
    rng: np.random.Generator,
) -> dict[str, float]:
    """DP histogram over a categorical column (parallel comp., sens. 1)."""
    _check_epsilon(epsilon)
    counts: dict[str, int] = {}
    for v in relation.column(column):
        if v is None:
            continue
        counts[str(v)] = counts.get(str(v), 0) + 1
    return {
        k: max(0.0, laplace_mechanism(float(n), 1.0, epsilon, rng))
        for k, n in counts.items()
    }


def perturb_numeric_column(
    relation: Relation,
    column: str,
    epsilon: float,
    rng: np.random.Generator,
    sensitivity: float = 1.0,
) -> Relation:
    """The dataset a privacy-conscious seller actually ships: per-value
    Laplace noise on one numeric column, scaled by sensitivity/ε.

    Higher ε ⇒ less noise ⇒ more useful (and more valuable) data — the
    privacy–value connection of Section 8.2, exercised by benchmark E8.
    """
    _check_epsilon(epsilon)
    scale = sensitivity / epsilon
    return relation.map_column(
        column,
        lambda v: None if v is None else float(v) + float(rng.laplace(0, scale)),
    ).renamed(f"{relation.name}@eps={epsilon:g}")
