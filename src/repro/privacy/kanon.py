"""k-anonymity utilities for PII-bearing datasets.

The seller platform's "Anonymize" box (Fig. 2).  Sellers facing "the risk of
leaking data" (Section 3.4 FAQ) can suppress direct identifiers and
generalize quasi-identifiers until every row is indistinguishable from at
least k-1 others.
"""

from __future__ import annotations

import math

from ..errors import PrivacyError
from ..relation import Column, Relation, Schema


def equivalence_classes(
    relation: Relation, quasi_identifiers: list[str]
) -> dict[tuple, int]:
    """Sizes of the groups induced by the quasi-identifier columns."""
    positions = relation.schema.positions(quasi_identifiers)
    classes: dict[tuple, int] = {}
    for row in relation.rows:
        key = tuple(row[p] for p in positions)
        classes[key] = classes.get(key, 0) + 1
    return classes


def is_k_anonymous(
    relation: Relation, quasi_identifiers: list[str], k: int
) -> bool:
    if k < 1:
        raise PrivacyError("k must be >= 1")
    if len(relation) == 0:
        return True
    return min(equivalence_classes(relation, quasi_identifiers).values()) >= k


def suppress_columns(relation: Relation, columns: list[str]) -> Relation:
    """Drop direct identifiers (names, emails) entirely."""
    return relation.drop(columns)


def generalize_numeric(
    relation: Relation, column: str, bin_width: float
) -> Relation:
    """Replace numeric values with their bin label '[lo, hi)'."""
    if bin_width <= 0:
        raise PrivacyError("bin width must be positive")

    def to_bin(v):
        if v is None:
            return None
        lo = math.floor(float(v) / bin_width) * bin_width
        return f"[{lo:g}, {lo + bin_width:g})"

    return relation.map_column(column, to_bin)


def anonymize(
    relation: Relation,
    quasi_identifiers: list[str],
    k: int,
    suppress: list[str] | None = None,
    max_rounds: int = 12,
) -> Relation:
    """Suppress identifiers, then generalize numeric quasi-identifiers with
    doubling bin widths until k-anonymity holds; finally suppress rows in
    still-small equivalence classes.

    Raises :class:`PrivacyError` if k exceeds the number of rows.
    """
    if k < 1:
        raise PrivacyError("k must be >= 1")
    out = relation
    if suppress:
        out = suppress_columns(out, suppress)
    remaining_qis = [q for q in quasi_identifiers if q in out.schema]
    if k > len(out):
        raise PrivacyError(
            f"cannot make {len(out)} rows {k}-anonymous"
        )
    numeric_qis = [
        q for q in remaining_qis if out.schema[q].dtype in ("int", "float")
    ]
    widths = {q: _initial_width(out, q) for q in numeric_qis}
    for _round in range(max_rounds):
        if is_k_anonymous(out, remaining_qis, k):
            return out.renamed(relation.name + f"@k={k}")
        if not numeric_qis:
            break
        candidate = out
        for q in numeric_qis:
            candidate = generalize_numeric(candidate, q, widths[q])
            widths[q] *= 2
        out = candidate
        numeric_qis = []  # after one generalization pass, only widen via rows
        if is_k_anonymous(out, remaining_qis, k):
            return out.renamed(relation.name + f"@k={k}")
        # keep doubling on the (now string) bins is impossible; fall through
        break
    # suppression fallback: drop rows in classes smaller than k
    classes = equivalence_classes(out, remaining_qis)
    positions = out.schema.positions(remaining_qis)
    keep_rows, keep_prov = [], []
    for row, prov in zip(out.rows, out.provenance):
        key = tuple(row[p] for p in positions)
        if classes[key] >= k:
            keep_rows.append(row)
            keep_prov.append(prov)
    schema = Schema([Column(c.name, "any", c.semantic)
                     for c in out.schema.columns])
    return Relation(
        relation.name + f"@k={k}", schema, keep_rows,
        provenance=keep_prov, validate=False,
    )


def _initial_width(relation: Relation, column: str) -> float:
    values = [
        float(v) for v in relation.column(column) if v is not None
    ]
    if not values:
        return 1.0
    span = max(values) - min(values)
    return max(span / 8.0, 1e-9)
