"""Privacy budget accounting across releases.

Because "datasets may leak information when combined with other datasets —
which is precisely what the arbiter will do as part of the mashup building
process — the protection process must be coordinated between SMP and AMS"
(Section 4.2).  The accountant is that coordination point: every DP release
against a dataset draws from its ε budget (basic sequential composition),
and the arbiter refuses mashups that would overdraw it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import BudgetExhaustedError, PrivacyError


@dataclass
class BudgetEntry:
    limit: float
    spent: float = 0.0
    releases: list[tuple[str, float]] = field(default_factory=list)

    @property
    def remaining(self) -> float:
        return self.limit - self.spent


class PrivacyAccountant:
    """Sequential-composition ε ledger, keyed by dataset name."""

    def __init__(self):
        self._budgets: dict[str, BudgetEntry] = {}

    def register(self, dataset: str, epsilon_budget: float) -> None:
        if epsilon_budget <= 0:
            raise PrivacyError("epsilon budget must be positive")
        if dataset in self._budgets:
            raise PrivacyError(f"dataset {dataset!r} already has a budget")
        self._budgets[dataset] = BudgetEntry(limit=epsilon_budget)

    def __contains__(self, dataset: str) -> bool:
        return dataset in self._budgets

    def remaining(self, dataset: str) -> float:
        return self._entry(dataset).remaining

    def spent(self, dataset: str) -> float:
        return self._entry(dataset).spent

    def can_spend(self, dataset: str, epsilon: float) -> bool:
        return self._entry(dataset).remaining >= epsilon - 1e-12

    def spend(self, dataset: str, epsilon: float, purpose: str = "") -> None:
        """Record a release; raise BudgetExhaustedError when over budget."""
        if epsilon <= 0:
            raise PrivacyError("cannot spend non-positive epsilon")
        entry = self._entry(dataset)
        if entry.remaining < epsilon - 1e-12:
            raise BudgetExhaustedError(
                f"dataset {dataset!r}: requested ε={epsilon:g} exceeds "
                f"remaining budget {entry.remaining:g}"
            )
        entry.spent += epsilon
        entry.releases.append((purpose, epsilon))

    def history(self, dataset: str) -> list[tuple[str, float]]:
        return list(self._entry(dataset).releases)

    def _entry(self, dataset: str) -> BudgetEntry:
        try:
            return self._budgets[dataset]
        except KeyError:
            raise PrivacyError(
                f"dataset {dataset!r} has no registered privacy budget"
            ) from None
