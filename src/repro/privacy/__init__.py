"""Statistical privacy: DP mechanisms, k-anonymity, budget accounting."""

from .accountant import PrivacyAccountant
from .dp import (
    dp_count,
    dp_histogram,
    dp_mean,
    gaussian_mechanism,
    laplace_mechanism,
    perturb_numeric_column,
    randomized_response,
    rr_unbias,
)
from .kanon import (
    anonymize,
    equivalence_classes,
    generalize_numeric,
    is_k_anonymous,
    suppress_columns,
)

__all__ = [
    "laplace_mechanism",
    "gaussian_mechanism",
    "randomized_response",
    "rr_unbias",
    "dp_count",
    "dp_mean",
    "dp_histogram",
    "perturb_numeric_column",
    "anonymize",
    "is_k_anonymous",
    "equivalence_classes",
    "generalize_numeric",
    "suppress_columns",
    "PrivacyAccountant",
]
