"""Durable market state: a SQLite-backed store under the platform façade.

The paper's DMMS is an *always-on* service; this module gives the façade a
crash-safe home for everything the discovery stack derives, so a restarted
process **replays** state instead of re-profiling every dataset:

* dataset metadata (relation payload, snapshot lineage, seller, reserve,
  license and contextual-integrity policy),
* per-column profiles — summary statistics plus the binary MinHash
  signature (:meth:`~repro.sketches.MinHash.to_bytes`),
* the LSH band buckets each signature hashes into,
* the join-candidate set and the relationship graph's edges, both with
  their fan-out estimates,
* the component fingerprints (persisted as an integrity check — replay
  recomputes them and refuses a store whose digests do not match),
* the component-scoped plan cache (best effort; entries that defy JSON
  serialization are simply not persisted),

all keyed by ``graph_version`` so a cold start resumes the exact version
counter — ``as_of`` stamps stay monotonic across restarts.

Durability follows the usual SQLite service recipe: WAL journaling (readers
never block the single writer), ``synchronous=NORMAL`` (safe with WAL; an
OS crash can lose the last transaction but never corrupts), a generous
``busy_timeout``, and one transaction per delta so a kill -9 between deltas
leaves a consistent prefix.  Connections are opened per call: the store
object itself is trivially shareable across threads.

On top of the replay tables the store offers **service reads**: FTS5-backed
free-text dataset search (graceful LIKE fallback when the linked SQLite
lacks FTS5) and keyset-cursor dataset listing that stays O(page) regardless
of offset.
"""

from __future__ import annotations

import json
import pickle
import sqlite3
from contextlib import contextmanager
from pathlib import Path

from ..discovery.index import JoinCandidate, JoinPredicate
from ..discovery.metadata import ContextSnapshot
from ..discovery.profiler import (
    TableProfile,
    column_profile_from_record,
    column_profile_record,
)
from ..discovery.stats import FanoutEstimate
from ..errors import InvalidRequestError, MarketError
from ..integration.dod import _PlanCacheEntry
from ..integration.plan import JoinStep, Mashup, MashupPlan, TransformStep
from ..integration.synthesis import AffineMap, DictionaryMap
from ..market.licensing import (
    ContextualIntegrityPolicy,
    License,
    LicenseKind,
)
from ..relation import Relation
from ..sketches import MinHash

#: bump on any table change; a store created by a different schema version
#: is refused rather than silently misread
SCHEMA_VERSION = 2

_JSON_SCALARS = (type(None), bool, int, float, str)

#: valid ``list_datasets`` sort keys -> (order column, cursor-value parser,
#: page-row field the next cursor is minted from).  The dataset name is the
#: tiebreak column in every order, so keyset pages never skip or repeat.
LIST_SORT_KEYS: dict[str, tuple[str, type, str]] = {
    "registered": ("logical_time", int, "logical_time"),
    "name": ("dataset", str, "dataset"),
    "rows": ("n_rows", int, "rows"),
    "reserve": ("reserve_price", float, "reserve_price"),
}

#: the store's relational schema — ``scripts/check_store_schema.py`` fails
#: CI when this drifts from the table documented in the README
TABLES: dict[str, tuple[str, ...]] = {
    "store_meta": ("key", "value"),
    "datasets": (
        "dataset", "reg_order", "version", "logical_time", "content_hash",
        "owner", "credentials", "seller", "reserve_price", "license_json",
        "n_rows", "schema_json", "rows_format", "rows_payload",
        "graph_version",
    ),
    "column_profiles": (
        "dataset", "position", "column_name", "dtype", "semantic",
        "distinct_fraction", "content_hash", "scheme", "signature",
        "numeric_json", "categorical_json",
    ),
    "lsh_buckets": ("dataset", "column_name", "band", "band_key"),
    "join_candidates": (
        "left_dataset", "left_column", "right_dataset", "right_column",
        "score", "evidence", "pk_side", "fanout_lr", "fanout_rl",
    ),
    "graph_edges": (
        "left_dataset", "right_dataset", "position", "pairs_json", "score",
        "evidence", "pk_side", "fanout_lr", "fanout_rl",
    ),
    "component_fingerprints": ("component_id", "fingerprint"),
    "plan_cache": ("cache_key", "position", "graph_version", "entry_json"),
}

_DDL = """
CREATE TABLE IF NOT EXISTS store_meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS datasets (
    dataset       TEXT PRIMARY KEY,
    reg_order     INTEGER NOT NULL,
    version       INTEGER NOT NULL,
    logical_time  INTEGER NOT NULL,
    content_hash  TEXT NOT NULL,
    owner         TEXT NOT NULL,
    credentials   TEXT NOT NULL,
    seller        TEXT NOT NULL,
    reserve_price REAL NOT NULL,
    license_json  TEXT NOT NULL,
    n_rows        INTEGER NOT NULL,
    schema_json   TEXT NOT NULL,
    rows_format   TEXT NOT NULL,
    rows_payload  BLOB NOT NULL,
    graph_version INTEGER NOT NULL
);
CREATE INDEX IF NOT EXISTS datasets_by_time
    ON datasets (logical_time, dataset);
CREATE TABLE IF NOT EXISTS column_profiles (
    dataset           TEXT NOT NULL,
    position          INTEGER NOT NULL,
    column_name       TEXT NOT NULL,
    dtype             TEXT NOT NULL,
    semantic          TEXT,
    distinct_fraction REAL NOT NULL,
    content_hash      TEXT NOT NULL,
    scheme            TEXT NOT NULL,
    signature         BLOB NOT NULL,
    numeric_json      TEXT,
    categorical_json  TEXT NOT NULL,
    PRIMARY KEY (dataset, column_name)
);
CREATE TABLE IF NOT EXISTS lsh_buckets (
    dataset     TEXT NOT NULL,
    column_name TEXT NOT NULL,
    band        INTEGER NOT NULL,
    band_key    TEXT NOT NULL,
    PRIMARY KEY (dataset, column_name, band)
);
CREATE TABLE IF NOT EXISTS join_candidates (
    left_dataset  TEXT NOT NULL,
    left_column   TEXT NOT NULL,
    right_dataset TEXT NOT NULL,
    right_column  TEXT NOT NULL,
    score         REAL NOT NULL,
    evidence      TEXT NOT NULL,
    pk_side       TEXT,
    fanout_lr     REAL,
    fanout_rl     REAL,
    PRIMARY KEY (left_dataset, left_column, right_dataset, right_column)
);
CREATE TABLE IF NOT EXISTS graph_edges (
    left_dataset  TEXT NOT NULL,
    right_dataset TEXT NOT NULL,
    position      INTEGER NOT NULL,
    pairs_json    TEXT NOT NULL,
    score         REAL NOT NULL,
    evidence      TEXT NOT NULL,
    pk_side       TEXT,
    fanout_lr     REAL,
    fanout_rl     REAL,
    PRIMARY KEY (left_dataset, right_dataset, position)
);
CREATE TABLE IF NOT EXISTS component_fingerprints (
    component_id INTEGER PRIMARY KEY,
    fingerprint  TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS plan_cache (
    cache_key     TEXT PRIMARY KEY,
    position      INTEGER NOT NULL,
    graph_version INTEGER NOT NULL,
    entry_json    TEXT NOT NULL
);
"""

_FTS_DDL = """
CREATE VIRTUAL TABLE IF NOT EXISTS dataset_fts USING fts5(
    dataset, owner, columns, semantics
);
"""


class StoreError(MarketError):
    """A durable-store operation failed (corrupt payload, schema drift)."""


def _untuple(value):
    """JSON round-trip inverse for cache keys: lists back to tuples."""
    if isinstance(value, list):
        return tuple(_untuple(v) for v in value)
    return value


def _mapping_to_json(mapping) -> dict:
    if isinstance(mapping, AffineMap):
        return {"type": "affine", "a": mapping.a, "b": mapping.b}
    if isinstance(mapping, DictionaryMap):
        pairs = list(mapping.mapping.items())
        if not all(
            type(k) in _JSON_SCALARS and type(v) in _JSON_SCALARS
            for k, v in pairs
        ):
            raise StoreError("dictionary mapping is not JSON-serializable")
        return {"type": "dict", "pairs": [[k, v] for k, v in pairs]}
    raise StoreError(f"unserializable mapping {mapping!r}")


def _mapping_from_json(data: dict):
    if data["type"] == "affine":
        return AffineMap(data["a"], data["b"])
    return DictionaryMap({k: v for k, v in data["pairs"]})


class MarketStore:
    """SQLite persistence for one :class:`~repro.platform.DataMarket`.

    The façade drives it: every accepted/retired dataset is persisted in
    its own transaction, and ``DataMarket(store=...)`` cold-starts by
    calling :meth:`replay_into`.  The store also answers the service
    layer's listing/search reads directly from SQL.
    """

    def __init__(self, path: str | Path):
        self.path = str(path)
        self._fts = True
        with self._connect() as conn:
            conn.executescript(_DDL)
            try:
                conn.executescript(_FTS_DDL)
            except sqlite3.OperationalError:
                self._fts = False  # linked sqlite lacks FTS5: LIKE fallback
            row = conn.execute(
                "SELECT value FROM store_meta WHERE key = 'schema_version'"
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO store_meta (key, value) "
                    "VALUES ('schema_version', ?)",
                    (str(SCHEMA_VERSION),),
                )
            elif int(row[0]) != SCHEMA_VERSION:
                raise StoreError(
                    f"store at {self.path!r} has schema version {row[0]}, "
                    f"this build expects {SCHEMA_VERSION}"
                )

    # -- connection management -------------------------------------------
    @contextmanager
    def _connect(self):
        """One short-lived connection per call: commit-on-success (so each
        delta is one transaction — a kill between deltas leaves a
        consistent prefix), always closed on the way out."""
        conn = sqlite3.connect(self.path, timeout=30.0)
        try:
            conn.execute("PRAGMA journal_mode=WAL")
            conn.execute("PRAGMA synchronous=NORMAL")
            conn.execute("PRAGMA busy_timeout=30000")
            conn.execute("PRAGMA foreign_keys=ON")
            with conn:
                yield conn
        finally:
            conn.close()

    @property
    def has_fts(self) -> bool:
        """True when the linked SQLite provides FTS5."""
        return self._fts

    # -- meta --------------------------------------------------------------
    @staticmethod
    def _set_meta(conn: sqlite3.Connection, key: str, value) -> None:
        conn.execute(
            "INSERT INTO store_meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, str(value)),
        )

    @staticmethod
    def _get_meta(conn: sqlite3.Connection, key: str, default=None):
        row = conn.execute(
            "SELECT value FROM store_meta WHERE key = ?", (key,)
        ).fetchone()
        return default if row is None else row[0]

    def graph_version(self) -> int:
        """The persisted join-graph version (0 for an empty store)."""
        with self._connect() as conn:
            return int(self._get_meta(conn, "graph_version", 0))

    def dataset_count(self) -> int:
        with self._connect() as conn:
            return conn.execute("SELECT COUNT(*) FROM datasets").fetchone()[0]

    # -- payload codecs ----------------------------------------------------
    @staticmethod
    def _encode_rows(relation: Relation) -> tuple[str, bytes]:
        rows = relation.rows
        if all(
            type(v) in _JSON_SCALARS for row in rows for v in row
        ):
            return "json", json.dumps([list(r) for r in rows]).encode()
        return "pickle", pickle.dumps(
            [tuple(r) for r in rows], protocol=4
        )

    @staticmethod
    def _decode_rows(fmt: str, payload: bytes) -> list[tuple]:
        if fmt == "json":
            return [tuple(r) for r in json.loads(payload.decode())]
        if fmt == "pickle":
            return pickle.loads(payload)
        raise StoreError(f"unknown rows payload format {fmt!r}")

    @staticmethod
    def _license_json(license: License, policy: ContextualIntegrityPolicy):
        return json.dumps({
            "kind": license.kind.value,
            "tax": license.exclusivity_tax_rate,
            "max": license.max_licensees,
            "policy": sorted(policy.allowed_contexts),
        })

    @staticmethod
    def _license_from_json(payload: str):
        data = json.loads(payload)
        license = License(
            kind=LicenseKind(data["kind"]),
            exclusivity_tax_rate=data["tax"],
            max_licensees=data["max"],
        )
        policy = ContextualIntegrityPolicy(frozenset(data["policy"]))
        return license, policy

    # -- writes ------------------------------------------------------------
    def persist_dataset(self, market, name: str) -> None:
        """Persist one accepted (registered or updated) dataset — its
        relation, snapshot, profiles, buckets, and the market-wide derived
        state the delta touched — in a single transaction."""
        metadata = market.metadata
        index = market.index
        snapshot = metadata.snapshot(name)
        relation = metadata.relation(name)
        profile = snapshot.profile
        license = market.licenses.license_of(name)
        policy = market.licenses.policy_of(name)
        seller = market.licenses.owner_of(name)
        reserve = market.arbiter.reserve_price_of(name)
        graph_version = index.graph_version
        fmt, payload = self._encode_rows(relation)
        schema_json = json.dumps(
            [[c.name, c.dtype, c.semantic] for c in relation.schema]
        )
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO datasets VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    name, index.registration_order(name), snapshot.version,
                    snapshot.logical_time, snapshot.content_hash,
                    snapshot.owners[0], snapshot.credentials, seller,
                    reserve, self._license_json(license, policy),
                    profile.n_rows, schema_json, fmt, payload, graph_version,
                ),
            )
            conn.execute(
                "DELETE FROM column_profiles WHERE dataset = ?", (name,)
            )
            conn.execute(
                "DELETE FROM lsh_buckets WHERE dataset = ?", (name,)
            )
            for position, cp in enumerate(profile.columns):
                record = column_profile_record(cp)
                conn.execute(
                    "INSERT INTO column_profiles VALUES "
                    "(?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                    (
                        name, position, cp.column, cp.dtype, cp.semantic,
                        cp.distinct_fraction, cp.content_hash,
                        cp.signature.scheme, cp.signature.to_bytes(),
                        None if record["numeric"] is None
                        else json.dumps(record["numeric"]),
                        json.dumps(record["categorical"]),
                    ),
                )
                for band, key in enumerate(
                    index.lsh_band_keys(cp.signature)
                ):
                    conn.execute(
                        "INSERT INTO lsh_buckets VALUES (?, ?, ?, ?)",
                        (name, cp.column, band,
                         ",".join(str(v) for v in key)),
                    )
            self._rewrite_relationships(conn, market, name)
            self._finish_delta(conn, market, graph_version)

    def persist_retire(self, market, name: str) -> None:
        """Remove one retired dataset and the derived rows that named it."""
        graph_version = market.index.graph_version
        with self._connect() as conn:
            for table in ("datasets", "column_profiles", "lsh_buckets"):
                conn.execute(
                    f"DELETE FROM {table} WHERE dataset = ?", (name,)
                )
            conn.execute(
                "DELETE FROM join_candidates "
                "WHERE left_dataset = ? OR right_dataset = ?", (name, name),
            )
            conn.execute(
                "DELETE FROM graph_edges "
                "WHERE left_dataset = ? OR right_dataset = ?", (name, name),
            )
            if self._fts:
                conn.execute(
                    "DELETE FROM dataset_fts WHERE dataset = ?", (name,)
                )
            self._finish_delta(conn, market, graph_version)

    def _rewrite_relationships(
        self, conn: sqlite3.Connection, market, name: str
    ) -> None:
        """Replace every candidate/edge row involving ``name`` with the
        index's current view (a delta can add, rescore, or drop them)."""
        index = market.index
        conn.execute(
            "DELETE FROM join_candidates "
            "WHERE left_dataset = ? OR right_dataset = ?", (name, name),
        )
        conn.execute(
            "DELETE FROM graph_edges "
            "WHERE left_dataset = ? OR right_dataset = ?", (name, name),
        )
        for cand in index.dataset_candidates(name):
            fan = cand.fanout
            conn.execute(
                "INSERT OR REPLACE INTO join_candidates VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    cand.left_dataset, cand.left_column,
                    cand.right_dataset, cand.right_column,
                    cand.score, cand.evidence, cand.pk_side,
                    None if fan is None else fan.lr,
                    None if fan is None else fan.rl,
                ),
            )
        positions: dict[tuple[str, str], int] = {}
        for pred in index.dataset_edges(name):
            pair = (pred.left_dataset, pred.right_dataset)
            pos = positions.get(pair, 0)
            positions[pair] = pos + 1
            fan = pred.fanout
            conn.execute(
                "INSERT OR REPLACE INTO graph_edges VALUES "
                "(?, ?, ?, ?, ?, ?, ?, ?, ?)",
                (
                    pred.left_dataset, pred.right_dataset, pos,
                    json.dumps([list(p) for p in pred.pairs]),
                    pred.score, pred.evidence, pred.pk_side,
                    None if fan is None else fan.lr,
                    None if fan is None else fan.rl,
                ),
            )
        if self._fts:
            snapshot = market.metadata.snapshot(name)
            conn.execute(
                "DELETE FROM dataset_fts WHERE dataset = ?", (name,)
            )
            conn.execute(
                "INSERT INTO dataset_fts VALUES (?, ?, ?, ?)",
                (
                    name,
                    snapshot.owners[0],
                    " ".join(c.column for c in snapshot.profile.columns),
                    " ".join(
                        c.semantic for c in snapshot.profile.columns
                        if c.semantic
                    ),
                ),
            )

    def _finish_delta(
        self, conn: sqlite3.Connection, market, graph_version: int
    ) -> None:
        """Shared tail of every delta transaction: fingerprints, clocks,
        the graph version, and plan-cache pruning."""
        conn.execute("DELETE FROM component_fingerprints")
        for cid, fp in enumerate(market.index.component_fingerprints()):
            conn.execute(
                "INSERT INTO component_fingerprints VALUES (?, ?)",
                (cid, fp),
            )
        self._set_meta(conn, "graph_version", graph_version)
        self._set_meta(conn, "metadata_clock", market.metadata.clock)
        self._set_meta(
            conn, "newest_logical_time", market.metadata.newest_logical_time
        )
        # cached plans are only restorable at the exact version they were
        # saved under; rows from older versions are dead weight
        conn.execute(
            "DELETE FROM plan_cache WHERE graph_version != ?",
            (graph_version,),
        )

    # -- plan-cache persistence -------------------------------------------
    def save_plan_cache(self, market) -> int:
        """Persist the current plan cache (best effort): entries whose keys
        or mashups defy JSON stay process-local.  Returns rows written."""
        planner = market.planner
        graph_version = market.index.graph_version
        written = 0
        with self._connect() as conn:
            conn.execute("DELETE FROM plan_cache")
            for position, (key, entry) in enumerate(
                planner.export_plan_cache()
            ):
                try:
                    key_json = json.dumps(key)
                    entry_json = json.dumps(self._entry_to_json(entry))
                except (StoreError, TypeError, ValueError):
                    continue
                conn.execute(
                    "INSERT OR REPLACE INTO plan_cache VALUES (?, ?, ?, ?)",
                    (key_json, position, graph_version, entry_json),
                )
                written += 1
        return written

    @staticmethod
    def _entry_to_json(entry: _PlanCacheEntry) -> dict:
        mashups = []
        for m in entry.mashups:
            plan = m.plan
            mashups.append({
                "base": plan.base,
                "joins": [
                    {
                        "dataset": j.dataset, "left_on": j.left_on,
                        "right_on": j.right_on, "score": j.score,
                        "extra_on": [list(p) for p in j.extra_on],
                        "fanout": j.fanout,
                    }
                    for j in plan.joins
                ],
                "transforms": [
                    {
                        "source_column": t.source_column,
                        "output_column": t.output_column,
                        "mapping": _mapping_to_json(t.mapping),
                    }
                    for t in plan.transforms
                ],
                "output": plan.output,
                "matched": {
                    attr: list(hit) for attr, hit in m.matched.items()
                },
                "missing": list(m.missing),
            })
        return {
            "fingerprints": sorted(entry.fingerprints),
            "attributes": list(entry.attributes),
            "min_score": entry.min_score,
            "hint_datasets": sorted(entry.hint_datasets),
            "mashups": mashups,
        }

    def _entry_from_json(self, data: dict, market) -> _PlanCacheEntry:
        mashups = []
        for md in data["mashups"]:
            plan = MashupPlan(
                base=md["base"],
                joins=[
                    JoinStep(
                        dataset=j["dataset"], left_on=j["left_on"],
                        right_on=j["right_on"], score=j["score"],
                        extra_on=tuple(
                            (a, b) for a, b in j["extra_on"]
                        ),
                        fanout=j["fanout"],
                    )
                    for j in md["joins"]
                ],
                transforms=[
                    TransformStep(
                        source_column=t["source_column"],
                        output_column=t["output_column"],
                        mapping=_mapping_from_json(t["mapping"]),
                    )
                    for t in md["transforms"]
                ],
                output=dict(md["output"]),
            )
            mashups.append(Mashup(
                plan=plan,
                matched={
                    attr: tuple(hit) for attr, hit in md["matched"].items()
                },
                missing=tuple(md["missing"]),
                tree=plan.build_tree(market.metadata.relation),
                engine=market.planner.exec_engine,
            ))
        return _PlanCacheEntry(
            mashups=mashups,
            fingerprints=frozenset(data["fingerprints"]),
            attributes=tuple(data["attributes"]),
            min_score=data["min_score"],
            hint_datasets=frozenset(data["hint_datasets"]),
        )

    # -- cold-start replay -------------------------------------------------
    def replay_into(self, market) -> int:
        """Rebuild a fresh market's full state from the store; returns the
        number of datasets replayed.  An empty store is a no-op."""
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT dataset, version, logical_time, content_hash, "
                "owner, credentials, seller, reserve_price, license_json, "
                "n_rows, schema_json, rows_format, rows_payload "
                "FROM datasets ORDER BY reg_order"
            ).fetchall()
            if not rows:
                return 0
            stored_schemes = sorted(
                s for (s,) in conn.execute(
                    "SELECT DISTINCT scheme FROM column_profiles"
                )
            )
            if len(stored_schemes) > 1:
                raise StoreError(
                    f"store at {self.path!r} holds mixed sketch schemes "
                    f"{stored_schemes}: signatures from different schemes "
                    f"are not mutually comparable, refusing to replay"
                )
            market_scheme = market.metadata.scheme
            if stored_schemes and stored_schemes[0] != market_scheme:
                raise StoreError(
                    f"store at {self.path!r} was written with sketch "
                    f"scheme {stored_schemes[0]!r} but the market uses "
                    f"{market_scheme!r}: re-register the corpus to "
                    f"migrate schemes"
                )
            profiles: list[TableProfile] = []
            for (name, version, logical_time, content_hash, owner,
                 credentials, seller, reserve, license_json, n_rows,
                 schema_json, fmt, payload) in rows:
                relation = Relation(
                    name,
                    [tuple(c) for c in json.loads(schema_json)],
                    self._decode_rows(fmt, payload),
                )
                columns = []
                for (col, dtype, semantic, distinct_fraction,
                     col_hash, scheme, sig, numeric_json,
                     categorical_json) in conn.execute(
                    "SELECT column_name, dtype, semantic, "
                    "distinct_fraction, content_hash, scheme, signature, "
                    "numeric_json, categorical_json FROM column_profiles "
                    "WHERE dataset = ? ORDER BY position", (name,)
                ):
                    signature = MinHash.from_bytes(sig)
                    if signature.scheme != scheme:
                        raise StoreError(
                            f"column profile {name}.{col} declares scheme "
                            f"{scheme!r} but its signature payload decodes "
                            f"as {signature.scheme!r}: the store is corrupt"
                        )
                    record = {
                        "column": col,
                        "dtype": dtype,
                        "semantic": semantic,
                        "distinct_fraction": distinct_fraction,
                        "content_hash": col_hash,
                        "numeric": (
                            None if numeric_json is None
                            else json.loads(numeric_json)
                        ),
                        "categorical": json.loads(categorical_json),
                    }
                    columns.append(column_profile_from_record(
                        name, record, signature
                    ))
                profile = TableProfile(
                    dataset=name, n_rows=n_rows,
                    content_hash=content_hash, columns=tuple(columns),
                )
                profiles.append(profile)
                market.metadata.restore_lifecycle(
                    relation,
                    ContextSnapshot(
                        dataset=name, version=version,
                        logical_time=logical_time,
                        content_hash=content_hash, profile=profile,
                        owners=(owner,), credentials=credentials,
                    ),
                )
                license, policy = self._license_from_json(license_json)
                market.arbiter.adopt_dataset(
                    name, seller, reserve, license, policy
                )
            market.metadata.restore_clock(
                int(self._get_meta(conn, "metadata_clock", 0)),
                int(self._get_meta(conn, "newest_logical_time", 0)),
            )
            candidates = [
                JoinCandidate(
                    left_dataset=ld, left_column=lc,
                    right_dataset=rd, right_column=rc,
                    score=score, evidence=evidence, pk_side=pk_side,
                    fanout=(
                        None if lr is None else FanoutEstimate(lr, rl)
                    ),
                )
                for (ld, lc, rd, rc, score, evidence, pk_side, lr, rl)
                in conn.execute(
                    "SELECT * FROM join_candidates "
                    "ORDER BY left_dataset, left_column, "
                    "right_dataset, right_column"
                )
            ]
            edges = [
                JoinPredicate(
                    left_dataset=ld, right_dataset=rd,
                    pairs=tuple(
                        (a, b) for a, b in json.loads(pairs_json)
                    ),
                    score=score, evidence=evidence, pk_side=pk_side,
                    fanout=(
                        None if lr is None else FanoutEstimate(lr, rl)
                    ),
                )
                for (ld, rd, _pos, pairs_json, score, evidence,
                     pk_side, lr, rl)
                in conn.execute(
                    "SELECT * FROM graph_edges "
                    "ORDER BY left_dataset, right_dataset, position"
                )
            ]
            graph_version = int(self._get_meta(conn, "graph_version", 0))
            market.index.restore_state(
                profiles=profiles, candidates=candidates, edges=edges,
                graph_version=graph_version,
            )
            stored_fps = [
                fp for (fp,) in conn.execute(
                    "SELECT fingerprint FROM component_fingerprints "
                    "ORDER BY component_id"
                )
            ]
            live_fps = list(market.index.component_fingerprints())
            if stored_fps != live_fps:
                raise StoreError(
                    "replayed component fingerprints diverge from the "
                    "persisted ones — the store is corrupt or was written "
                    "by an incompatible build"
                )
            restored: list[tuple[tuple, _PlanCacheEntry]] = []
            for key_json, entry_json in conn.execute(
                "SELECT cache_key, entry_json FROM plan_cache "
                "WHERE graph_version = ? ORDER BY position",
                (graph_version,),
            ):
                try:
                    key = _untuple(json.loads(key_json))
                    entry = self._entry_from_json(
                        json.loads(entry_json), market
                    )
                except Exception:
                    continue  # a stale/undecodable row is just a cache miss
                restored.append((key, entry))
            if restored:
                market.planner.restore_plan_cache(restored)
            return len(rows)

    # -- service reads -----------------------------------------------------
    def list_datasets(
        self,
        limit: int = 50,
        cursor: str | None = None,
        sort: str = "registered",
    ) -> tuple[list[dict], str | None]:
        """Keyset-cursor page over registered datasets.

        ``sort`` picks the listing order (see :data:`LIST_SORT_KEYS`);
        the default is registration (logical-time) order, with the dataset
        name as the deterministic tiebreak in every order.  Returns
        ``(rows, next_cursor)`` where a ``None`` cursor means the listing
        is exhausted; pass the returned cursor back in to fetch the next
        page in O(page), independent of how deep the listing already is.
        Cursors are sort-specific — a cursor minted under one sort key is
        rejected under another when its value part does not parse.

        Invalid inputs (non-positive limit, unknown sort key, malformed
        cursor) raise a typed
        :class:`~repro.errors.InvalidRequestError` *before* any SQL runs,
        so network gateways can map them to a 422 instead of surfacing a
        storage error."""
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise InvalidRequestError(
                f"limit must be a positive integer, got {limit!r}"
            )
        try:
            column, parse, field = LIST_SORT_KEYS[sort]
        except KeyError:
            raise InvalidRequestError(
                f"unknown sort key {sort!r}; "
                f"expected one of {sorted(LIST_SORT_KEYS)}"
            ) from None
        after: tuple | None = None
        if cursor is not None:
            try:
                value_part, after_name = cursor.split("|", 1)
                after = (parse(value_part), after_name)
            except (ValueError, TypeError, AttributeError):
                raise InvalidRequestError(
                    f"malformed cursor {cursor!r} for sort {sort!r}"
                ) from None
        select = (
            "SELECT dataset, seller, version, logical_time, n_rows, "
            "reserve_price FROM datasets "
        )
        with self._connect() as conn:
            if after is None:
                rows = conn.execute(
                    select + f"ORDER BY {column}, dataset LIMIT ?",
                    (limit,),
                ).fetchall()
            else:
                rows = conn.execute(
                    select + f"WHERE ({column}, dataset) > (?, ?) "
                    f"ORDER BY {column}, dataset LIMIT ?",
                    (*after, limit),
                ).fetchall()
        page = [
            {
                "dataset": d, "seller": s, "version": v,
                "logical_time": t, "rows": n, "reserve_price": r,
            }
            for (d, s, v, t, n, r) in rows
        ]
        next_cursor = (
            f"{page[-1][field]}|{page[-1]['dataset']}"
            if len(page) == limit else None
        )
        return page, next_cursor

    def search_datasets(self, query: str, limit: int = 10) -> list[dict]:
        """Free-text dataset search over names, owners, column names and
        semantic tags — FTS5-ranked (bm25) when available, LIKE otherwise.
        """
        tokens = [t for t in query.split() if t]
        if not tokens:
            return []
        with self._connect() as conn:
            if self._fts:
                match = " ".join(
                    '"{}"'.format(t.replace('"', '""')) for t in tokens
                )
                rows = conn.execute(
                    "SELECT f.dataset, f.owner, d.n_rows "
                    "FROM dataset_fts f JOIN datasets d "
                    "ON d.dataset = f.dataset "
                    "WHERE dataset_fts MATCH ? "
                    "ORDER BY bm25(dataset_fts) LIMIT ?",
                    (match, limit),
                ).fetchall()
            else:
                like = f"%{tokens[0]}%"
                rows = conn.execute(
                    "SELECT dataset, owner, n_rows FROM datasets "
                    "WHERE dataset LIKE ? OR owner LIKE ? "
                    "ORDER BY dataset LIMIT ?",
                    (like, like, limit),
                ).fetchall()
        return [
            {"dataset": d, "owner": o, "rows": n} for (d, o, n) in rows
        ]
