"""HTTP/JSON gateway: the network surface of the always-on market.

PR 8 made the market durable and concurrent in-process; this module makes
it *reachable*.  :class:`MarketGateway` serves a
:class:`~repro.platform.MarketService` over plain HTTP — stdlib
``http.server.ThreadingHTTPServer`` plus a small explicit router, no web
framework — so every mutation still funnels through the service's single
writer and every read stays snapshot-consistent.  The transport layer adds
exactly the concerns a network edge owns and nothing else:

* **Auth.**  Bearer tokens map to principal names.  Mutating routes
  require one; the authenticated principal *is* the seller (or buyer) of
  record, so a token can never register datasets for, update datasets of,
  or retire datasets from another seller (401 for bad credentials, 403
  for ownership violations).
* **Rate limiting.**  A per-token token bucket (unauthenticated clients
  are keyed by address) returns 429 with a ``Retry-After`` header once the
  budget is spent.
* **Validation.**  Declarative per-route request schemas reject malformed
  bodies as typed :class:`~repro.errors.InvalidRequestError` (422) before
  any engine code runs.
* **Error taxonomy.**  One mapping (:data:`STATUS_BY_ERROR`) from the
  :class:`~repro.errors.MarketError` hierarchy to HTTP statuses; every
  error response is a structured JSON body carrying the error type, the
  message, and the graph version (``as_of``) current when it was raised.

All market semantics — duplicate detection, license continuity, plan
caching, snapshot pinning — live below the service boundary; handlers only
translate.  ``python -m repro.platform.http`` starts a standalone server
wired from CLI flags (store path, auth tokens, rate limits).
"""

from __future__ import annotations

import argparse
import json
import math
import re
import threading
import time
from collections import Counter, deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, unquote, urlsplit

from ..errors import (
    AuditError,
    AuthenticationError,
    DatasetNotFoundError,
    DatasetOwnershipError,
    DuplicateDatasetError,
    DuplicateParticipantError,
    InvalidRequestError,
    LedgerError,
    LicenseDowngradeError,
    LicensingError,
    MarketDesignError,
    MarketError,
    NegotiationError,
    RateLimitError,
    ReproError,
    UnknownParticipantError,
)
from ..market.licensing import ContextualIntegrityPolicy, License, LicenseKind
from ..relation import Column, Relation, Schema
from ..wtp import (
    ExplorationTask,
    PriceCurve,
    QueryCompletenessTask,
    WTPFunction,
)
from .service import MarketService, ServiceError
from .store import MarketStore, StoreError

#: the single MarketError-taxonomy -> HTTP status mapping.  Resolution
#: walks an exception's MRO and takes the *first* (most-derived) entry, so
#: a subclass may sharpen its parent's status (LicenseDowngradeError is a
#: conflict, not a permission problem).  The root ``MarketError`` entry is
#: the taxonomy-wide safety net: no market error ever surfaces as a 500.
STATUS_BY_ERROR: dict[type, int] = {
    MarketError: 422,
    InvalidRequestError: 422,
    MarketDesignError: 422,
    NegotiationError: 422,
    AuthenticationError: 401,
    DatasetOwnershipError: 403,
    LicensingError: 403,
    LicenseDowngradeError: 409,
    DatasetNotFoundError: 404,
    UnknownParticipantError: 404,
    DuplicateDatasetError: 409,
    DuplicateParticipantError: 409,
    LedgerError: 409,
    AuditError: 503,
    ServiceError: 503,
    StoreError: 503,
    RateLimitError: 429,
}

#: default timeout for tickets the gateway blocks on (writes over HTTP
#: are synchronous: the response carries the façade's result)
WRITE_TIMEOUT = 60.0


def status_for(exc_type: type) -> int:
    """HTTP status for a ``MarketError`` subclass (500 off-taxonomy)."""
    for klass in exc_type.__mro__:
        if klass in STATUS_BY_ERROR:
            return STATUS_BY_ERROR[klass]
    return 500


# ---------------------------------------------------------------------------
# declarative request validation
# ---------------------------------------------------------------------------

_MISSING = object()


class Field:
    """One validated request field: type, bounds, default."""

    def __init__(
        self,
        types,
        default=_MISSING,
        *,
        minimum=None,
        item_types=None,
        non_empty: bool = False,
    ):
        self.types = types if isinstance(types, tuple) else (types,)
        self.default = default
        self.minimum = minimum
        self.item_types = item_types
        self.non_empty = non_empty

    @property
    def required(self) -> bool:
        return self.default is _MISSING

    def extract(self, name: str, body: dict):
        value = body.get(name, _MISSING)
        if value is _MISSING or (value is None and not self.required):
            # an explicit null on an optional field means "absent"
            if self.required:
                raise InvalidRequestError(f"missing required field {name!r}")
            return self.default
        if bool in self.types or not isinstance(value, bool):
            ok = isinstance(value, self.types)
        else:  # bool is an int subclass; reject it for numeric fields
            ok = False
        if not ok:
            expected = "/".join(t.__name__ for t in self.types)
            raise InvalidRequestError(
                f"field {name!r} must be {expected}, got {value!r}"
            )
        if self.minimum is not None and value < self.minimum:
            raise InvalidRequestError(
                f"field {name!r} must be >= {self.minimum}, got {value!r}"
            )
        if self.non_empty and len(value) == 0:
            raise InvalidRequestError(f"field {name!r} must be non-empty")
        if self.item_types is not None:
            for item in value:
                if not isinstance(item, self.item_types):
                    raise InvalidRequestError(
                        f"field {name!r} items must be "
                        f"{'/'.join(t.__name__ for t in self.item_types)}, "
                        f"got {item!r}"
                    )
        return value


def validate_body(body: dict, spec: dict[str, Field]) -> dict:
    """Validate a JSON body against a route spec; unknown fields are a 422
    (catching typos like ``reserve`` for ``reserve_price`` early)."""
    if not isinstance(body, dict):
        raise InvalidRequestError(
            f"request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - set(spec))
    if unknown:
        raise InvalidRequestError(
            f"unknown fields {unknown}; expected a subset of {sorted(spec)}"
        )
    return {name: field.extract(name, body) for name, field in spec.items()}


# ---------------------------------------------------------------------------
# rate limiting
# ---------------------------------------------------------------------------

class RateLimiter:
    """Per-key token bucket: ``rate`` requests/second, ``burst`` capacity.

    ``check`` either admits the request (consuming one token) or raises
    :class:`~repro.errors.RateLimitError` carrying the wait until a token
    accrues — the handler turns that into 429 + ``Retry-After``."""

    def __init__(self, rate: float, burst: int | None = None):
        if rate <= 0:
            raise InvalidRequestError("rate limit must be positive")
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1, rate))
        self._state: dict[str, tuple[float, float]] = {}
        self._mutex = threading.Lock()

    def check(self, key: str, now: float | None = None) -> None:
        now = time.monotonic() if now is None else now
        with self._mutex:
            tokens, last = self._state.get(key, (self.burst, now))
            tokens = min(self.burst, tokens + (now - last) * self.rate)
            if tokens < 1.0:
                self._state[key] = (tokens, now)
                wait = (1.0 - tokens) / self.rate
                raise RateLimitError(
                    f"rate limit exceeded for {key!r}; "
                    f"retry in {wait:.2f}s",
                    retry_after=wait,
                )
            self._state[key] = (tokens - 1.0, now)


# ---------------------------------------------------------------------------
# JSON codecs (shared with the typed client)
# ---------------------------------------------------------------------------

def relation_to_payload(relation: Relation) -> dict:
    """A relation as a JSON-safe payload (columns + row lists)."""
    return {
        "name": relation.name,
        "columns": [
            [c.name, c.dtype, c.semantic] for c in relation.schema.columns
        ],
        "rows": [list(row) for row in relation.rows],
    }


def relation_from_payload(obj: object) -> Relation:
    """Rebuild a relation from its payload; any shape or schema problem
    becomes a typed 422, never a bare ``SchemaError``."""
    if not isinstance(obj, dict):
        raise InvalidRequestError("relation payload must be a JSON object")
    spec = {
        "name": Field(str, non_empty=True),
        "columns": Field(list, non_empty=True, item_types=(list,)),
        "rows": Field(list, default=[]),
    }
    fields = validate_body(obj, spec)
    try:
        columns = [Column(*parts) for parts in fields["columns"]]
        return Relation(
            fields["name"], Schema(columns),
            [tuple(row) for row in fields["rows"]],
        )
    except ReproError as exc:
        raise InvalidRequestError(f"invalid relation payload: {exc}") from exc
    except TypeError as exc:
        raise InvalidRequestError(f"invalid relation payload: {exc}") from exc


def license_from_payload(obj: object) -> License | None:
    if obj is None:
        return None
    if not isinstance(obj, dict):
        raise InvalidRequestError("license payload must be a JSON object")
    fields = validate_body(obj, {
        "kind": Field(str, default="open"),
        "exclusivity_tax_rate": Field((int, float), default=0.0),
        "max_licensees": Field(int, default=1),
    })
    try:
        kind = LicenseKind(fields["kind"])
    except ValueError:
        valid = ", ".join(k.value for k in LicenseKind)
        raise InvalidRequestError(
            f"unknown license kind {fields['kind']!r}; "
            f"expected one of {valid}"
        ) from None
    return License(
        kind=kind,
        exclusivity_tax_rate=float(fields["exclusivity_tax_rate"]),
        max_licensees=fields["max_licensees"],
    )


def policy_from_payload(obj: object) -> ContextualIntegrityPolicy | None:
    if obj is None:
        return None
    if not isinstance(obj, list) or not all(
        isinstance(c, str) for c in obj
    ):
        raise InvalidRequestError(
            "policy payload must be a list of context strings"
        )
    return ContextualIntegrityPolicy(frozenset(obj))


#: declarative task specs a WTP can be submitted with over the wire.
#: Code cannot cross the network; these are the shipped tasks that are
#: pure data.  kind -> (constructor, request spec)
WTP_TASKS: dict[str, tuple] = {
    "query_completeness": (
        lambda f: QueryCompletenessTask(
            wanted_keys=tuple(f["wanted_keys"]),
            attributes=tuple(f["attributes"]),
            key=f["key"],
        ),
        {
            "kind": Field(str),
            "wanted_keys": Field(list, non_empty=True),
            "attributes": Field(
                list, non_empty=True, item_types=(str,)
            ),
            "key": Field(str, default="entity_id"),
        },
    ),
    "exploration": (
        lambda f: ExplorationTask(attributes=tuple(f["attributes"])),
        {
            "kind": Field(str),
            "attributes": Field(list, non_empty=True, item_types=(str,)),
        },
    ),
}


def wtp_from_spec(body: dict, buyer: str) -> WTPFunction:
    """Build a WTP function from its declarative JSON spec."""
    fields = validate_body(body, {
        "task": Field(dict),
        "curve": Field(list, non_empty=True, item_types=(list,)),
        "elicitation": Field(str, default="upfront"),
        "key": Field(str, default=None),
    })
    task_body = fields["task"]
    kind = task_body.get("kind")
    if kind not in WTP_TASKS:
        raise InvalidRequestError(
            f"unknown task kind {kind!r}; "
            f"expected one of {sorted(WTP_TASKS)}"
        )
    build, spec = WTP_TASKS[kind]
    task = build(validate_body(task_body, spec))
    steps = []
    for step in fields["curve"]:
        if len(step) != 2 or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in step
        ):
            raise InvalidRequestError(
                f"curve steps must be [threshold, price] number pairs, "
                f"got {step!r}"
            )
        steps.append((float(step[0]), float(step[1])))
    return WTPFunction(
        buyer=buyer,
        task=task,
        curve=PriceCurve(tuple(steps)),
        elicitation=fields["elicitation"],
        key=fields["key"],
    )


def wtp_to_spec(wtp: WTPFunction) -> dict:
    """The declarative spec for a WTP whose task is one of the shipped
    pure-data kinds (the client uses this so ``submit_wtp(wtp)`` mirrors
    the façade call).  Tasks carrying code cannot cross the network."""
    task = wtp.task
    if isinstance(task, QueryCompletenessTask):
        task_spec = {
            "kind": "query_completeness",
            "wanted_keys": list(task.wanted_keys),
            "attributes": list(task.attributes),
            "key": task.key,
        }
    elif isinstance(task, ExplorationTask):
        task_spec = {
            "kind": "exploration",
            "attributes": list(task.attributes),
        }
    else:
        raise InvalidRequestError(
            f"task {type(task).__name__} has no declarative HTTP form; "
            f"supported kinds: {sorted(WTP_TASKS)}"
        )
    spec = {
        "task": task_spec,
        "curve": [[t, p] for t, p in wtp.curve.steps],
        "elicitation": wtp.elicitation,
    }
    if wtp.key is not None:
        spec["key"] = wtp.key
    return spec


# ---------------------------------------------------------------------------
# result serializers
# ---------------------------------------------------------------------------

def _search_payload(result) -> dict:
    return {
        "attributes": list(result.attributes),
        "as_of": result.as_of,
        "hits": [
            {
                "dataset": h.dataset,
                "score": h.score,
                "matches": [
                    [m.requested, m.dataset, m.column, m.score]
                    for m in h.matches
                ],
            }
            for h in result.hits
        ],
    }


def _plan_payload(result, relations) -> dict:
    mashups = []
    for mashup, relation in zip(result.mashups, relations):
        entry = {
            "datasets": mashup.plan.sources(),
            "matched": {
                attr: list(src) for attr, src in sorted(mashup.matched.items())
            },
            "missing": list(mashup.missing),
            "relation": (
                None if relation is None else relation_to_payload(relation)
            ),
        }
        mashups.append(entry)
    return {
        "attributes": list(result.attributes),
        "key": result.key,
        "cached": result.cached,
        "as_of": result.as_of,
        "mashups": mashups,
    }


def _round_payload(report) -> dict:
    return {
        "round_index": report.round_index,
        "as_of": report.as_of,
        "deliveries": [
            {
                "transaction_id": d.transaction_id,
                "buyer": d.buyer,
                "datasets": d.mashup.plan.sources(),
                "satisfaction": d.satisfaction,
                "bid": d.bid,
                "price_paid": d.price_paid,
                "arbiter_fee": d.split.arbiter_fee,
                "seller_shares": dict(sorted(d.split.dataset_shares.items())),
            }
            for d in report.deliveries
        ],
        "rejections": [
            {"buyer": r.buyer, "reason": r.reason}
            for r in report.rejections
        ],
        "expost_deliveries": [
            {
                "transaction_id": d.transaction_id,
                "buyer": d.buyer,
                "datasets": d.mashup.plan.sources(),
            }
            for d in report.expost_deliveries
        ],
    }


# ---------------------------------------------------------------------------
# the gateway
# ---------------------------------------------------------------------------

_PLAN_SPEC = {
    "attributes": Field(list, non_empty=True, item_types=(str,)),
    "key": Field(str, default=None),
    "max_results": Field(int, default=5),
    "min_match_score": Field((int, float), default=0.55),
    "collect": Field(bool, default=True),
}

_SEARCH_SPEC = {
    "attributes": Field(list, non_empty=True, item_types=(str,)),
    "min_score": Field((int, float), default=0.55),
}

_DATASET_SPEC = {
    "relation": Field(dict),
    "reserve_price": Field((int, float), default=0.0),
    "license": Field(dict, default=None),
    "policy": Field(list, default=None),
}


class _GatewayServer(ThreadingHTTPServer):
    daemon_threads = True
    #: set by MarketGateway.start(); handlers reach the gateway through it
    gateway: "MarketGateway"


class MarketGateway:
    """Serve one :class:`MarketService` over HTTP/JSON.

    ``tokens`` maps bearer token -> principal name (the seller/buyer the
    token acts as).  ``rate_limit`` (requests/second per token, ``burst``
    capacity) enables the 429 path; None disables limiting.  The server
    binds ``host:port`` on :meth:`start` (port 0 picks a free port —
    :attr:`url` reflects the bound address)."""

    def __init__(
        self,
        service: MarketService,
        *,
        tokens: dict[str, str] | None = None,
        rate_limit: float | None = None,
        burst: int | None = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service
        self.tokens = dict(tokens or {})
        self.limiter = (
            RateLimiter(rate_limit, burst) if rate_limit else None
        )
        self._host, self._port = host, port
        self._server: _GatewayServer | None = None
        self._thread: threading.Thread | None = None
        self._stats_lock = threading.Lock()
        self._requests: Counter = Counter()
        self._errors: Counter = Counter()
        self._latencies: deque = deque(maxlen=4096)
        self._routes = [
            ("GET", re.compile(r"^/healthz$"), False, self._h_healthz),
            ("GET", re.compile(r"^/stats$"), False, self._h_stats),
            ("GET", re.compile(r"^/datasets$"), False, self._h_list),
            ("POST", re.compile(r"^/datasets$"), True, self._h_register),
            ("PUT", re.compile(r"^/datasets/(?P<name>[^/]+)$"), True,
             self._h_update),
            ("DELETE", re.compile(r"^/datasets/(?P<name>[^/]+)$"), True,
             self._h_retire),
            ("GET", re.compile(r"^/search$"), False, self._h_search_text),
            ("POST", re.compile(r"^/search$"), False, self._h_search),
            ("POST", re.compile(r"^/plan$"), False, self._h_plan),
            ("POST", re.compile(r"^/pinned$"), False, self._h_pinned),
            ("POST", re.compile(r"^/wtp$"), True, self._h_wtp),
            ("POST", re.compile(r"^/rounds$"), True, self._h_round),
            ("POST", re.compile(r"^/participants$"), True,
             self._h_participant),
        ]

    # -- lifecycle ---------------------------------------------------------
    @property
    def address(self) -> tuple[str, int]:
        if self._server is None:
            raise ServiceError("gateway is not started")
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "MarketGateway":
        if self._server is not None:
            return self
        handler = _make_handler()
        self._server = _GatewayServer((self._host, self._port), handler)
        self._server.gateway = self
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="market-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._server is None:
            return
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(10)
        self._server, self._thread = None, None

    def __enter__(self) -> "MarketGateway":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- request pipeline --------------------------------------------------
    def handle(
        self,
        method: str,
        target: str,
        headers,
        body: bytes,
        client: str,
    ) -> tuple[int, dict, dict[str, str]]:
        """Route one request; returns (status, json payload, headers).

        This is the whole request pipeline — rate limit, auth, parse,
        validate, dispatch, error mapping — factored off the socket
        handler so it is directly testable."""
        start = time.perf_counter()
        parts = urlsplit(target)
        path = unquote(parts.path)
        route_key = f"{method} {parts.path}"
        extra_headers: dict[str, str] = {}
        try:
            match, needs_auth, handler = self._match(method, path)
            route_key = f"{method} {match.re.pattern}"
            token = self._bearer_token(headers)
            if self.limiter is not None:
                self.limiter.check(token if token else f"addr:{client}")
            principal = None
            if needs_auth:
                principal = self._authenticate(token)
            query = {
                k: v[-1] for k, v in parse_qs(parts.query).items()
            }
            payload = self._parse_body(body)
            status, result = handler(
                principal, match.groupdict(), query, payload
            )
        except MarketError as exc:
            status = status_for(type(exc))
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                extra_headers["Retry-After"] = str(
                    max(1, math.ceil(retry_after))
                )
            result = {
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
                "as_of": self.service.market.graph_version,
            }
        except Exception as exc:  # off-taxonomy bug: opaque 500, not a hang
            status = 500
            result = {
                "error": {
                    "type": type(exc).__name__,
                    "message": str(exc),
                },
                "as_of": self.service.market.graph_version,
            }
        finally:
            elapsed = (time.perf_counter() - start) * 1000.0
            with self._stats_lock:
                self._requests[route_key] += 1
                self._latencies.append(elapsed)
        if status >= 400:
            with self._stats_lock:
                self._errors[status] += 1
        return status, result, extra_headers

    def _match(self, method: str, path: str):
        path_exists = False
        for route_method, pattern, needs_auth, handler in self._routes:
            match = pattern.match(path)
            if match is None:
                continue
            path_exists = True
            if route_method == method:
                return match, needs_auth, handler
        if path_exists:
            raise InvalidRequestError(
                f"method {method} not supported on {path}"
            )
        raise DatasetNotFoundError(f"no route for {method} {path}")

    @staticmethod
    def _bearer_token(headers) -> str | None:
        auth = headers.get("Authorization", "")
        if auth.startswith("Bearer "):
            return auth[len("Bearer "):].strip() or None
        return None

    def _authenticate(self, token: str | None) -> str:
        if token is None:
            raise AuthenticationError(
                "this route requires a bearer token "
                "(Authorization: Bearer <token>)"
            )
        try:
            return self.tokens[token]
        except KeyError:
            raise AuthenticationError("unrecognized bearer token") from None

    @staticmethod
    def _parse_body(body: bytes) -> dict:
        if not body:
            return {}
        try:
            parsed = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise InvalidRequestError(
                f"request body is not valid JSON: {exc}"
            ) from None
        if not isinstance(parsed, dict):
            raise InvalidRequestError(
                "request body must be a JSON object"
            )
        return parsed

    # -- handlers ----------------------------------------------------------
    def _h_healthz(self, principal, params, query, body):
        return 200, {
            "status": "ok",
            "graph_version": self.service.market.graph_version,
        }

    def _h_stats(self, principal, params, query, body):
        with self._stats_lock:
            latencies = sorted(self._latencies)
            requests = dict(self._requests)
            errors = {str(k): v for k, v in self._errors.items()}

        def pct(q: float) -> float | None:
            if not latencies:
                return None
            index = min(len(latencies) - 1, int(q * (len(latencies) - 1)))
            return round(latencies[index], 3)

        return 200, {
            "service": self.service.stats(),
            "requests": {
                "total": sum(requests.values()),
                "by_route": requests,
                "errors": errors,
            },
            "latency_ms": {"p50": pct(0.50), "p99": pct(0.99)},
        }

    def _h_list(self, principal, params, query, body):
        limit = _int_query(query, "limit", 50)
        sort = query.get("sort", "registered")
        page, cursor = self.service.list_datasets(
            limit=limit, cursor=query.get("cursor"), sort=sort,
        )
        return 200, {
            "datasets": page,
            "next_cursor": cursor,
            "sort": sort,
            "as_of": self.service.market.graph_version,
        }

    def _h_register(self, principal, params, query, body):
        return self._accept(principal, body, create=True)

    def _h_update(self, principal, params, query, body):
        relation = body.get("relation")
        if isinstance(relation, dict) and relation.get("name") != params["name"]:
            raise InvalidRequestError(
                f"path dataset {params['name']!r} does not match payload "
                f"relation {relation.get('name')!r}"
            )
        return self._accept(principal, body, create=False)

    def _accept(self, principal, body, create: bool):
        fields = validate_body(body, _DATASET_SPEC)
        relation = relation_from_payload(fields["relation"])
        kwargs = {
            "reserve_price": float(fields["reserve_price"]),
            "license": license_from_payload(fields["license"]),
            "policy": policy_from_payload(fields["policy"]),
        }
        if create:
            ticket = self.service.register_dataset(
                relation, principal, **kwargs
            )
        else:
            ticket = self.service.update_dataset(
                relation, principal, **kwargs
            )
        result = ticket.result(WRITE_TIMEOUT)
        return 201 if create else 200, {
            "dataset": result.dataset,
            "seller": result.seller,
            "version": result.version,
            "rows": result.rows,
            "reserve_price": result.reserve_price,
            "created": result.created,
            "as_of": result.as_of,
        }

    def _h_retire(self, principal, params, query, body):
        name = params["name"]
        market = self.service.market

        def retire():
            # ownership check inside the writer's critical section, so it
            # cannot race a concurrent transfer of the name
            if name in market.arbiter.licenses:
                owner = market.arbiter.licenses.owner_of(name)
                if owner != principal:
                    raise DatasetOwnershipError(
                        f"dataset {name!r} belongs to {owner!r}, "
                        f"not {principal!r}"
                    )
            return market.retire_dataset(name)

        result = self.service.submit(
            retire, label=f"retire:{name}"
        ).result(WRITE_TIMEOUT)
        return 200, {
            "dataset": result.dataset,
            "seller": result.seller,
            "as_of": result.as_of,
        }

    def _h_search_text(self, principal, params, query, body):
        q = query.get("q", "")
        if not q.strip():
            raise InvalidRequestError(
                "text search requires a non-empty ?q= parameter"
            )
        hits = self.service.search_text(q, limit=_int_query(query, "limit", 10))
        return 200, {
            "query": q,
            "hits": hits,
            "as_of": self.service.market.graph_version,
        }

    def _h_search(self, principal, params, query, body):
        fields = validate_body(body, _SEARCH_SPEC)
        result = self.service.search(
            fields["attributes"], min_score=float(fields["min_score"])
        )
        return 200, _search_payload(result)

    def _plan_from_spec(self, fields, view=None):
        plan = (view or self.service).plan(
            fields["attributes"],
            key=fields["key"],
            max_results=fields["max_results"],
            min_match_score=float(fields["min_match_score"]),
        )
        return plan

    def _h_plan(self, principal, params, query, body):
        fields = validate_body(body, _PLAN_SPEC)
        if fields["max_results"] < 1:
            raise InvalidRequestError("max_results must be >= 1")
        result = self._plan_from_spec(fields)
        # collection happens outside the read lock: trees are immutable
        relations = (
            result.collect() if fields["collect"]
            else [None] * len(result.mashups)
        )
        return 200, _plan_payload(result, relations)

    def _h_pinned(self, principal, params, query, body):
        fields = validate_body(body, {
            "search": Field(dict, default=None),
            "plan": Field(dict, default=None),
        })
        if fields["search"] is None and fields["plan"] is None:
            raise InvalidRequestError(
                "pinned query needs a 'search' and/or 'plan' spec"
            )
        search_fields = (
            validate_body(fields["search"], _SEARCH_SPEC)
            if fields["search"] is not None else None
        )
        plan_fields = (
            validate_body(fields["plan"], _PLAN_SPEC)
            if fields["plan"] is not None else None
        )
        search_result = plan_result = None
        with self.service.pinned() as view:
            as_of = view.as_of
            if search_fields is not None:
                search_result = view.search(
                    search_fields["attributes"],
                    min_score=float(search_fields["min_score"]),
                )
            if plan_fields is not None:
                plan_result = self._plan_from_spec(plan_fields, view)
        out: dict = {"as_of": as_of}
        if search_result is not None:
            out["search"] = _search_payload(search_result)
        if plan_result is not None:
            relations = (
                plan_result.collect() if plan_fields["collect"]
                else [None] * len(plan_result.mashups)
            )
            out["plan"] = _plan_payload(plan_result, relations)
        return 200, out

    def _h_wtp(self, principal, params, query, body):
        wtp = wtp_from_spec(body, buyer=principal)
        receipt = self.service.submit_wtp(wtp).result(WRITE_TIMEOUT)
        return 202, {
            "buyer": receipt.buyer,
            "attributes": list(receipt.attributes),
            "elicitation": receipt.elicitation,
            "queued": receipt.queued,
            "as_of": receipt.as_of,
        }

    def _h_round(self, principal, params, query, body):
        fields = validate_body(body, {"context": Field(str, default="*")})
        report = self.service.run_round(fields["context"]).result(
            WRITE_TIMEOUT
        )
        return 200, _round_payload(report)

    def _h_participant(self, principal, params, query, body):
        fields = validate_body(body, {
            "name": Field(str, non_empty=True),
            "funding": Field((int, float), default=0.0),
        })
        self.service.register_participant(
            fields["name"], funding=float(fields["funding"])
        ).result(WRITE_TIMEOUT)
        return 201, {
            "participant": fields["name"],
            "funding": float(fields["funding"]),
            "as_of": self.service.market.graph_version,
        }


def _int_query(query: dict, name: str, default: int) -> int:
    raw = query.get(name)
    if raw is None:
        return default
    try:
        return int(raw)
    except ValueError:
        raise InvalidRequestError(
            f"query parameter {name!r} must be an integer, got {raw!r}"
        ) from None


def _make_handler() -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        protocol_version = "HTTP/1.1"
        server: _GatewayServer

        def _dispatch(self, method: str) -> None:
            length = int(self.headers.get("Content-Length") or 0)
            body = self.rfile.read(length) if length else b""
            status, payload, extra = self.server.gateway.handle(
                method, self.path, self.headers, body,
                client=self.client_address[0],
            )
            data = json.dumps(payload, default=str).encode("utf-8")
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            for key, value in extra.items():
                self.send_header(key, value)
            self.end_headers()
            self.wfile.write(data)

        def do_GET(self):  # noqa: N802  (BaseHTTPRequestHandler contract)
            self._dispatch("GET")

        def do_POST(self):  # noqa: N802
            self._dispatch("POST")

        def do_PUT(self):  # noqa: N802
            self._dispatch("PUT")

        def do_DELETE(self):  # noqa: N802
            self._dispatch("DELETE")

        def log_message(self, format, *args):  # quiet by default
            pass

    return Handler


# ---------------------------------------------------------------------------
# standalone entrypoint
# ---------------------------------------------------------------------------

def main(argv: list[str] | None = None) -> int:
    """``python -m repro.platform.http``: stand up a gateway from flags."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.platform.http",
        description="Serve a data market over HTTP/JSON.",
    )
    parser.add_argument(
        "--store", default=None,
        help="SQLite store path (durable market; omit for ephemeral)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument(
        "--token", action="append", default=[], metavar="TOKEN=PRINCIPAL",
        help="bearer token mapping (repeatable)",
    )
    parser.add_argument(
        "--rate-limit", type=float, default=None, metavar="RPS",
        help="per-token request budget (requests/second); omit to disable",
    )
    parser.add_argument(
        "--burst", type=int, default=None,
        help="token-bucket capacity (defaults to max(1, rate))",
    )
    args = parser.parse_args(argv)

    tokens: dict[str, str] = {}
    for pair in args.token:
        token, sep, principal = pair.partition("=")
        if not sep or not token or not principal:
            parser.error(f"--token must be TOKEN=PRINCIPAL, got {pair!r}")
        tokens[token] = principal

    from .market import DataMarket  # deferred: heavy import chain

    store = MarketStore(args.store) if args.store else None
    market = DataMarket(store=store) if store else DataMarket()
    service = MarketService(market)
    gateway = MarketGateway(
        service,
        tokens=tokens,
        rate_limit=args.rate_limit,
        burst=args.burst,
        host=args.host,
        port=args.port,
    ).start()
    host, port = gateway.address
    print(f"market gateway listening on http://{host}:{port}")
    print(f"  store: {args.store or '(ephemeral)'}")
    print(f"  tokens: {len(tokens)}  rate limit: {args.rate_limit or 'off'}")
    try:
        threading.Event().wait()
    except KeyboardInterrupt:
        pass
    finally:
        gateway.stop()
        service.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
