"""The unified data-market platform façade (Fig. 1's single DMMS).

:class:`DataMarket` wires the whole stack behind one typed API; the result
dataclasses stamp every read with the graph version it was computed against.
Plan results carry unevaluated relation trees — ``materialize`` (or
``PlanResult.collect``) runs them on the pipelined columnar engine.
"""

from .market import DataMarket
from .service import MarketService, PinnedView, ServiceError, WriteTicket
from .store import MarketStore, StoreError
from .http import MarketGateway, RateLimiter, STATUS_BY_ERROR, status_for
from .client import (
    DeliveryView,
    GatewayPlanResult,
    MarketClient,
    MashupView,
    PinnedResult,
    RoundSummary,
)
from .results import (
    DisputeResult,
    InfoRequestView,
    InsuranceQuote,
    InsuranceSettlement,
    NegotiationReport,
    PlanResult,
    RegisterResult,
    RetireResult,
    RoundReport,
    SearchResult,
    TrustDistribution,
    TrustReport,
    WTPReceipt,
)

__all__ = [
    "DataMarket",
    "MarketStore",
    "MarketService",
    "MarketGateway",
    "MarketClient",
    "RateLimiter",
    "STATUS_BY_ERROR",
    "status_for",
    "PinnedView",
    "StoreError",
    "ServiceError",
    "WriteTicket",
    "GatewayPlanResult",
    "MashupView",
    "DeliveryView",
    "RoundSummary",
    "PinnedResult",
    "RegisterResult",
    "RetireResult",
    "SearchResult",
    "PlanResult",
    "WTPReceipt",
    "RoundReport",
    "NegotiationReport",
    "InfoRequestView",
    "DisputeResult",
    "InsuranceQuote",
    "InsuranceSettlement",
    "TrustReport",
    "TrustDistribution",
]
