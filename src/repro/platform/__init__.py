"""The unified data-market platform façade (Fig. 1's single DMMS).

:class:`DataMarket` wires the whole stack behind one typed API; the result
dataclasses stamp every read with the graph version it was computed against.
"""

from .market import DataMarket
from .results import (
    PlanResult,
    RegisterResult,
    RetireResult,
    RoundReport,
    SearchResult,
    WTPReceipt,
)

__all__ = [
    "DataMarket",
    "RegisterResult",
    "RetireResult",
    "SearchResult",
    "PlanResult",
    "WTPReceipt",
    "RoundReport",
]
