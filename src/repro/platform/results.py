"""Typed, frozen result objects for the :class:`~repro.platform.DataMarket`
façade.

Every read result is stamped with ``as_of`` — the relationship graph
version (:attr:`repro.discovery.IndexBuilder.graph_version`) it was computed
against.  The version is bumped by every metadata delta, so two results with
equal ``as_of`` were derived from identical discovery state; monotonically
non-decreasing ``as_of`` values across a caller's reads are the first step
toward snapshot-isolated readers.  Mutation results carry the version that
became current *after* the mutation committed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..discovery.search import DatasetHit
from ..integration.plan import Mashup, MashupPlan
from ..market.arbiter import Delivery, ExPostDelivery, Rejection
from ..relation import Relation, RelationExpr


@dataclass(frozen=True)
class RegisterResult:
    """Outcome of ``register_dataset`` / ``update_dataset``."""

    dataset: str
    seller: str
    #: snapshot version in the metadata engine (1 for a first registration;
    #: unchanged when an update carried identical content)
    version: int
    rows: int
    reserve_price: float
    #: True for a first registration, False for an update of a live name
    created: bool
    as_of: int


@dataclass(frozen=True)
class RetireResult:
    """Outcome of ``retire_dataset``: the name is free again."""

    dataset: str
    seller: str
    as_of: int


@dataclass(frozen=True)
class SearchResult:
    """Ranked dataset hits for a requested attribute set."""

    attributes: tuple[str, ...]
    hits: tuple[DatasetHit, ...]
    as_of: int

    @property
    def datasets(self) -> tuple[str, ...]:
        """Hit dataset names, best first."""
        return tuple(h.dataset for h in self.hits)

    @property
    def best(self) -> DatasetHit | None:
        return self.hits[0] if self.hits else None

    def __len__(self) -> int:
        return len(self.hits)


@dataclass(frozen=True)
class PlanResult:
    """Ranked mashups for a requested attribute set.

    Each mashup carries an **unevaluated** expression tree; nothing has
    touched the rows yet.  :meth:`collect` (or
    :meth:`DataMarket.materialize <repro.platform.DataMarket.materialize>`)
    runs the trees on an engine; the per-mashup result is memoized, so
    repeated collection — and ``mashup.relation`` access — is free.
    """

    attributes: tuple[str, ...]
    key: str | None
    mashups: tuple[Mashup, ...]
    #: True when the whole request was served from the graph-version plan
    #: cache (identical output to an uncached run at the same ``as_of``)
    cached: bool
    as_of: int

    @property
    def best(self) -> Mashup | None:
        return self.mashups[0] if self.mashups else None

    @property
    def plans(self) -> tuple[MashupPlan, ...]:
        return tuple(m.plan for m in self.mashups)

    @property
    def trees(self) -> tuple[RelationExpr, ...]:
        """The unevaluated result trees, best mashup first."""
        return tuple(m.tree for m in self.mashups)

    def collect(self, engine=None) -> tuple[Relation, ...]:
        """Materialize every mashup (``engine``: name, instance, or None
        for each mashup's own default).  Results are memoized on the
        mashups, shared with any plan-cache copies of the same trees."""
        return tuple(m.collect(engine) for m in self.mashups)

    def __len__(self) -> int:
        return len(self.mashups)


@dataclass(frozen=True)
class WTPReceipt:
    """Acknowledgement that a WTP function is queued for the next round."""

    buyer: str
    attributes: tuple[str, ...]
    elicitation: str
    #: WTPs pending for the next round, this one included
    queued: int
    as_of: int


@dataclass(frozen=True)
class InfoRequestView:
    """One negotiation request (Section 4.1), as seen through the façade."""

    request_id: int
    attribute: str
    description: str
    bounty: float
    #: ``"open"`` / ``"fulfilled"`` / ``"withdrawn"``
    status: str
    fulfilled_by: str | None
    as_of: int

    @property
    def open(self) -> bool:
        return self.status == "open"


@dataclass(frozen=True)
class NegotiationReport:
    """Open information requests published from the demand gap report."""

    requests: tuple[InfoRequestView, ...]
    as_of: int

    @property
    def attributes(self) -> tuple[str, ...]:
        return tuple(r.attribute for r in self.requests)

    def __len__(self) -> int:
        return len(self.requests)


@dataclass(frozen=True)
class DisputeResult:
    """One dispute (Section 4.4) and — once resolved — its adjudication."""

    dispute_id: int
    complainant: str
    #: ``"not_delivered"`` / ``"overcharged"`` / ``"unpaid_share"``
    kind: str
    transaction_id: int
    claimed_amount: float
    #: ``"open"`` / ``"upheld"`` / ``"dismissed"``
    status: str
    resolution: str
    refund: float
    as_of: int

    @property
    def upheld(self) -> bool:
        return self.status == "upheld"


@dataclass(frozen=True)
class InsuranceQuote:
    """An underwritten data-insurance policy (Section 7.1)."""

    policy_id: int
    dataset: str
    insured: str
    liability: float
    breach_probability: float
    loading: float
    #: per-period price: ``breach_probability · liability · (1 + loading)``
    premium: float
    active: bool
    as_of: int


@dataclass(frozen=True)
class InsuranceSettlement:
    """A ledger movement on a policy: a premium in or a claim payout out."""

    policy_id: int
    insured: str
    #: ``"premium"`` (insured → insurer) or ``"claim"`` (insurer → insured)
    kind: str
    amount: float
    #: insurer account balance after the movement
    solvency: float
    as_of: int


@dataclass(frozen=True)
class TrustReport:
    """State of a data trust (Section 4.5) after a membership change."""

    trust: str
    members: tuple[str, ...]
    #: total pooled rows across all contributions
    rows: int
    as_of: int


@dataclass(frozen=True)
class TrustDistribution:
    """A trust revenue split: provenance-weighted member payouts."""

    trust: str
    amount: float
    #: (member, payout) pairs, sorted by member name
    payouts: tuple[tuple[str, float], ...]
    as_of: int

    def payout_of(self, member: str) -> float:
        return dict(self.payouts).get(member, 0.0)

    @property
    def distributed(self) -> float:
        return sum(v for _m, v in self.payouts)


@dataclass(frozen=True)
class RoundReport:
    """One cleared market round, as seen through the façade."""

    round_index: int
    deliveries: tuple[Delivery, ...]
    rejections: tuple[Rejection, ...]
    expost_deliveries: tuple[ExPostDelivery, ...]
    as_of: int

    @property
    def revenue(self) -> float:
        return sum(d.price_paid for d in self.deliveries)

    @property
    def transactions(self) -> int:
        return len(self.deliveries)
