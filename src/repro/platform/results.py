"""Typed, frozen result objects for the :class:`~repro.platform.DataMarket`
façade.

Every read result is stamped with ``as_of`` — the relationship graph
version (:attr:`repro.discovery.IndexBuilder.graph_version`) it was computed
against.  The version is bumped by every metadata delta, so two results with
equal ``as_of`` were derived from identical discovery state; monotonically
non-decreasing ``as_of`` values across a caller's reads are the first step
toward snapshot-isolated readers.  Mutation results carry the version that
became current *after* the mutation committed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..discovery.search import DatasetHit
from ..integration.plan import Mashup, MashupPlan
from ..market.arbiter import Delivery, ExPostDelivery, Rejection


@dataclass(frozen=True)
class RegisterResult:
    """Outcome of ``register_dataset`` / ``update_dataset``."""

    dataset: str
    seller: str
    #: snapshot version in the metadata engine (1 for a first registration;
    #: unchanged when an update carried identical content)
    version: int
    rows: int
    reserve_price: float
    #: True for a first registration, False for an update of a live name
    created: bool
    as_of: int


@dataclass(frozen=True)
class RetireResult:
    """Outcome of ``retire_dataset``: the name is free again."""

    dataset: str
    seller: str
    as_of: int


@dataclass(frozen=True)
class SearchResult:
    """Ranked dataset hits for a requested attribute set."""

    attributes: tuple[str, ...]
    hits: tuple[DatasetHit, ...]
    as_of: int

    @property
    def datasets(self) -> tuple[str, ...]:
        """Hit dataset names, best first."""
        return tuple(h.dataset for h in self.hits)

    @property
    def best(self) -> DatasetHit | None:
        return self.hits[0] if self.hits else None

    def __len__(self) -> int:
        return len(self.hits)


@dataclass(frozen=True)
class PlanResult:
    """Ranked, materialized mashups for a requested attribute set."""

    attributes: tuple[str, ...]
    key: str | None
    mashups: tuple[Mashup, ...]
    #: True when the whole request was served from the graph-version plan
    #: cache (identical output to an uncached run at the same ``as_of``)
    cached: bool
    as_of: int

    @property
    def best(self) -> Mashup | None:
        return self.mashups[0] if self.mashups else None

    @property
    def plans(self) -> tuple[MashupPlan, ...]:
        return tuple(m.plan for m in self.mashups)

    def __len__(self) -> int:
        return len(self.mashups)


@dataclass(frozen=True)
class WTPReceipt:
    """Acknowledgement that a WTP function is queued for the next round."""

    buyer: str
    attributes: tuple[str, ...]
    elicitation: str
    #: WTPs pending for the next round, this one included
    queued: int
    as_of: int


@dataclass(frozen=True)
class RoundReport:
    """One cleared market round, as seen through the façade."""

    round_index: int
    deliveries: tuple[Delivery, ...]
    rejections: tuple[Rejection, ...]
    expost_deliveries: tuple[ExPostDelivery, ...]
    as_of: int

    @property
    def revenue(self) -> float:
        return sum(d.price_paid for d in self.deliveries)

    @property
    def transactions(self) -> int:
        return len(self.deliveries)
