"""Typed HTTP client for the market gateway.

:class:`MarketClient` mirrors the :class:`~repro.platform.DataMarket`
façade over a real socket: the same operations, the same frozen result
dataclasses (``RegisterResult``/``RetireResult``/``SearchResult``/
``WTPReceipt`` are rebuilt bit-for-bit from the wire payload, so a client
result compares equal to the in-process façade's), and the same typed
error taxonomy — a 404 raises :class:`~repro.errors.DatasetNotFoundError`,
a 429 raises :class:`~repro.errors.RateLimitError` with ``retry_after``
filled from the response header, exactly as if the façade had been called
in-process.

Plan and round results cannot carry live expression trees or ledger
objects across the network, so they come back as gateway-specific frozen
views (:class:`MashupView` / :class:`GatewayPlanResult` /
:class:`RoundSummary`) holding the *materialized* relations the server
collected through the lazy tree engines.

Only the stdlib is used (``http.client``); a connection is opened per
request, which keeps the client trivially thread-safe.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from http.client import HTTPConnection
from urllib.parse import quote, urlencode, urlsplit

from .. import errors as _errors
from ..discovery.search import AttributeMatch, DatasetHit
from ..errors import MarketError, RateLimitError
from ..relation import Column, Relation, Schema
from ..wtp import WTPFunction
from .http import relation_to_payload, wtp_to_spec
from .results import RegisterResult, RetireResult, SearchResult, WTPReceipt
from .service import ServiceError
from .store import StoreError

#: error type name -> exception class, for rebuilding typed errors from
#: structured error bodies (names outside the taxonomy raise MarketError)
_ERRORS_BY_NAME: dict[str, type] = {
    name: obj
    for name, obj in vars(_errors).items()
    if isinstance(obj, type) and issubclass(obj, MarketError)
}
_ERRORS_BY_NAME["ServiceError"] = ServiceError
_ERRORS_BY_NAME["StoreError"] = StoreError


class GatewayResponseError(MarketError):
    """The gateway answered with something that is not gateway JSON."""


@dataclass(frozen=True)
class MashupView:
    """One planned mashup as served over HTTP: the datasets the plan
    reads, the attribute matches, and (when collected) the materialized
    result relation."""

    datasets: tuple[str, ...]
    #: requested attribute -> (dataset, column, score)
    matched: tuple[tuple[str, tuple[str, str, float]], ...]
    missing: tuple[str, ...]
    relation: Relation | None

    @property
    def rows(self) -> tuple:
        if self.relation is None:
            raise MarketError(
                "this plan was requested with collect=False; "
                "re-plan with collect=True for rows"
            )
        return self.relation.rows


@dataclass(frozen=True)
class GatewayPlanResult:
    """Ranked mashups for an attribute set, as served over HTTP."""

    attributes: tuple[str, ...]
    key: str | None
    mashups: tuple[MashupView, ...]
    cached: bool
    as_of: int

    @property
    def best(self) -> MashupView | None:
        return self.mashups[0] if self.mashups else None

    def __len__(self) -> int:
        return len(self.mashups)


@dataclass(frozen=True)
class DeliveryView:
    """One completed transaction from a cleared round."""

    transaction_id: int
    buyer: str
    datasets: tuple[str, ...]
    satisfaction: float
    bid: float
    price_paid: float
    arbiter_fee: float
    #: (dataset, share) pairs, sorted by dataset
    seller_shares: tuple[tuple[str, float], ...]


@dataclass(frozen=True)
class RoundSummary:
    """One cleared market round, as served over HTTP."""

    round_index: int
    deliveries: tuple[DeliveryView, ...]
    #: (buyer, reason) pairs
    rejections: tuple[tuple[str, str], ...]
    #: (transaction_id, buyer, datasets) triples awaiting ex-post reports
    expost_deliveries: tuple[tuple[int, str, tuple[str, ...]], ...]
    as_of: int

    @property
    def revenue(self) -> float:
        return sum(d.price_paid for d in self.deliveries)

    @property
    def transactions(self) -> int:
        return len(self.deliveries)


@dataclass(frozen=True)
class PinnedResult:
    """A search and/or plan answered against one pinned snapshot."""

    as_of: int
    search: SearchResult | None
    plan: GatewayPlanResult | None


def relation_from_wire(obj: dict) -> Relation:
    """Rebuild a relation from the gateway's payload form."""
    return Relation(
        obj["name"],
        Schema([Column(*parts) for parts in obj["columns"]]),
        [tuple(row) for row in obj["rows"]],
    )


class MarketClient:
    """Drive a :class:`~repro.platform.http.MarketGateway` over HTTP.

    ``base_url`` is the gateway root (e.g. ``http://127.0.0.1:8080``);
    ``token`` authenticates mutating calls — the gateway resolves it to
    the seller/buyer the client acts as."""

    def __init__(
        self,
        base_url: str,
        *,
        token: str | None = None,
        timeout: float = 30.0,
    ):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise MarketError(
                f"MarketClient speaks plain http, got {parts.scheme!r}"
            )
        netloc = parts.netloc or parts.path
        host, _, port = netloc.partition(":")
        self.host = host or "127.0.0.1"
        self.port = int(port) if port else 80
        self.token = token
        self.timeout = timeout

    # -- transport ---------------------------------------------------------
    def _request(
        self,
        method: str,
        path: str,
        body: dict | None = None,
        query: dict | None = None,
    ) -> dict:
        if query:
            pairs = {k: v for k, v in query.items() if v is not None}
            if pairs:
                path = f"{path}?{urlencode(pairs)}"
        headers = {"Content-Type": "application/json"}
        if self.token is not None:
            headers["Authorization"] = f"Bearer {self.token}"
        payload = json.dumps(body).encode("utf-8") if body is not None else b""
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            raw = response.read()
            status = response.status
            retry_after = response.getheader("Retry-After")
        finally:
            conn.close()
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            raise GatewayResponseError(
                f"non-JSON response (status {status}) from "
                f"{method} {path}: {raw[:200]!r}"
            ) from None
        if status >= 400:
            raise self._rebuild_error(data, status, retry_after)
        return data

    @staticmethod
    def _rebuild_error(data: dict, status: int, retry_after) -> MarketError:
        info = data.get("error") or {}
        name = info.get("type", "MarketError")
        message = info.get("message", f"gateway returned {status}")
        klass = _ERRORS_BY_NAME.get(name, MarketError)
        if klass is RateLimitError:
            try:
                wait = float(retry_after)
            except (TypeError, ValueError):
                wait = 1.0
            return RateLimitError(message, retry_after=wait)
        return klass(message)

    # -- observability -----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    # -- dataset lifecycle -------------------------------------------------
    def _register_body(self, relation, reserve_price, license, policy):
        body = {
            "relation": relation_to_payload(relation),
            "reserve_price": reserve_price,
        }
        if license is not None:
            body["license"] = {
                "kind": license.kind.value,
                "exclusivity_tax_rate": license.exclusivity_tax_rate,
                "max_licensees": license.max_licensees,
            }
        if policy is not None:
            body["policy"] = sorted(policy.allowed_contexts)
        return body

    @staticmethod
    def _register_result(data: dict) -> RegisterResult:
        return RegisterResult(
            dataset=data["dataset"],
            seller=data["seller"],
            version=data["version"],
            rows=data["rows"],
            reserve_price=data["reserve_price"],
            created=data["created"],
            as_of=data["as_of"],
        )

    def register_dataset(
        self,
        relation: Relation,
        *,
        reserve_price: float = 0.0,
        license=None,
        policy=None,
    ) -> RegisterResult:
        """Share a new dataset as the authenticated seller."""
        data = self._request(
            "POST", "/datasets",
            self._register_body(relation, reserve_price, license, policy),
        )
        return self._register_result(data)

    def update_dataset(
        self,
        relation: Relation,
        *,
        reserve_price: float = 0.0,
        license=None,
        policy=None,
    ) -> RegisterResult:
        """Refresh a live dataset the authenticated seller owns."""
        data = self._request(
            "PUT", f"/datasets/{quote(relation.name, safe='')}",
            self._register_body(relation, reserve_price, license, policy),
        )
        return self._register_result(data)

    def retire_dataset(self, dataset: str) -> RetireResult:
        data = self._request(
            "DELETE", f"/datasets/{quote(dataset, safe='')}"
        )
        return RetireResult(
            dataset=data["dataset"],
            seller=data["seller"],
            as_of=data["as_of"],
        )

    def list_datasets(
        self,
        limit: int = 50,
        cursor: str | None = None,
        sort: str = "registered",
    ) -> tuple[list[dict], str | None]:
        data = self._request(
            "GET", "/datasets",
            query={"limit": limit, "cursor": cursor, "sort": sort},
        )
        return data["datasets"], data["next_cursor"]

    # -- reads -------------------------------------------------------------
    @staticmethod
    def _search_result(data: dict) -> SearchResult:
        return SearchResult(
            attributes=tuple(data["attributes"]),
            hits=tuple(
                DatasetHit(
                    dataset=h["dataset"],
                    score=h["score"],
                    matches=tuple(
                        AttributeMatch(*m) for m in h["matches"]
                    ),
                )
                for h in data["hits"]
            ),
            as_of=data["as_of"],
        )

    def search(
        self, attributes, *, min_score: float = 0.55
    ) -> SearchResult:
        data = self._request("POST", "/search", {
            "attributes": list(attributes),
            "min_score": min_score,
        })
        return self._search_result(data)

    def search_text(self, query: str, limit: int = 10) -> list[dict]:
        data = self._request(
            "GET", "/search", query={"q": query, "limit": limit}
        )
        return data["hits"]

    @staticmethod
    def _plan_result(data: dict) -> GatewayPlanResult:
        return GatewayPlanResult(
            attributes=tuple(data["attributes"]),
            key=data["key"],
            mashups=tuple(
                MashupView(
                    datasets=tuple(m["datasets"]),
                    matched=tuple(
                        (attr, (src[0], src[1], src[2]))
                        for attr, src in sorted(m["matched"].items())
                    ),
                    missing=tuple(m["missing"]),
                    relation=(
                        relation_from_wire(m["relation"])
                        if m["relation"] is not None else None
                    ),
                )
                for m in data["mashups"]
            ),
            cached=data["cached"],
            as_of=data["as_of"],
        )

    def plan(
        self,
        attributes,
        *,
        key: str | None = None,
        max_results: int = 5,
        min_match_score: float = 0.55,
        collect: bool = True,
    ) -> GatewayPlanResult:
        data = self._request("POST", "/plan", {
            "attributes": list(attributes),
            "key": key,
            "max_results": max_results,
            "min_match_score": min_match_score,
            "collect": collect,
        })
        return self._plan_result(data)

    def pinned_query(
        self,
        *,
        search: dict | None = None,
        plan: dict | None = None,
    ) -> PinnedResult:
        """Answer a search and/or plan spec against ONE pinned snapshot:
        both results are guaranteed to carry the same ``as_of`` even while
        writers churn."""
        body: dict = {}
        if search is not None:
            body["search"] = search
        if plan is not None:
            body["plan"] = plan
        data = self._request("POST", "/pinned", body)
        return PinnedResult(
            as_of=data["as_of"],
            search=(
                self._search_result(data["search"])
                if "search" in data else None
            ),
            plan=(
                self._plan_result(data["plan"]) if "plan" in data else None
            ),
        )

    # -- trading -----------------------------------------------------------
    def register_participant(self, name: str, funding: float = 0.0) -> dict:
        return self._request("POST", "/participants", {
            "name": name, "funding": funding,
        })

    def submit_wtp(self, wtp: WTPFunction) -> WTPReceipt:
        """Queue a WTP for the next round.  The task must be one of the
        declarative pure-data kinds (``QueryCompletenessTask`` /
        ``ExplorationTask``); the gateway books it under the
        *authenticated* principal regardless of ``wtp.buyer``."""
        data = self._request("POST", "/wtp", wtp_to_spec(wtp))
        return WTPReceipt(
            buyer=data["buyer"],
            attributes=tuple(data["attributes"]),
            elicitation=data["elicitation"],
            queued=data["queued"],
            as_of=data["as_of"],
        )

    def run_round(self, context: str = "*") -> RoundSummary:
        data = self._request("POST", "/rounds", {"context": context})
        return RoundSummary(
            round_index=data["round_index"],
            deliveries=tuple(
                DeliveryView(
                    transaction_id=d["transaction_id"],
                    buyer=d["buyer"],
                    datasets=tuple(d["datasets"]),
                    satisfaction=d["satisfaction"],
                    bid=d["bid"],
                    price_paid=d["price_paid"],
                    arbiter_fee=d["arbiter_fee"],
                    seller_shares=tuple(
                        sorted(d["seller_shares"].items())
                    ),
                )
                for d in data["deliveries"]
            ),
            rejections=tuple(
                (r["buyer"], r["reason"]) for r in data["rejections"]
            ),
            expost_deliveries=tuple(
                (e["transaction_id"], e["buyer"], tuple(e["datasets"]))
                for e in data["expost_deliveries"]
            ),
            as_of=data["as_of"],
        )
