"""The unified platform façade: one object, one API, the whole DMMS.

The paper's market platform (Fig. 1–2) is *one* system mediating sellers,
buyers and the arbiter.  :class:`DataMarket` owns and wires the entire
stack — metadata engine, index builder, discovery, DoD planner, mashup
builder, arbiter — and exposes a small set of typed operations:

======================  =====================================================
``register_dataset``    seller shares a new dataset  → :class:`RegisterResult`
``update_dataset``      seller refreshes a live one  → :class:`RegisterResult`
``retire_dataset``      seller withdraws             → :class:`RetireResult`
``search``              rank datasets by attributes  → :class:`SearchResult`
``plan``                build ranked mashups         → :class:`PlanResult`
``submit_wtp``          buyer queues an offer        → :class:`WTPReceipt`
``run_round``           clear the market             → :class:`RoundReport`
======================  =====================================================

Every mutation flows through this one choke point, which is what makes the
component-scoped **plan cache** sound: ``plan`` requests are memoized with
the join-graph component fingerprints they depended on, a delta evicts
exactly the entries whose components it touched (unrelated seller churn
leaves the rest servable), and every read result is stamped with the graph
version it was computed against (``as_of``).  Errors on this surface are
structured
:class:`~repro.errors.MarketError` subclasses, never bare ``ValueError``.

The engine classes remain importable (they are the internal layer); the
façade is the supported wiring::

    from repro import DataMarket, external_market

    market = DataMarket(external_market())
    market.register_dataset(my_relation, seller="acme", reserve_price=5.0)
    market.register_participant("b1", funding=200.0)
    market.submit_wtp(my_wtp)
    report = market.run_round()
"""

from __future__ import annotations

from typing import Iterable

from ..errors import (
    DatasetNotFoundError,
    DuplicateDatasetError,
    InvalidRequestError,
)
from ..integration.dod import MashupRequest, PlanCacheStats, PlannerStats
from ..market.arbiter import Arbiter, Delivery
from ..market.design import MarketDesign, external_market
from ..market.licensing import ContextualIntegrityPolicy, License
from ..mashup import MashupBuilder
from ..relation import Relation
from ..wtp import WTPFunction
from .results import (
    PlanResult,
    RegisterResult,
    RetireResult,
    RoundReport,
    SearchResult,
    WTPReceipt,
)


def _normalized_attributes(attributes: Iterable[str]) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if not attrs:
        raise InvalidRequestError("at least one attribute is required")
    for a in attrs:
        if not isinstance(a, str) or not a:
            raise InvalidRequestError(
                f"attributes must be non-empty strings, got {a!r}"
            )
    return attrs


class DataMarket:
    """Facade over the full data-market stack, per deployed design.

    Constructor knobs forward to the internal layer: ``num_perm`` /
    ``min_overlap`` / ``incremental`` shape the discovery indexes,
    ``exhaustive`` / ``beam_width`` select the DoD plan enumerator, and
    ``plan_cache`` / ``plan_cache_size`` control the component-scoped plan
    cache (on by default, LRU-bounded): cached plans survive deltas in
    unrelated join-graph components and are evicted exactly when a delta
    touched a component they depend on.
    """

    def __init__(
        self,
        design: MarketDesign | None = None,
        *,
        num_perm: int = 64,
        min_overlap: float = 0.5,
        incremental: bool = True,
        exhaustive: bool = False,
        beam_width: int | None = None,
        plan_cache: bool = True,
        plan_cache_size: int = 128,
    ):
        self.design = design if design is not None else external_market()
        self.arbiter = Arbiter(
            self.design,
            builder=MashupBuilder(
                num_perm=num_perm,
                min_overlap=min_overlap,
                incremental=incremental,
                exhaustive=exhaustive,
                beam_width=beam_width,
                plan_cache=plan_cache,
                plan_cache_size=plan_cache_size,
            ),
        )
        self._rounds = 0

    # -- internal layer, exposed read-only for observability ---------------
    @property
    def builder(self) -> MashupBuilder:
        return self.arbiter.builder

    @property
    def metadata(self):
        return self.arbiter.builder.metadata

    @property
    def index(self):
        return self.arbiter.builder.index

    @property
    def discovery(self):
        return self.arbiter.builder.discovery

    @property
    def planner(self):
        return self.arbiter.builder.dod

    @property
    def ledger(self):
        return self.arbiter.ledger

    @property
    def licenses(self):
        return self.arbiter.licenses

    @property
    def audit(self):
        return self.arbiter.audit

    @property
    def lineage(self):
        return self.arbiter.lineage

    @property
    def negotiation(self):
        return self.arbiter.negotiation

    @property
    def recommendations(self):
        return self.arbiter.recommendations

    @property
    def datasets(self) -> list[str]:
        return self.arbiter.builder.datasets

    @property
    def graph_version(self) -> int:
        """Current relationship-graph version (``as_of`` of fresh reads)."""
        return self.arbiter.builder.index.graph_version

    @property
    def planner_stats(self) -> PlannerStats:
        """Work counters of the most recent ``plan`` / round build."""
        return self.arbiter.builder.dod.last_stats

    @property
    def plan_cache_stats(self) -> PlanCacheStats:
        """Cumulative plan-cache hit/miss/invalidation counters."""
        return self.arbiter.builder.dod.cache_stats

    # -- participants ------------------------------------------------------
    def register_participant(self, name: str, funding: float = 0.0) -> None:
        """Open a ledger account for a buyer or seller."""
        self.arbiter.register_participant(name, funding=funding)

    def attach_buyer_platform(self, platform) -> None:
        """Deliveries will be pushed to ``platform.receive``."""
        self.arbiter.attach_buyer_platform(platform)

    # -- dataset lifecycle -------------------------------------------------
    def register_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> RegisterResult:
        """Share a *new* dataset (a live name is a :class:`DuplicateDatasetError`;
        use :meth:`update_dataset` to refresh one)."""
        if relation.name in self.arbiter.licenses:
            raise DuplicateDatasetError(
                f"dataset {relation.name!r} is already live; "
                "use update_dataset to refresh it"
            )
        return self._accept(
            relation, seller, reserve_price, license, policy, created=True
        )

    def update_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> RegisterResult:
        """Refresh a live dataset: new snapshot version, refreshed reserve,
        granted licensees preserved, and an omitted ``license``/``policy``
        keeping the current one.  Updating a name the platform does not
        hold is a :class:`DatasetNotFoundError`; silent license downgrades
        raise :class:`~repro.errors.LicenseDowngradeError`."""
        if relation.name not in self.arbiter.licenses:
            raise DatasetNotFoundError(
                f"dataset {relation.name!r} is not registered; "
                "use register_dataset first"
            )
        return self._accept(
            relation, seller, reserve_price, license, policy, created=False
        )

    def _accept(
        self, relation, seller, reserve_price, license, policy, created
    ) -> RegisterResult:
        self.arbiter.accept_dataset(
            relation,
            seller=seller,
            reserve_price=reserve_price,
            license=license,
            policy=policy,
        )
        snapshot = self.metadata.snapshot(relation.name)
        return RegisterResult(
            dataset=relation.name,
            seller=seller,
            version=snapshot.version,
            rows=len(relation),
            reserve_price=reserve_price,
            created=created,
            as_of=self.graph_version,
        )

    def retire_dataset(self, dataset: str) -> RetireResult:
        """Withdraw a dataset; discovery indexes prune it in place."""
        if dataset not in self.arbiter.licenses:
            raise DatasetNotFoundError(
                f"dataset {dataset!r} is not registered"
            )
        seller = self.arbiter.licenses.owner_of(dataset)
        self.arbiter.retire_dataset(dataset)
        return RetireResult(
            dataset=dataset, seller=seller, as_of=self.graph_version
        )

    # -- reads -------------------------------------------------------------
    def search(
        self, attributes: Iterable[str], *, min_score: float = 0.55
    ) -> SearchResult:
        """Rank registered datasets by coverage of the attribute list."""
        attrs = _normalized_attributes(attributes)
        hits = self.discovery.search_schema(list(attrs), min_score=min_score)
        return SearchResult(
            attributes=attrs, hits=tuple(hits), as_of=self.graph_version
        )

    def plan(
        self,
        attributes: Iterable[str],
        *,
        key: str | None = None,
        examples: Relation | None = None,
        max_results: int = 5,
        min_match_score: float = 0.55,
    ) -> PlanResult:
        """Build ranked, materialized mashups for an attribute set.

        Repeated identical requests are served from the component-scoped
        plan cache (``result.cached``) for as long as no delta touched a
        join-graph component the result depends on; relevant deltas evict
        the entry automatically.
        """
        attrs = _normalized_attributes(attributes)
        if max_results < 1:
            raise InvalidRequestError("max_results must be >= 1")
        request = MashupRequest(
            attributes=list(attrs),
            key=key,
            examples=examples,
            max_results=max_results,
            min_match_score=min_match_score,
        )
        mashups = self.arbiter.builder.build(request)
        return PlanResult(
            attributes=attrs,
            key=key,
            mashups=tuple(mashups),
            cached=self.planner_stats.cache_hit,
            as_of=self.graph_version,
        )

    # -- trading -----------------------------------------------------------
    def submit_wtp(self, wtp: WTPFunction) -> WTPReceipt:
        """Queue a buyer's WTP function for the next round."""
        self.arbiter.submit_wtp(wtp)
        return WTPReceipt(
            buyer=wtp.buyer,
            attributes=tuple(wtp.attributes),
            elicitation=wtp.elicitation,
            queued=self.arbiter.pending_wtps,
            as_of=self.graph_version,
        )

    def run_round(self, context: str = "*") -> RoundReport:
        """Clear all queued WTPs through the arbiter's full pipeline."""
        result = self.arbiter.run_round(context=context)
        self._rounds += 1
        return RoundReport(
            round_index=self._rounds,
            deliveries=tuple(result.deliveries),
            rejections=tuple(result.rejections),
            expost_deliveries=tuple(result.expost_deliveries),
            as_of=self.graph_version,
        )

    # -- ex-post settlement (passthrough; see Arbiter docs) ----------------
    def receive_expost_report(
        self, buyer: str, transaction_id: int, reported_value: float
    ) -> None:
        self.arbiter.receive_expost_report(
            buyer, transaction_id, reported_value
        )

    def settle_expost(self, rng, true_values=None) -> list[Delivery]:
        return self.arbiter.settle_expost(rng, true_values)

    # -- simulator hook ----------------------------------------------------
    @staticmethod
    def simulate(*args, **kwargs):
        """Run :func:`repro.simulator.simulate_market_deployment` (which
        deploys the design on a façade exactly like this one)."""
        from ..simulator import simulate_market_deployment

        return simulate_market_deployment(*args, **kwargs)
