"""The unified platform façade: one object, one API, the whole DMMS.

The paper's market platform (Fig. 1–2) is *one* system mediating sellers,
buyers and the arbiter.  :class:`DataMarket` owns and wires the entire
stack — metadata engine, index builder, discovery, DoD planner, mashup
builder, arbiter — and exposes a small set of typed operations:

======================  =====================================================
``register_dataset``    seller shares a new dataset  → :class:`RegisterResult`
``update_dataset``      seller refreshes a live one  → :class:`RegisterResult`
``retire_dataset``      seller withdraws             → :class:`RetireResult`
``search``              rank datasets by attributes  → :class:`SearchResult`
``plan``                build ranked mashups         → :class:`PlanResult`
``submit_wtp``          buyer queues an offer        → :class:`WTPReceipt`
``run_round``           clear the market             → :class:`RoundReport`
======================  =====================================================

Every mutation flows through this one choke point, which is what makes the
component-scoped **plan cache** sound: ``plan`` requests are memoized with
the join-graph component fingerprints they depended on, a delta evicts
exactly the entries whose components it touched (unrelated seller churn
leaves the rest servable), and every read result is stamped with the graph
version it was computed against (``as_of``).  Errors on this surface are
structured
:class:`~repro.errors.MarketError` subclasses, never bare ``ValueError``.

The engine classes remain importable (they are the internal layer); the
façade is the supported wiring::

    from repro import DataMarket, external_market

    market = DataMarket(external_market())
    market.register_dataset(my_relation, seller="acme", reserve_price=5.0)
    market.register_participant("b1", funding=200.0)
    market.submit_wtp(my_wtp)
    report = market.run_round()
"""

from __future__ import annotations

from typing import Iterable

from ..errors import (
    DatasetNotFoundError,
    DuplicateDatasetError,
    InvalidRequestError,
    UnknownParticipantError,
)
from ..integration import TransformHint
from ..integration.dod import MashupRequest, PlanCacheStats, PlannerStats
from ..market.arbiter import Arbiter, Delivery
from ..market.design import MarketDesign, external_market
from ..market.disputes import DisputeDesk, DisputeKind
from ..market.insurance import InsuranceDesk
from ..market.licensing import ContextualIntegrityPolicy, License
from ..market.negotiation import InfoRequest
from ..market.trusts import DataTrust
from ..mashup import MashupBuilder
from ..relation import Relation, Schema
from ..wtp import WTPFunction
from .store import MarketStore
from .results import (
    DisputeResult,
    InfoRequestView,
    InsuranceQuote,
    InsuranceSettlement,
    NegotiationReport,
    PlanResult,
    RegisterResult,
    RetireResult,
    RoundReport,
    SearchResult,
    TrustDistribution,
    TrustReport,
    WTPReceipt,
)


def _normalized_attributes(attributes: Iterable[str]) -> tuple[str, ...]:
    attrs = tuple(attributes)
    if not attrs:
        raise InvalidRequestError("at least one attribute is required")
    for a in attrs:
        if not isinstance(a, str) or not a:
            raise InvalidRequestError(
                f"attributes must be non-empty strings, got {a!r}"
            )
    return attrs


class DataMarket:
    """Facade over the full data-market stack, per deployed design.

    Constructor knobs forward to the internal layer: ``num_perm`` /
    ``min_overlap`` / ``incremental`` shape the discovery indexes,
    ``exhaustive`` / ``beam_width`` select the DoD plan enumerator,
    ``cost_model`` toggles fan-out cost-based join-tree planning (on by
    default; off selects the hop-count comparison oracle), and
    ``plan_cache`` / ``plan_cache_size`` control the component-scoped plan
    cache (on by default, LRU-bounded): cached plans survive deltas in
    unrelated join-graph components and are evicted exactly when a delta
    touched a component they depend on.  ``scheme`` selects the MinHash
    sketch scheme for every column profile: ``"classic"`` (the
    ``num_perm``-way universal-hash fold) or ``"oph"`` (one-permutation
    hashing with densification plus repr-free packed canonicalization —
    the fast ingest path); a store replays only into a market of the
    same scheme.
    """

    def __init__(
        self,
        design: MarketDesign | None = None,
        *,
        num_perm: int = 64,
        min_overlap: float = 0.5,
        incremental: bool = True,
        exhaustive: bool = False,
        beam_width: int | None = None,
        plan_cache: bool = True,
        plan_cache_size: int = 128,
        exec_engine: str = "columnar",
        cost_model: bool = True,
        scheme: str = "classic",
        store: MarketStore | str | None = None,
    ):
        self.design = design if design is not None else external_market()
        self.exec_engine = exec_engine
        self.arbiter = Arbiter(
            self.design,
            builder=MashupBuilder(
                num_perm=num_perm,
                min_overlap=min_overlap,
                incremental=incremental,
                exhaustive=exhaustive,
                beam_width=beam_width,
                plan_cache=plan_cache,
                plan_cache_size=plan_cache_size,
                exec_engine=exec_engine,
                cost_model=cost_model,
                scheme=scheme,
            ),
        )
        self._rounds = 0
        self._dispute_desk: DisputeDesk | None = None
        self._insurance_desk: InsuranceDesk | None = None
        self._trusts: dict[str, DataTrust] = {}
        #: optional durable store — a path (or a MarketStore) makes every
        #: dataset delta crash-safe and cold-starts this market by replay
        self._store: MarketStore | None = None
        if store is not None:
            self._store = (
                store if isinstance(store, MarketStore)
                else MarketStore(store)
            )
            self._store.replay_into(self)

    # -- internal layer, exposed read-only for observability ---------------
    @property
    def builder(self) -> MashupBuilder:
        return self.arbiter.builder

    @property
    def store(self) -> MarketStore | None:
        """The durable store backing this market (None when ephemeral)."""
        return self._store

    def persist_plan_cache(self) -> int:
        """Persist the serializable part of the plan cache so a restart
        replays warm; returns entries written (0 without a store)."""
        if self._store is None:
            return 0
        return self._store.save_plan_cache(self)

    @property
    def metadata(self):
        return self.arbiter.builder.metadata

    @property
    def index(self):
        return self.arbiter.builder.index

    @property
    def discovery(self):
        return self.arbiter.builder.discovery

    @property
    def planner(self):
        return self.arbiter.builder.dod

    @property
    def ledger(self):
        return self.arbiter.ledger

    @property
    def licenses(self):
        return self.arbiter.licenses

    @property
    def audit(self):
        return self.arbiter.audit

    @property
    def lineage(self):
        return self.arbiter.lineage

    @property
    def negotiation(self):
        return self.arbiter.negotiation

    @property
    def disputes(self) -> DisputeDesk:
        """The dispute desk, adjudicating against this market's own
        audit log, lineage store and ledger (built on first use)."""
        if self._dispute_desk is None:
            self._dispute_desk = DisputeDesk(
                self.ledger, self.audit, self.lineage
            )
        return self._dispute_desk

    @property
    def insurance(self) -> InsuranceDesk:
        """The data-insurance desk, settling through this market's ledger
        (built on first use)."""
        if self._insurance_desk is None:
            self._insurance_desk = InsuranceDesk(self.ledger)
        return self._insurance_desk

    @property
    def trusts(self) -> tuple[str, ...]:
        """Names of the data trusts hosted on this platform."""
        return tuple(sorted(self._trusts))

    @property
    def recommendations(self):
        return self.arbiter.recommendations

    @property
    def datasets(self) -> list[str]:
        return self.arbiter.builder.datasets

    @property
    def graph_version(self) -> int:
        """Current relationship-graph version (``as_of`` of fresh reads)."""
        return self.arbiter.builder.index.graph_version

    @property
    def planner_stats(self) -> PlannerStats:
        """Work counters of the most recent ``plan`` / round build."""
        return self.arbiter.builder.dod.last_stats

    @property
    def plan_cache_stats(self) -> PlanCacheStats:
        """Cumulative plan-cache hit/miss/invalidation counters."""
        return self.arbiter.builder.dod.cache_stats

    # -- participants ------------------------------------------------------
    def register_participant(self, name: str, funding: float = 0.0) -> None:
        """Open a ledger account for a buyer or seller."""
        self.arbiter.register_participant(name, funding=funding)

    def attach_buyer_platform(self, platform) -> None:
        """Deliveries will be pushed to ``platform.receive``."""
        self.arbiter.attach_buyer_platform(platform)

    # -- dataset lifecycle -------------------------------------------------
    def register_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> RegisterResult:
        """Share a *new* dataset (a live name is a :class:`DuplicateDatasetError`;
        use :meth:`update_dataset` to refresh one)."""
        if relation.name in self.arbiter.licenses:
            raise DuplicateDatasetError(
                f"dataset {relation.name!r} is already live; "
                "use update_dataset to refresh it"
            )
        return self._accept(
            relation, seller, reserve_price, license, policy, created=True
        )

    def update_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> RegisterResult:
        """Refresh a live dataset: new snapshot version, refreshed reserve,
        granted licensees preserved, and an omitted ``license``/``policy``
        keeping the current one.  Updating a name the platform does not
        hold is a :class:`DatasetNotFoundError`; silent license downgrades
        raise :class:`~repro.errors.LicenseDowngradeError`."""
        if relation.name not in self.arbiter.licenses:
            raise DatasetNotFoundError(
                f"dataset {relation.name!r} is not registered; "
                "use register_dataset first"
            )
        return self._accept(
            relation, seller, reserve_price, license, policy, created=False
        )

    def _accept(
        self, relation, seller, reserve_price, license, policy, created
    ) -> RegisterResult:
        self.arbiter.accept_dataset(
            relation,
            seller=seller,
            reserve_price=reserve_price,
            license=license,
            policy=policy,
        )
        snapshot = self.metadata.snapshot(relation.name)
        if self._store is not None:
            self._store.persist_dataset(self, relation.name)
        return RegisterResult(
            dataset=relation.name,
            seller=seller,
            version=snapshot.version,
            rows=len(relation),
            reserve_price=reserve_price,
            created=created,
            as_of=self.graph_version,
        )

    def retire_dataset(self, dataset: str) -> RetireResult:
        """Withdraw a dataset; discovery indexes prune it in place."""
        if dataset not in self.arbiter.licenses:
            raise DatasetNotFoundError(
                f"dataset {dataset!r} is not registered"
            )
        seller = self.arbiter.licenses.owner_of(dataset)
        self.arbiter.retire_dataset(dataset)
        if self._store is not None:
            self._store.persist_retire(self, dataset)
        return RetireResult(
            dataset=dataset, seller=seller, as_of=self.graph_version
        )

    # -- reads -------------------------------------------------------------
    def search(
        self, attributes: Iterable[str], *, min_score: float = 0.55
    ) -> SearchResult:
        """Rank registered datasets by coverage of the attribute list."""
        attrs = _normalized_attributes(attributes)
        hits = self.discovery.search_schema(list(attrs), min_score=min_score)
        return SearchResult(
            attributes=attrs, hits=tuple(hits), as_of=self.graph_version
        )

    def plan(
        self,
        attributes: Iterable[str],
        *,
        key: str | None = None,
        examples: Relation | None = None,
        max_results: int = 5,
        min_match_score: float = 0.55,
    ) -> PlanResult:
        """Build ranked, materialized mashups for an attribute set.

        Repeated identical requests are served from the component-scoped
        plan cache (``result.cached``) for as long as no delta touched a
        join-graph component the result depends on; relevant deltas evict
        the entry automatically.
        """
        attrs = _normalized_attributes(attributes)
        if max_results < 1:
            raise InvalidRequestError("max_results must be >= 1")
        request = MashupRequest(
            attributes=list(attrs),
            key=key,
            examples=examples,
            max_results=max_results,
            min_match_score=min_match_score,
        )
        mashups = self.arbiter.builder.build(request)
        return PlanResult(
            attributes=attrs,
            key=key,
            mashups=tuple(mashups),
            cached=self.planner_stats.cache_hit,
            as_of=self.graph_version,
        )

    def materialize(
        self, result: PlanResult, engine: str | None = None
    ) -> tuple[Relation, ...]:
        """Run a :class:`PlanResult`'s unevaluated trees and return the
        relations, best mashup first.  ``engine`` picks the execution
        engine (``"columnar"`` / ``"iteration"``); None uses the
        market's ``exec_engine``.  Engines are bit-identical, and results
        are memoized on the mashups."""
        return result.collect(engine)

    # -- negotiation (Section 4.1) -----------------------------------------
    def _request_view(self, request: InfoRequest) -> InfoRequestView:
        return InfoRequestView(
            request_id=request.request_id,
            attribute=request.attribute,
            description=request.description,
            bounty=request.bounty,
            status=request.status.value,
            fulfilled_by=request.fulfilled_by,
            as_of=self.graph_version,
        )

    def publish_gaps(self) -> NegotiationReport:
        """Turn the builder's demand gap report into open info requests
        with demand-proportional bounties."""
        demand = self.arbiter.builder.gap_report().demand
        requests = self.negotiation.publish_gaps(demand)
        return NegotiationReport(
            requests=tuple(self._request_view(r) for r in requests),
            as_of=self.graph_version,
        )

    def open_info_requests(self) -> NegotiationReport:
        """All currently open information requests."""
        return NegotiationReport(
            requests=tuple(
                self._request_view(r)
                for r in self.negotiation.open_requests()
            ),
            as_of=self.graph_version,
        )

    def respond_with_hint(
        self, request_id: int, seller: str, hint: TransformHint
    ) -> InfoRequestView:
        """A seller explains how an existing column maps to the requested
        attribute; the hint joins the planner's standing hints (and its
        content is part of the plan-cache key) immediately."""
        request = self.negotiation.respond_with_hint(request_id, seller, hint)
        self.arbiter.builder.add_hint(hint)
        return self._request_view(request)

    def respond_with_dataset(
        self,
        request_id: int,
        seller: str,
        relation: Relation,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> InfoRequestView:
        """An opportunistic seller supplies a new dataset carrying the
        requested attribute: the request closes and the dataset is
        registered (or refreshed) in one step."""
        request = self.negotiation.respond_with_dataset(
            request_id, seller, relation
        )
        if relation.name in self.arbiter.licenses:
            self.update_dataset(
                relation, seller, reserve_price=reserve_price,
                license=license, policy=policy,
            )
        else:
            self.register_dataset(
                relation, seller, reserve_price=reserve_price,
                license=license, policy=policy,
            )
        return self._request_view(request)

    # -- disputes (Section 4.4) --------------------------------------------
    def _dispute_view(self, dispute) -> DisputeResult:
        return DisputeResult(
            dispute_id=dispute.dispute_id,
            complainant=dispute.complainant,
            kind=dispute.kind.value,
            transaction_id=dispute.transaction_id,
            claimed_amount=dispute.claimed_amount,
            status=dispute.status.value,
            resolution=dispute.resolution,
            refund=dispute.refund,
            as_of=self.graph_version,
        )

    def file_dispute(
        self,
        complainant: str,
        kind: str | DisputeKind,
        transaction_id: int,
        claimed_amount: float,
    ) -> DisputeResult:
        """File a dispute (``"not_delivered"`` / ``"overcharged"`` /
        ``"unpaid_share"``) to be adjudicated against the market's own
        audit and lineage records."""
        if not isinstance(kind, DisputeKind):
            try:
                kind = DisputeKind(kind)
            except ValueError:
                valid = ", ".join(k.value for k in DisputeKind)
                raise InvalidRequestError(
                    f"unknown dispute kind {kind!r}; expected one of {valid}"
                ) from None
        dispute = self.disputes.file(
            complainant, kind, transaction_id, claimed_amount
        )
        return self._dispute_view(dispute)

    def resolve_dispute(self, dispute_id: int) -> DisputeResult:
        """Adjudicate a filed dispute from the audit/lineage evidence;
        an upheld claim refunds through the ledger."""
        return self._dispute_view(self.disputes.resolve(dispute_id))

    def open_disputes(self) -> tuple[DisputeResult, ...]:
        return tuple(
            self._dispute_view(d) for d in self.disputes.open_disputes()
        )

    # -- insurance (Section 7.1) -------------------------------------------
    def underwrite_insurance(
        self,
        dataset: str,
        insured: str,
        *,
        liability: float,
        breach_probability: float,
        loading: float = 0.25,
    ) -> InsuranceQuote:
        """Underwrite a policy on a *registered* dataset for a *known*
        participant; premiums and payouts settle through the ledger."""
        if dataset not in self.arbiter.licenses:
            raise DatasetNotFoundError(
                f"cannot insure unregistered dataset {dataset!r}"
            )
        if insured not in self.ledger:
            raise UnknownParticipantError(
                f"insured party {insured!r} is not registered"
            )
        policy = self.insurance.underwrite(
            dataset, insured, liability, breach_probability, loading
        )
        return InsuranceQuote(
            policy_id=policy.policy_id,
            dataset=policy.dataset,
            insured=policy.insured,
            liability=policy.liability,
            breach_probability=policy.breach_probability,
            loading=policy.loading,
            premium=policy.premium,
            active=policy.active,
            as_of=self.graph_version,
        )

    def collect_premium(self, policy_id: int) -> InsuranceSettlement:
        amount = self.insurance.collect_premium(policy_id)
        return InsuranceSettlement(
            policy_id=policy_id,
            insured=self.insurance.policy(policy_id).insured,
            kind="premium",
            amount=amount,
            solvency=self.insurance.solvency(),
            as_of=self.graph_version,
        )

    def file_insurance_claim(self, policy_id: int) -> InsuranceSettlement:
        """A breach occurred: pay out the liability, retire the policy."""
        amount = self.insurance.file_claim(policy_id)
        return InsuranceSettlement(
            policy_id=policy_id,
            insured=self.insurance.policy(policy_id).insured,
            kind="claim",
            amount=amount,
            solvency=self.insurance.solvency(),
            as_of=self.graph_version,
        )

    # -- data trusts (Section 4.5) -----------------------------------------
    def _trust(self, name: str) -> DataTrust:
        try:
            return self._trusts[name]
        except KeyError:
            raise DatasetNotFoundError(
                f"no data trust named {name!r} on this platform"
            ) from None

    def _trust_report(self, trust: DataTrust) -> TrustReport:
        return TrustReport(
            trust=trust.name,
            members=tuple(trust.members),
            rows=trust.total_rows,
            as_of=self.graph_version,
        )

    def create_trust(self, name: str, schema: Schema | list) -> TrustReport:
        """Open a member coalition pooling personal data under ``name``
        (which is also the dataset name it will sell under)."""
        if name in self._trusts:
            raise DuplicateDatasetError(
                f"a data trust named {name!r} already exists"
            )
        if name in self.arbiter.licenses:
            raise DuplicateDatasetError(
                f"dataset name {name!r} is already live on the market"
            )
        trust = DataTrust(name, schema)
        self._trusts[name] = trust
        return self._trust_report(trust)

    def contribute_to_trust(
        self, trust: str, member: str, relation: Relation
    ) -> TrustReport:
        """Pool one member's rows into the trust."""
        t = self._trust(trust)
        t.contribute(member, relation)
        return self._trust_report(t)

    def offer_trust_dataset(
        self,
        trust: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> RegisterResult:
        """Put the trust's pooled dataset on the market (the trust itself
        is the seller of record)."""
        t = self._trust(trust)
        pooled = t.pooled_dataset()
        if pooled.name in self.arbiter.licenses:
            return self.update_dataset(
                pooled, t.name, reserve_price=reserve_price,
                license=license, policy=policy,
            )
        return self.register_dataset(
            pooled, t.name, reserve_price=reserve_price,
            license=license, policy=policy,
        )

    def distribute_trust_revenue(
        self, trust: str, sold_mashup: Relation, amount: float
    ) -> TrustDistribution:
        """Split revenue earned by a sold mashup over trust members in
        proportion to the provenance shares of the rows they contributed,
        and move the money from the trust's account to the members'."""
        t = self._trust(trust)
        payouts = t.distribute(sold_mashup, amount)
        self.ledger.ensure_account(t.name)
        for member, value in sorted(payouts.items()):
            if value <= 0:
                continue
            self.ledger.ensure_account(member)
            self.ledger.transfer(
                t.name, member, value,
                memo=f"trust {t.name} revenue share",
            )
        return TrustDistribution(
            trust=t.name,
            amount=amount,
            payouts=tuple(sorted(payouts.items())),
            as_of=self.graph_version,
        )

    # -- trading -----------------------------------------------------------
    def submit_wtp(self, wtp: WTPFunction) -> WTPReceipt:
        """Queue a buyer's WTP function for the next round."""
        self.arbiter.submit_wtp(wtp)
        return WTPReceipt(
            buyer=wtp.buyer,
            attributes=tuple(wtp.attributes),
            elicitation=wtp.elicitation,
            queued=self.arbiter.pending_wtps,
            as_of=self.graph_version,
        )

    def run_round(self, context: str = "*") -> RoundReport:
        """Clear all queued WTPs through the arbiter's full pipeline."""
        result = self.arbiter.run_round(context=context)
        self._rounds += 1
        return RoundReport(
            round_index=self._rounds,
            deliveries=tuple(result.deliveries),
            rejections=tuple(result.rejections),
            expost_deliveries=tuple(result.expost_deliveries),
            as_of=self.graph_version,
        )

    # -- ex-post settlement (passthrough; see Arbiter docs) ----------------
    def receive_expost_report(
        self, buyer: str, transaction_id: int, reported_value: float
    ) -> None:
        self.arbiter.receive_expost_report(
            buyer, transaction_id, reported_value
        )

    def settle_expost(self, rng, true_values=None) -> list[Delivery]:
        return self.arbiter.settle_expost(rng, true_values)

    # -- simulator hook ----------------------------------------------------
    @staticmethod
    def simulate(*args, **kwargs):
        """Run :func:`repro.simulator.simulate_market_deployment` (which
        deploys the design on a façade exactly like this one)."""
        from ..simulator import simulate_market_deployment

        return simulate_market_deployment(*args, **kwargs)
