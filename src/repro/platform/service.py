"""Snapshot-consistent concurrent service over a :class:`DataMarket`.

The paper's DMMS is "fully-incremental, always-on" — many sellers push
deltas while many buyers search and plan.  The façade itself is
single-threaded by design (every mutation flows through one choke point);
this module adds the concurrency discipline around it:

* **One writer.**  All mutations (`register_dataset` / `update_dataset` /
  `retire_dataset` / arbitrary :meth:`MarketService.submit` closures) are
  enqueued as :class:`WriteTicket`\\ s and drained by a single background
  worker thread, each applied under the write side of a readers-writer
  lock.  Callers get the ticket back immediately and may block on
  :meth:`WriteTicket.result` when they need the outcome.

* **Snapshot reads.**  `search` / `plan` take the read side of the lock, so
  a read always observes a *complete* graph version: an in-flight delta is
  invisible until its transaction (engine mutation + durable-store commit)
  finishes.  :meth:`MarketService.pinned` holds the read lock across a
  whole block, guaranteeing every read inside it answers ``as_of`` the same
  version — the classic "no torn multi-read" contract.  The lock is
  writer-preferring, so a steady reader stream cannot starve the delta
  queue.

Result materialization is safe *outside* the lock: plan results carry
immutable expression trees over immutable relations, so collecting them
after release races with nothing.

With a store-backed market the service also exposes the durable reads —
keyset-cursor listing and FTS dataset search — straight from SQLite.
"""

from __future__ import annotations

import queue
import threading
from contextlib import contextmanager
from typing import Callable

from ..errors import MarketError
from ..market.licensing import ContextualIntegrityPolicy, License
from ..relation import Relation

_STOP = object()


class ServiceError(MarketError):
    """A service-layer operation failed (closed service, pending ticket)."""


class _RWLock:
    """Writer-preferring readers-writer lock (Condition-based).

    Readers proceed concurrently; a waiting writer blocks new readers, so
    the single delta worker drains even under a saturating read load."""

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False
        self._writers_waiting = 0

    @contextmanager
    def read(self):
        with self._cond:
            while self._writer or self._writers_waiting:
                self._cond.wait()
            self._readers += 1
        try:
            yield
        finally:
            with self._cond:
                self._readers -= 1
                if self._readers == 0:
                    self._cond.notify_all()

    @contextmanager
    def write(self):
        with self._cond:
            self._writers_waiting += 1
            try:
                while self._writer or self._readers:
                    self._cond.wait()
                self._writer = True
            finally:
                self._writers_waiting -= 1
        try:
            yield
        finally:
            with self._cond:
                self._writer = False
                self._cond.notify_all()


class WriteTicket:
    """Receipt for one enqueued mutation.

    The worker resolves it exactly once: :meth:`result` blocks until then
    and either returns the operation's return value or re-raises the
    exception the operation died with (in the caller's thread)."""

    def __init__(self, label: str):
        self.label = label
        self._event = threading.Event()
        self._result = None
        self._error: BaseException | None = None

    @property
    def done(self) -> bool:
        return self._event.is_set()

    def result(self, timeout: float | None = None):
        if not self._event.wait(timeout):
            raise ServiceError(
                f"write {self.label!r} still pending after {timeout}s"
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _resolve(self, result=None, error: BaseException | None = None):
        self._result = result
        self._error = error
        self._event.set()


class PinnedView:
    """Reads pinned to one graph version (inside ``service.pinned()``).

    Every ``search``/``plan`` through this view answers against the same
    snapshot; the stamped ``as_of`` is checked against the pinned version
    as an internal invariant."""

    def __init__(self, market, as_of: int):
        self._market = market
        self.as_of = as_of

    def _check(self, result):
        if result.as_of != self.as_of:
            raise ServiceError(
                f"torn read: pinned version {self.as_of} but result "
                f"answered as_of {result.as_of}"
            )
        return result

    def search(self, attributes, **kwargs):
        return self._check(self._market.search(attributes, **kwargs))

    def plan(self, attributes, **kwargs):
        return self._check(self._market.plan(attributes, **kwargs))


class MarketService:
    """Concurrent façade over one :class:`~repro.platform.DataMarket`."""

    def __init__(self, market):
        self.market = market
        self._lock = _RWLock()
        self._queue: queue.Queue = queue.Queue()
        self._applied = 0
        self._failed = 0
        self._reads = 0
        self._busy = False
        self._counter_lock = threading.Lock()
        self._closed = False
        self._worker = threading.Thread(
            target=self._drain, name="market-writer", daemon=True
        )
        self._worker.start()

    # -- the single writer -------------------------------------------------
    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            if item is _STOP:
                break
            ticket, op = item
            self._busy = True
            try:
                with self._lock.write():
                    result = op()
            except BaseException as exc:  # resolved into the ticket
                with self._counter_lock:
                    self._failed += 1
                ticket._resolve(error=exc)
            else:
                with self._counter_lock:
                    self._applied += 1
                ticket._resolve(result=result)
            finally:
                self._busy = False

    def submit(self, op: Callable[[], object], label: str = "op") -> WriteTicket:
        """Enqueue an arbitrary mutation ``op()`` (applied by the worker
        under the write lock, in submission order)."""
        if self._closed:
            raise ServiceError("service is closed")
        ticket = WriteTicket(label)
        self._queue.put((ticket, op))
        return ticket

    # -- writer API (all enqueue + return a ticket) ------------------------
    def register_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> WriteTicket:
        return self.submit(
            lambda: self.market.register_dataset(
                relation, seller, reserve_price=reserve_price,
                license=license, policy=policy,
            ),
            label=f"register:{relation.name}",
        )

    def update_dataset(
        self,
        relation: Relation,
        seller: str,
        *,
        reserve_price: float = 0.0,
        license: License | None = None,
        policy: ContextualIntegrityPolicy | None = None,
    ) -> WriteTicket:
        return self.submit(
            lambda: self.market.update_dataset(
                relation, seller, reserve_price=reserve_price,
                license=license, policy=policy,
            ),
            label=f"update:{relation.name}",
        )

    def retire_dataset(self, dataset: str) -> WriteTicket:
        return self.submit(
            lambda: self.market.retire_dataset(dataset),
            label=f"retire:{dataset}",
        )

    def register_participant(
        self, name: str, funding: float = 0.0
    ) -> WriteTicket:
        return self.submit(
            lambda: self.market.register_participant(name, funding=funding),
            label=f"participant:{name}",
        )

    def submit_wtp(self, wtp) -> WriteTicket:
        return self.submit(
            lambda: self.market.submit_wtp(wtp),
            label=f"wtp:{wtp.buyer}",
        )

    def run_round(self, context: str = "*") -> WriteTicket:
        """Clear the market (a mutation: data moves, money moves)."""
        return self.submit(
            lambda: self.market.run_round(context=context), label="round"
        )

    # -- snapshot reads ----------------------------------------------------
    def _count_read(self) -> None:
        with self._counter_lock:
            self._reads += 1

    def search(self, attributes, **kwargs):
        self._count_read()
        with self._lock.read():
            return self.market.search(attributes, **kwargs)

    def plan(self, attributes, **kwargs):
        self._count_read()
        with self._lock.read():
            return self.market.plan(attributes, **kwargs)

    @contextmanager
    def pinned(self):
        """Pin a snapshot for a block: every read inside answers ``as_of``
        the same graph version (writers wait until the block exits).
        Materialize results *after* the block — trees are immutable, so
        collection outside the lock is race-free by construction."""
        self._count_read()
        with self._lock.read():
            yield PinnedView(self.market, self.market.graph_version)

    # -- durable reads (store-backed markets only) -------------------------
    def _store(self):
        store = self.market.store
        if store is None:
            raise ServiceError(
                "this market has no durable store; construct it with "
                "DataMarket(store=...)"
            )
        return store

    def list_datasets(
        self,
        limit: int = 50,
        cursor: str | None = None,
        sort: str = "registered",
    ):
        """Keyset-cursor dataset listing straight from the store (``sort``:
        see :data:`repro.platform.store.LIST_SORT_KEYS`)."""
        self._count_read()
        return self._store().list_datasets(
            limit=limit, cursor=cursor, sort=sort
        )

    def search_text(self, query: str, limit: int = 10):
        """Full-text dataset search straight from the store."""
        self._count_read()
        return self._store().search_datasets(query, limit=limit)

    # -- lifecycle ---------------------------------------------------------
    def flush(self, timeout: float | None = 60.0) -> None:
        """Barrier: block until every previously enqueued write applied."""
        self.submit(lambda: None, label="flush").result(timeout)

    def status(self) -> dict:
        return {
            "pending": self._queue.qsize(),
            "applied": self._applied,
            "failed": self._failed,
            "graph_version": self.market.graph_version,
            "closed": self._closed,
        }

    def stats(self) -> dict:
        """Observability snapshot (the gateway's ``GET /stats`` source):
        ticket-queue depth, whether the writer is applying a mutation right
        now, the committed graph version, and cumulative read/write
        counters.  Counters are monotonic over the service's lifetime."""
        with self._counter_lock:
            applied, failed, reads = self._applied, self._failed, self._reads
        return {
            "queue_depth": self._queue.qsize(),
            "writer_busy": self._busy,
            "graph_version": self.market.graph_version,
            "reads": reads,
            "writes_applied": applied,
            "writes_failed": failed,
            "closed": self._closed,
        }

    def close(self, timeout: float | None = 60.0) -> None:
        """Drain the queue, stop the worker, and persist the plan cache
        (store-backed markets) so a restart starts warm.  Idempotent."""
        if self._closed:
            return
        self.flush(timeout)
        self._closed = True
        self._queue.put(_STOP)
        self._worker.join(timeout)
        if self.market.store is not None:
            self.market.persist_plan_cache()

    def __enter__(self) -> "MarketService":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
