"""Mashup plans and the mashup builder orchestrator."""

from .builder import GapReport, MashupBuilder
from .plan import JoinStep, Mashup, MashupPlan, TransformStep, qualified

__all__ = [
    "MashupBuilder",
    "GapReport",
    "Mashup",
    "MashupPlan",
    "JoinStep",
    "TransformStep",
    "qualified",
]
