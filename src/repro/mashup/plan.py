"""Re-export of mashup plan types (implementation lives in integration).

``JoinStep`` carries multi-column (composite-key) join predicates via
``extra_on``/``pairs``; see :mod:`repro.integration.plan`.
"""

from ..integration.plan import (  # noqa: F401
    JoinStep,
    Mashup,
    MashupPlan,
    TransformStep,
    qualified,
)

__all__ = ["JoinStep", "Mashup", "MashupPlan", "TransformStep", "qualified"]
