"""Re-export of mashup plan types (implementation lives in integration)."""

from ..integration.plan import (  # noqa: F401
    JoinStep,
    Mashup,
    MashupPlan,
    TransformStep,
    qualified,
)

__all__ = ["JoinStep", "Mashup", "MashupPlan", "TransformStep", "qualified"]
