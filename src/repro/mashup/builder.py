"""The Mashup Builder: discovery + integration + fusion, orchestrated.

This is the top box of Fig. 2 / the whole of Fig. 3: the arbiter hands it
datasets from sellers and a request derived from a buyer's WTP-function; it
returns ranked, materialized mashups with transparent plans, and can fuse
alternative mashups into a contrast view when the buyer asks for one.

It also reports what it *could not* do — the missing attributes that drive
the negotiation rounds of Section 4.1 and the opportunistic-seller economy
of Section 7.1.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field

from ..discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from ..errors import ReproDeprecationWarning
from ..fusion import auto_signals, fuse
from ..integration import DoDEngine, MashupRequest, TransformHint
from ..relation import Relation
from .plan import Mashup


@dataclass
class GapReport:
    """Attributes the corpus cannot currently supply, per request."""

    attributes: tuple[str, ...]
    #: how often each attribute was requested but unserved (demand signal)
    demand: dict[str, int] = field(default_factory=dict)


class MashupBuilder:
    """Facade over metadata engine, index builder, discovery and DoD."""

    def __init__(
        self, num_perm: int = 64, min_overlap: float = 0.5,
        incremental: bool = True, exhaustive: bool = False,
        beam_width: int | None = None, plan_cache: bool = True,
        plan_cache_size: int = 128, exec_engine: str = "columnar",
        cost_model: bool = True, scheme: str = "classic",
    ):
        self.metadata = MetadataEngine(num_perm=num_perm, scheme=scheme)
        self.index = IndexBuilder(
            self.metadata, min_overlap=min_overlap, incremental=incremental
        )
        self.discovery = DiscoveryEngine(self.metadata, self.index)
        self.dod = DoDEngine(
            self.metadata, self.index, self.discovery,
            exhaustive=exhaustive, beam_width=beam_width,
            plan_cache=plan_cache, plan_cache_size=plan_cache_size,
            exec_engine=exec_engine, cost_model=cost_model,
        )
        self._gap_demand: dict[str, int] = {}
        self._hints: list[TransformHint] = []

    # -- ingestion ---------------------------------------------------------
    def add_dataset(
        self, relation: Relation, owner: str = "unknown",
        credentials: str = "public",
    ) -> None:
        self.metadata.register(relation, owner=owner, credentials=credentials)

    def add_datasets(self, relations, owner: str = "unknown") -> None:
        warnings.warn(
            "MashupBuilder.add_datasets is deprecated: register datasets "
            "through repro.platform.DataMarket.register_dataset (or call "
            "add_dataset per relation)",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        for r in relations:
            self.add_dataset(r, owner=owner)

    def remove_dataset(self, name: str) -> None:
        """Withdraw a dataset; discovery indexes prune it in place."""
        self.metadata.remove(name)

    def close(self) -> None:
        """Detach index/search/plan-cache listeners from the metadata
        engine so a discarded builder does not leak into long-running
        simulations."""
        self.index.detach()
        self.discovery.detach()
        self.dod.detach()

    @property
    def datasets(self) -> list[str]:
        return self.metadata.datasets

    # -- negotiation support --------------------------------------------------
    def add_hint(self, hint: TransformHint) -> None:
        """Record mapping info volunteered by a seller (negotiation round)."""
        self._hints.append(hint)

    def gap_report(self) -> GapReport:
        """Demand signal: attributes requested but never supplied."""
        attrs = tuple(sorted(self._gap_demand))
        return GapReport(attributes=attrs, demand=dict(self._gap_demand))

    # -- building ----------------------------------------------------------------
    def build(self, request: MashupRequest) -> list[Mashup]:
        """Produce ranked mashups; standing hints are merged in."""
        merged = MashupRequest(
            attributes=request.attributes,
            key=request.key,
            examples=request.examples,
            hints=list(request.hints) + self._hints,
            max_results=request.max_results,
            min_match_score=request.min_match_score,
        )
        mashups = self.dod.build_mashups(merged)
        for m in mashups[:1]:
            for attr in m.missing:
                self._gap_demand[attr] = self._gap_demand.get(attr, 0) + 1
        if not mashups:
            for attr in request.attributes:
                self._gap_demand[attr] = self._gap_demand.get(attr, 0) + 1
        return mashups

    def build_fused(
        self, request: MashupRequest, key: str
    ) -> Relation | None:
        """Fuse all alternative mashups into one contrast relation.

        For buyers who "want to have access to all available signals to make
        up their own minds" (Section 5.3): every alternative mashup becomes
        a source; identically named output attributes become fused signals.
        """
        mashups = self.build(request)
        if not mashups:
            return None
        if len(mashups) == 1:
            return mashups[0].relation
        alternatives = [
            m.relation.renamed(f"alt_{i}")
            for i, m in enumerate(mashups)
        ]
        signals = auto_signals(alternatives, key)
        return fuse(alternatives, key, signals)
