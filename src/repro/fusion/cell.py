"""Multi-valued cells for data fusion.

"The data fusion operators we envision produce relations that break the
first normal form, that is, each cell value may be multi-valued, with each
value coming from a differing source" (Section 1).  :class:`FusedValue` is
that cell: an ordered bundle of (source, value) claims that remembers where
every signal came from, so buyers "can make up their own minds".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..errors import FusionError


@dataclass(frozen=True)
class FusedValue:
    """A non-1NF cell: one claim per contributing source."""

    claims: tuple[tuple[str, object], ...]

    def __post_init__(self):
        if not self.claims:
            raise FusionError("a fused value needs at least one claim")

    @classmethod
    def of(cls, claims: Iterable[tuple[str, object]]) -> "FusedValue":
        return cls(tuple(claims))

    # -- inspection --------------------------------------------------------
    @property
    def sources(self) -> tuple[str, ...]:
        return tuple(s for s, _v in self.claims)

    @property
    def values(self) -> tuple:
        return tuple(v for _s, v in self.claims)

    def value_from(self, source: str):
        for s, v in self.claims:
            if s == source:
                return v
        raise FusionError(f"no claim from source {source!r}")

    @property
    def is_conflicting(self) -> bool:
        distinct = {repr(v) for _s, v in self.claims if v is not None}
        return len(distinct) > 1

    # -- resolution --------------------------------------------------------
    def majority(self) -> object:
        """Most frequent non-null value (ties broken by repr order)."""
        counts: dict[str, tuple[int, object]] = {}
        for _s, v in self.claims:
            if v is None:
                continue
            key = repr(v)
            n, _ = counts.get(key, (0, v))
            counts[key] = (n + 1, v)
        if not counts:
            return None
        return max(counts.items(), key=lambda kv: (kv[1][0], kv[0]))[1][1]

    def weighted(self, weights: dict[str, float]) -> object:
        """Value with the highest total source weight (default weight 1)."""
        totals: dict[str, tuple[float, object]] = {}
        for s, v in self.claims:
            if v is None:
                continue
            key = repr(v)
            w, _ = totals.get(key, (0.0, v))
            totals[key] = (w + weights.get(s, 1.0), v)
        if not totals:
            return None
        return max(totals.items(), key=lambda kv: (kv[1][0], kv[0]))[1][1]

    def first(self) -> object:
        for _s, v in self.claims:
            if v is not None:
                return v
        return None

    def mean(self) -> float | None:
        nums = [
            float(v) for _s, v in self.claims
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if not nums:
            return None
        return sum(nums) / len(nums)

    def spread(self) -> float | None:
        """Max - min over numeric claims (a simple conflict magnitude)."""
        nums = [
            float(v) for _s, v in self.claims
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if len(nums) < 2:
            return None
        return max(nums) - min(nums)

    def __repr__(self) -> str:
        inner = ", ".join(f"{s}={v!r}" for s, v in self.claims)
        return f"Fused({inner})"
