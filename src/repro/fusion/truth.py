"""Truth discovery over conflicting sources.

Section 8.3 connects fusion to truth discovery: "the process of identifying
the real value for a specific variable".  This module implements the classic
iterative weighted-voting scheme (TruthFinder-style fixed point): source
trustworthiness and claim confidence are estimated jointly —

* a claim's confidence is the normalized sum of the weights of the sources
  asserting it;
* a source's weight is the mean confidence of the claims it asserts.

The fixed point rewards sources that agree with the (weighted) consensus,
which beats unweighted majority vote whenever source reliability is skewed
(benchmark E11 measures exactly that).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from ..errors import FusionError
from ..relation import Relation
from .cell import FusedValue


@dataclass
class TruthDiscoveryResult:
    """Estimated truths plus per-source reliability."""

    truths: dict[object, object]
    source_weights: dict[str, float]
    iterations: int

    def accuracy_against(self, truth: Mapping[object, object]) -> float:
        """Fraction of entities resolved to the known ground truth."""
        if not self.truths:
            return 0.0
        right = sum(
            1 for k, v in self.truths.items() if truth.get(k) == v
        )
        return right / len(self.truths)


def discover_truth(
    sources: Sequence[Relation],
    key: str = "entity_id",
    claim: str = "claim",
    max_iterations: int = 25,
    prior_weight: float = 0.8,
    tolerance: float = 1e-6,
) -> TruthDiscoveryResult:
    """Run iterative truth discovery over (key, claim) source relations."""
    if not sources:
        raise FusionError("truth discovery needs at least one source")
    if max_iterations < 1:
        raise FusionError("max_iterations must be >= 1")
    claims: dict[object, list[tuple[str, object]]] = {}
    for src in sources:
        kpos = src.schema.position(key)
        cpos = src.schema.position(claim)
        for row in src.rows:
            if row[kpos] is None or row[cpos] is None:
                continue
            claims.setdefault(row[kpos], []).append((src.name, row[cpos]))
    if not claims:
        raise FusionError("sources contain no claims")

    weights = {src.name: prior_weight for src in sources}
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        # E-step: claim confidences per entity
        confidence: dict[object, dict[str, float]] = {}
        value_of: dict[tuple[object, str], object] = {}
        for entity, entity_claims in claims.items():
            totals: dict[str, float] = {}
            denom = 0.0
            for source, value in entity_claims:
                v_key = repr(value)
                value_of[(entity, v_key)] = value
                totals[v_key] = totals.get(v_key, 0.0) + weights[source]
                denom += weights[source]
            confidence[entity] = {
                v: w / denom for v, w in totals.items()
            } if denom else {}
        # M-step: source weights from the confidence of their claims
        new_weights: dict[str, float] = {}
        counts: dict[str, int] = {}
        for entity, entity_claims in claims.items():
            for source, value in entity_claims:
                c = confidence[entity].get(repr(value), 0.0)
                new_weights[source] = new_weights.get(source, 0.0) + c
                counts[source] = counts.get(source, 0) + 1
        for source in weights:
            if counts.get(source):
                new_weights[source] = new_weights[source] / counts[source]
            else:
                new_weights[source] = weights[source]
        delta = max(
            abs(new_weights[s] - weights[s]) for s in weights
        )
        weights = new_weights
        if delta < tolerance:
            break

    truths = {}
    for entity in claims:
        best = max(
            confidence[entity].items(), key=lambda kv: (kv[1], kv[0])
        )
        truths[entity] = value_of[(entity, best[0])]
    return TruthDiscoveryResult(truths, weights, iterations)


def resolve_fused_with_truth_discovery(
    fused: Relation, key_column: str, signal: str, **kwargs
) -> TruthDiscoveryResult:
    """Run truth discovery directly on one FusedValue column."""
    kpos = fused.schema.position(key_column)
    spos = fused.schema.position(signal)
    per_source: dict[str, list[tuple[object, object]]] = {}
    for row in fused.rows:
        cell = row[spos]
        if not isinstance(cell, FusedValue):
            continue
        for source, value in cell.claims:
            per_source.setdefault(source, []).append((row[kpos], value))
    if not per_source:
        raise FusionError(f"column {signal!r} has no fused cells")
    sources = [
        Relation(
            name,
            [(key_column, "any"), ("claim", "any")],
            rows,
            validate=False,
        )
        for name, rows in per_source.items()
    ]
    return discover_truth(sources, key=key_column, claim="claim", **kwargs)
