"""Data fusion: non-1NF cells, fusion operators, truth discovery."""

from .cell import FusedValue
from .operators import STRATEGIES, auto_signals, conflict_report, fuse, resolve
from .truth import (
    TruthDiscoveryResult,
    discover_truth,
    resolve_fused_with_truth_discovery,
)

__all__ = [
    "FusedValue",
    "fuse",
    "resolve",
    "auto_signals",
    "conflict_report",
    "STRATEGIES",
    "discover_truth",
    "TruthDiscoveryResult",
    "resolve_fused_with_truth_discovery",
]
