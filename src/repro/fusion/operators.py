"""Fusion operators: align conflicting sources into non-1NF relations.

Section 5.3: "A data fusion operator can align the differing values into a
mashup that the buyer can explore manually.  A specific fusion operator may
select one value based on majority voting, for example, while other fusion
operators will implement other strategies."

:func:`fuse` aligns several relations on a key and produces one
:class:`~repro.fusion.cell.FusedValue` cell per requested signal;
:func:`resolve` then collapses those cells with a chosen strategy (or keeps
them raw for buyers who want every signal).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from ..errors import FusionError
from ..relation import Column, Relation, Schema, times
from .cell import FusedValue

#: resolution strategies accepted by :func:`resolve`
STRATEGIES = ("majority", "first", "mean", "weighted", "keep")


def fuse(
    relations: Sequence[Relation],
    key: str,
    signals: Mapping[str, Sequence[tuple[str, str]]],
) -> Relation:
    """Align ``relations`` on ``key`` and bundle each signal's claims.

    ``signals`` maps each output column to the (dataset, column) pairs that
    claim it.  The output has one row per key value observed in *any* input
    (full outer alignment); each signal cell is a :class:`FusedValue` over
    the sources that cover that key.  Row provenance is the product of the
    contributing rows — every source that contributed a claim is jointly
    responsible for the fused row.
    """
    if not relations:
        raise FusionError("fuse needs at least one input relation")
    by_name = {r.name: r for r in relations}
    for out_col, pairs in signals.items():
        for ds, col in pairs:
            if ds not in by_name:
                raise FusionError(f"signal {out_col!r}: unknown dataset {ds!r}")
            if col not in by_name[ds].schema:
                raise FusionError(
                    f"signal {out_col!r}: dataset {ds!r} has no column {col!r}"
                )
    for r in relations:
        if key not in r.schema:
            raise FusionError(f"dataset {r.name!r} has no key column {key!r}")

    # index each relation by key (first row per key wins within a source)
    indexed: dict[str, dict[object, int]] = {}
    for r in relations:
        pos = r.schema.position(key)
        idx: dict[object, int] = {}
        for i, row in enumerate(r.rows):
            if row[pos] is not None and row[pos] not in idx:
                idx[row[pos]] = i
        indexed[r.name] = idx

    all_keys: list[object] = []
    seen: set = set()
    for r in relations:
        for k in indexed[r.name]:
            if k not in seen:
                seen.add(k)
                all_keys.append(k)

    out_cols = [Column(key, "any", "entity")] + [
        Column(name, "any") for name in signals
    ]
    rows, provs = [], []
    for k in all_keys:
        row: list = [k]
        contributing: list = []
        for out_col, pairs in signals.items():
            claims = []
            for ds, col in pairs:
                rel = by_name[ds]
                i = indexed[ds].get(k)
                if i is None:
                    continue
                value = rel.rows[i][rel.schema.position(col)]
                claims.append((ds, value))
                contributing.append(rel.provenance[i])
            row.append(FusedValue.of(claims) if claims else None)
        rows.append(tuple(row))
        # dedupe contributing provenance expressions while keeping order
        unique = list(dict.fromkeys(contributing))
        provs.append(times(*unique))
    return Relation(
        "fused", Schema(out_cols), rows, provenance=provs, validate=False
    )


def auto_signals(
    relations: Sequence[Relation], key: str
) -> dict[str, list[tuple[str, str]]]:
    """Group identically named non-key columns across relations."""
    signals: dict[str, list[tuple[str, str]]] = {}
    for r in relations:
        for col in r.columns:
            if col == key:
                continue
            signals.setdefault(col, []).append((r.name, col))
    return signals


def resolve(
    fused: Relation,
    strategy: str = "majority",
    weights: Mapping[str, float] | None = None,
) -> Relation:
    """Collapse FusedValue cells into scalars with the chosen strategy."""
    if strategy not in STRATEGIES:
        raise FusionError(
            f"unknown strategy {strategy!r}; expected one of {STRATEGIES}"
        )
    if strategy == "keep":
        return fused
    if strategy == "weighted" and weights is None:
        raise FusionError("strategy 'weighted' requires source weights")

    def collapse(value):
        if not isinstance(value, FusedValue):
            return value
        if strategy == "majority":
            return value.majority()
        if strategy == "first":
            return value.first()
        if strategy == "mean":
            return value.mean()
        return value.weighted(dict(weights))  # weighted

    rows = [tuple(collapse(v) for v in row) for row in fused.rows]
    return Relation(
        fused.name + f"_{strategy}",
        Schema([Column(c.name, "any", c.semantic) for c in fused.schema.columns]),
        rows,
        provenance=fused.provenance,
        validate=False,
    )


def conflict_report(fused: Relation) -> Relation:
    """Per-signal conflict statistics (how much do sources disagree?)."""
    rows = []
    for col in fused.columns:
        cells = [
            v for v in fused.column(col) if isinstance(v, FusedValue)
        ]
        if not cells:
            continue
        conflicting = sum(1 for c in cells if c.is_conflicting)
        spreads = [s for c in cells if (s := c.spread()) is not None]
        rows.append(
            (
                col,
                len(cells),
                conflicting,
                round(conflicting / len(cells), 6),
                round(sum(spreads) / len(spreads), 6) if spreads else None,
            )
        )
    return Relation(
        "conflicts",
        [("signal", "str"), ("cells", "int"), ("conflicting", "int"),
         ("conflict_rate", "float"), ("mean_spread", "float")],
        rows,
    )
