"""Willing-to-pay functions (Section 3.2.2).

A WTP-function bundles the four components the paper lists:

1. a *task package* (see :mod:`repro.wtp.tasks`);
2. a *price curve* mapping degree of satisfaction to money — "the buyer will
   not pay any money for classifiers that do not achieve at least 80%
   accuracy, and after reaching 80% accuracy, the buyer will pay $100";
3. *packaged data* the buyer already owns (carried by tasks that need it);
4. *intrinsic dataset properties* — declarative constraints such as maximum
   staleness or null fraction that gate which mashups are acceptable.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..discovery import MetadataEngine
from ..errors import MarketError
from ..relation import Relation
from .tasks import TaskEvaluationError


@dataclass(frozen=True)
class PriceCurve:
    """A step function from satisfaction in [0, 1] to a price.

    ``steps`` is a sorted sequence of (threshold, price): the buyer pays the
    price of the highest threshold reached, and 0 below the first one.
    """

    steps: tuple[tuple[float, float], ...]

    def __post_init__(self):
        if not self.steps:
            raise MarketError("price curve needs at least one step")
        thresholds = [t for t, _p in self.steps]
        if sorted(thresholds) != thresholds or len(set(thresholds)) != len(
            thresholds
        ):
            raise MarketError("price curve thresholds must strictly increase")
        prices = [p for _t, p in self.steps]
        if any(p < 0 for p in prices):
            raise MarketError("prices must be non-negative")
        if sorted(prices) != prices:
            raise MarketError("prices must be non-decreasing in satisfaction")

    @classmethod
    def of(cls, *steps: tuple[float, float]) -> "PriceCurve":
        return cls(tuple(steps))

    @classmethod
    def single(cls, threshold: float, price: float) -> "PriceCurve":
        return cls(((threshold, price),))

    def price_for(self, satisfaction: float) -> float:
        if satisfaction != satisfaction:  # NaN reaches no threshold
            return 0.0
        thresholds = [t for t, _p in self.steps]
        i = bisect_right(thresholds, satisfaction)
        if i == 0:
            return 0.0
        return self.steps[i - 1][1]

    def price_for_batch(self, satisfactions) -> np.ndarray:
        """Vectorized :meth:`price_for` over a satisfaction vector.

        Matches the scalar path pointwise, including NaN satisfactions
        pricing at 0.0 (a task output the market cannot act on must never
        command the curve's top price)."""
        s = np.asarray(satisfactions, dtype=float)
        thresholds = np.array([t for t, _p in self.steps])
        prices = np.array([p for _t, p in self.steps])
        idx = np.searchsorted(thresholds, s, side="right")
        out = np.where(idx > 0, prices[np.maximum(idx - 1, 0)], 0.0)
        return np.where(np.isnan(s), 0.0, out)

    @property
    def max_price(self) -> float:
        return self.steps[-1][1]

    @property
    def min_threshold(self) -> float:
        return self.steps[0][0]


@dataclass(frozen=True)
class IntrinsicRequirements:
    """Declarative constraints on acceptable source datasets.

    These reproduce Section 3.2.2.1's list: expiry/freshness (here: how many
    versions old a dataset may be), nulls (quality), authorship, provenance.
    Intrinsic properties only matter because a buyer demands them (Section
    2) — unconstrained buyers simply leave this at the default.
    """

    max_null_fraction: float | None = None
    min_rows: int | None = None
    allowed_owners: tuple[str, ...] | None = None
    #: require that source datasets are at most this many versions behind
    #: the newest snapshot (a logical-time freshness proxy)
    max_version_lag: int | None = None
    require_provenance: bool = False

    def violations(
        self,
        mashup: Relation,
        sources: Sequence[str],
        metadata: MetadataEngine | None = None,
    ) -> list[str]:
        """All constraint violations for a mashup built from ``sources``."""
        problems: list[str] = []
        if self.min_rows is not None and len(mashup) < self.min_rows:
            problems.append(
                f"mashup has {len(mashup)} rows; buyer requires "
                f">= {self.min_rows}"
            )
        if self.max_null_fraction is not None:
            total = len(mashup) * max(1, len(mashup.schema))
            nulls = sum(
                1 for row in mashup.rows for v in row if v is None
            )
            fraction = nulls / total if total else 0.0
            if fraction > self.max_null_fraction:
                problems.append(
                    f"null fraction {fraction:.3f} exceeds "
                    f"{self.max_null_fraction:.3f}"
                )
        if self.require_provenance and any(
            not p.tokens() for p in mashup.provenance
        ):
            problems.append("mashup rows lack provenance annotations")
        if metadata is not None:
            for source in sources:
                if source not in metadata:
                    continue
                snapshot = metadata.snapshot(source)
                if (
                    self.allowed_owners is not None
                    and not set(snapshot.owners) & set(self.allowed_owners)
                ):
                    problems.append(
                        f"dataset {source!r} owned by {snapshot.owners}, "
                        f"not in allowed {self.allowed_owners}"
                    )
                if self.max_version_lag is not None:
                    # O(1) on the engine; the old per-source scan over every
                    # registered dataset stalled large corpora
                    newest = metadata.newest_logical_time
                    lag = newest - snapshot.logical_time
                    if lag > self.max_version_lag:
                        problems.append(
                            f"dataset {source!r} is stale (lag {lag} > "
                            f"{self.max_version_lag})"
                        )
        return problems

    def satisfied_by(
        self,
        mashup: Relation,
        sources: Sequence[str],
        metadata: MetadataEngine | None = None,
    ) -> bool:
        return not self.violations(mashup, sources, metadata)


@dataclass(frozen=True)
class EvaluationOutcome:
    """One candidate mashup's result from a batched WTP evaluation.

    Exactly one of three shapes:

    * ``evaluated`` — the task ran: ``satisfaction`` and ``price`` are set
      (possibly insane values the arbiter still has to sanity-check);
    * task could not run on this mashup (:class:`TaskEvaluationError`) —
      all fields ``None``, mirroring :meth:`WTPFunction.try_evaluate`;
    * ``error`` — the task package *crashed*; the exception is carried so
      the arbiter can audit it without losing the rest of the batch.
    """

    satisfaction: float | None = None
    price: float | None = None
    error: BaseException | None = None

    @property
    def evaluated(self) -> bool:
        return self.error is None and self.satisfaction is not None


@dataclass
class WTPFunction:
    """The buyer's complete offer: task + price curve + constraints."""

    buyer: str
    task: object  # anything with .evaluate(Relation) and .required_attributes
    curve: PriceCurve
    intrinsic: IntrinsicRequirements = field(
        default_factory=IntrinsicRequirements
    )
    #: "upfront" buyers know their valuation; "ex_post" buyers pay after use
    elicitation: str = "upfront"
    key: str | None = None
    examples: Relation | None = None

    def __post_init__(self):
        if self.elicitation not in ("upfront", "ex_post"):
            raise MarketError(
                f"unknown elicitation mode {self.elicitation!r}"
            )

    @property
    def attributes(self) -> list[str]:
        return list(self.task.required_attributes)

    def evaluate(self, mashup: Relation) -> tuple[float, float]:
        """(satisfaction, willing-to-pay price) for one candidate mashup."""
        satisfaction = self.task.evaluate(mashup)
        return satisfaction, self.curve.price_for(satisfaction)

    def try_evaluate(
        self, mashup: Relation
    ) -> tuple[float, float] | None:
        """Like :meth:`evaluate` but None when the task cannot run."""
        try:
            return self.evaluate(mashup)
        except TaskEvaluationError:
            return None

    def evaluate_batch(
        self, mashups: Sequence[Relation]
    ) -> list[EvaluationOutcome]:
        """Evaluate every candidate mashup in one grouped call.

        When the task package exposes ``evaluate_batch`` (our shipped tasks
        do, via :class:`~repro.wtp.tasks.BatchEvaluationMixin`), the task
        scores all candidates in one invocation and the price curve is
        applied as a single vectorized :meth:`PriceCurve.price_for_batch`.
        Otherwise candidates are evaluated one by one, with per-candidate
        containment identical to :meth:`try_evaluate` plus crash capture —
        a hostile package can sink its own candidates but never the batch.
        """
        mashups = list(mashups)
        if not mashups:
            return []
        task_batch = getattr(self.task, "evaluate_batch", None)
        if task_batch is not None:
            raw = list(task_batch(mashups))
            if len(raw) != len(mashups):
                raise MarketError(
                    f"task evaluate_batch returned {len(raw)} results "
                    f"for {len(mashups)} mashups"
                )
            out: list[EvaluationOutcome | None] = []
            slots: list[int] = []
            sats: list[float] = []
            for i, r in enumerate(raw):
                if isinstance(r, TaskEvaluationError):
                    out.append(EvaluationOutcome())  # task cannot run here
                elif isinstance(r, BaseException):
                    out.append(EvaluationOutcome(error=r))
                elif isinstance(r, float):  # bool is not a float subclass
                    out.append(None)  # filled after batched pricing
                    slots.append(i)
                    sats.append(r)
                else:
                    # mirror the scalar path for anything non-float the
                    # task emitted (bool, str, int, ...): price it through
                    # the scalar curve — a crash there is contained per
                    # candidate, and the raw satisfaction survives for the
                    # arbiter's sanity check to reject
                    try:
                        out.append(
                            EvaluationOutcome(
                                satisfaction=r,
                                price=self.curve.price_for(r),
                            )
                        )
                    except Exception as exc:  # noqa: BLE001 - sandbox boundary
                        out.append(EvaluationOutcome(error=exc))
            if slots:
                prices = self.curve.price_for_batch(sats)
                for i, s, p in zip(slots, sats, prices):
                    out[i] = EvaluationOutcome(
                        satisfaction=s, price=float(p)
                    )
            return out
        results: list[EvaluationOutcome] = []
        for mashup in mashups:
            try:
                satisfaction, price = self.evaluate(mashup)
                results.append(
                    EvaluationOutcome(satisfaction=satisfaction, price=price)
                )
            except TaskEvaluationError:
                results.append(EvaluationOutcome())
            except Exception as exc:  # noqa: BLE001 - sandbox boundary
                results.append(EvaluationOutcome(error=exc))
        return results
