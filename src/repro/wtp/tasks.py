"""Data tasks shipped inside WTP functions.

Section 3.2.2.1: the WTP-function contains "a package that includes the data
task that buyers want to solve — for example, the code to train an ML
classifier.  The package is sent to the arbiter, so the arbiter can evaluate
different datasets on the data task and measure the degree of satisfaction."

Each task implements ``evaluate(relation) -> satisfaction in [0, 1]`` and
declares the attributes it needs, so the arbiter can turn the task into a
:class:`~repro.integration.dod.MashupRequest`.  Different tasks use
different satisfaction metrics (the paper's "task multiplicity"):
classification accuracy, query completeness, aggregate accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..errors import MarketError
from ..ml import LogisticRegression, accuracy, train_test_split
from ..relation import Relation


class TaskEvaluationError(MarketError):
    """The task could not be evaluated on the given relation."""


class BatchEvaluationMixin:
    """Batched task evaluation with per-candidate containment.

    ``evaluate_batch(relations)`` scores a whole list of candidate mashups
    in one call — the arbiter's WTP Evaluator groups all candidates of a
    buyer into a single invocation instead of round-tripping one relation
    at a time.  Each slot in the returned list is the task's satisfaction
    value exactly as ``evaluate`` returned it (so downstream sanity checks
    see what the task really produced), or the caught exception object:
    a :class:`TaskEvaluationError` instance means the task cannot run on
    that mashup; any other exception is a contained crash.  One bad
    candidate never sinks the batch, and a buggy ``evaluate`` returning
    ``None`` flows through as a satisfaction value — pricing it then
    fails, so it surfaces as a contained, audited *crash* downstream
    rather than masquerading as "cannot run".

    Subclasses with shareable per-batch setup can override this; the
    default simply walks candidates under containment.
    """

    def evaluate_batch(self, relations: Sequence[Relation]) -> list:
        out: list = []
        for relation in relations:
            try:
                out.append(self.evaluate(relation))
            except Exception as exc:  # noqa: BLE001 - sandbox boundary
                out.append(exc)
        return out


@dataclass
class ClassificationTask(BatchEvaluationMixin):
    """Train a classifier on the mashup joined with the buyer's labels.

    The buyer owns ``labels`` (Section 3.2.2.1's "packaged data that buyers
    may already own and do not want to pay money for"); the mashup must
    supply ``features``.  Satisfaction is held-out accuracy.
    """

    labels: Relation
    features: Sequence[str]
    key: str = "entity_id"
    label_column: str = "label"
    model_factory: Callable = LogisticRegression
    test_fraction: float = 0.3
    seed: int = 0
    min_rows: int = 10

    @property
    def required_attributes(self) -> list[str]:
        return list(self.features)

    def evaluate(self, relation: Relation) -> float:
        available = [f for f in self.features if f in relation.schema]
        if not available:
            raise TaskEvaluationError(
                "mashup supplies none of the requested features"
            )
        if self.key not in relation.schema:
            raise TaskEvaluationError(f"mashup lacks key column {self.key!r}")
        joined = self.labels.join(relation, on=[(self.key, self.key)])
        rows = []
        for rec in joined.to_dicts():
            vals = [rec.get(f) for f in available]
            label = rec.get(self.label_column)
            if label is None or any(
                v is None or not isinstance(v, (int, float)) for v in vals
            ):
                continue
            rows.append(([float(v) for v in vals], int(label)))
        if len(rows) < self.min_rows:
            raise TaskEvaluationError(
                f"only {len(rows)} usable training rows (need {self.min_rows})"
            )
        x = np.array([r[0] for r in rows], dtype=float)
        y = np.array([r[1] for r in rows], dtype=int)
        if len(set(y.tolist())) < 2:
            raise TaskEvaluationError("labels are degenerate (single class)")
        x_tr, x_te, y_tr, y_te = train_test_split(
            x, y, test_fraction=self.test_fraction, seed=self.seed
        )
        model = self.model_factory()
        model.fit(x_tr, y_tr)
        return accuracy(y_te, model.predict(x_te))


@dataclass
class QueryCompletenessTask(BatchEvaluationMixin):
    """Satisfaction = completeness of requested entities/attributes.

    An approximate-query-processing-style metric (Section 3.2.2.1 cites
    "notions of completeness borrowed from the approximate query processing
    literature"): the fraction of wanted key values present in the mashup,
    discounted by per-row attribute completeness.
    """

    wanted_keys: Sequence
    attributes: Sequence[str]
    key: str = "entity_id"

    @property
    def required_attributes(self) -> list[str]:
        return list(self.attributes)

    def evaluate(self, relation: Relation) -> float:
        if self.key not in relation.schema:
            raise TaskEvaluationError(f"mashup lacks key column {self.key!r}")
        wanted = set(self.wanted_keys)
        if not wanted:
            raise TaskEvaluationError("no wanted keys specified")
        present = [a for a in self.attributes if a in relation.schema]
        if not present:
            raise TaskEvaluationError("mashup supplies no requested attribute")
        key_pos = relation.schema.position(self.key)
        attr_pos = [relation.schema.position(a) for a in present]
        best_per_key: dict[object, float] = {}
        for row in relation.rows:
            k = row[key_pos]
            if k not in wanted:
                continue
            filled = sum(1 for p in attr_pos if row[p] is not None)
            completeness = filled / len(self.attributes)
            best_per_key[k] = max(best_per_key.get(k, 0.0), completeness)
        return sum(best_per_key.values()) / len(wanted)


@dataclass
class AggregateAccuracyTask(BatchEvaluationMixin):
    """Satisfaction = 1 - relative error of an aggregate vs a reference.

    Models report-style buyers: "I need the mean of X; I'll pay in
    proportion to how close your data gets me to the truth I can verify."
    """

    attribute: str
    reference_value: float
    aggregate: str = "mean"  # mean | sum | count

    @property
    def required_attributes(self) -> list[str]:
        return [self.attribute]

    def evaluate(self, relation: Relation) -> float:
        if self.attribute not in relation.schema:
            raise TaskEvaluationError(
                f"mashup lacks attribute {self.attribute!r}"
            )
        values = [
            float(v) for v in relation.column(self.attribute)
            if isinstance(v, (int, float)) and not isinstance(v, bool)
        ]
        if not values:
            raise TaskEvaluationError("no numeric values to aggregate")
        if self.aggregate == "mean":
            got = sum(values) / len(values)
        elif self.aggregate == "sum":
            got = sum(values)
        elif self.aggregate == "count":
            got = float(len(values))
        else:
            raise TaskEvaluationError(
                f"unknown aggregate {self.aggregate!r}"
            )
        denom = max(abs(self.reference_value), 1e-12)
        return max(0.0, 1.0 - abs(got - self.reference_value) / denom)


@dataclass
class EmbeddingSimilarityTask(BatchEvaluationMixin):
    """Satisfaction = mean cosine similarity to reference embeddings.

    Section 4.5 targets markets for "embeddings and ML models": pre-trained
    vectors whose quality degrades under quantization/truncation.  The
    buyer owns trusted reference vectors for a few entities (``references``
    has the key plus the embedding columns); a candidate mashup's
    embeddings are scored by how closely they match on the shared
    entities — full-precision vectors score ~1.0, degraded versions less.
    """

    references: Relation
    embedding_columns: Sequence[str]
    key: str = "entity_id"
    min_rows: int = 5

    @property
    def required_attributes(self) -> list[str]:
        return list(self.embedding_columns)

    def evaluate(self, relation: Relation) -> float:
        if self.key not in relation.schema:
            raise TaskEvaluationError(f"mashup lacks key column {self.key!r}")
        missing = [
            c for c in self.embedding_columns if c not in relation.schema
        ]
        if missing:
            raise TaskEvaluationError(
                f"mashup lacks embedding columns {missing}"
            )
        joined = self.references.join(
            relation, on=[(self.key, self.key)], suffix="__cand"
        )
        sims = []
        for rec in joined.to_dicts():
            ref, cand = [], []
            for col in self.embedding_columns:
                r = rec.get(col)
                c = rec.get(col + "__cand")
                if r is None or c is None:
                    break
                ref.append(float(r))
                cand.append(float(c))
            else:
                sims.append(_cosine(np.array(ref), np.array(cand)))
        if len(sims) < self.min_rows:
            raise TaskEvaluationError(
                f"only {len(sims)} comparable embeddings "
                f"(need {self.min_rows})"
            )
        # cosine lives in [-1, 1]; map to [0, 1] satisfaction
        return float((np.mean(sims) + 1.0) / 2.0)


def _cosine(a: np.ndarray, b: np.ndarray) -> float:
    norm = np.linalg.norm(a) * np.linalg.norm(b)
    if norm == 0:
        return 0.0
    return float(np.dot(a, b) / norm)


@dataclass
class ExplorationTask(BatchEvaluationMixin):
    """A task whose value the buyer only learns *after* using the data.

    Section 3.2.2.2: "buyers want to engage in exploratory tasks with data
    without having a precisely defined question a priori... it is not
    possible for the buyer to describe the task they are trying to solve."
    Evaluating it upfront is a :class:`TaskEvaluationError`; markets must
    route these buyers through the ex-post mechanism instead.
    """

    attributes: Sequence[str] = field(default_factory=list)

    @property
    def required_attributes(self) -> list[str]:
        return list(self.attributes)

    def evaluate(self, relation: Relation) -> float:
        raise TaskEvaluationError(
            "exploratory task: satisfaction is only known ex post"
        )
