"""Willing-to-pay functions, price curves, and data tasks."""

from .tasks import (
    AggregateAccuracyTask,
    ClassificationTask,
    EmbeddingSimilarityTask,
    ExplorationTask,
    QueryCompletenessTask,
    TaskEvaluationError,
)
from .wtp import IntrinsicRequirements, PriceCurve, WTPFunction

__all__ = [
    "WTPFunction",
    "PriceCurve",
    "IntrinsicRequirements",
    "ClassificationTask",
    "QueryCompletenessTask",
    "AggregateAccuracyTask",
    "EmbeddingSimilarityTask",
    "ExplorationTask",
    "TaskEvaluationError",
]
