"""Willing-to-pay functions, price curves, and data tasks."""

from .tasks import (
    AggregateAccuracyTask,
    BatchEvaluationMixin,
    ClassificationTask,
    EmbeddingSimilarityTask,
    ExplorationTask,
    QueryCompletenessTask,
    TaskEvaluationError,
)
from .wtp import (
    EvaluationOutcome,
    IntrinsicRequirements,
    PriceCurve,
    WTPFunction,
)

__all__ = [
    "WTPFunction",
    "PriceCurve",
    "IntrinsicRequirements",
    "EvaluationOutcome",
    "BatchEvaluationMixin",
    "ClassificationTask",
    "QueryCompletenessTask",
    "AggregateAccuracyTask",
    "EmbeddingSimilarityTask",
    "ExplorationTask",
    "TaskEvaluationError",
]
