"""Arbitrage-free query/bundle pricing.

Section 8.2: "The problem is how to price relational queries on that dataset
in such a way that arbitrage opportunities (obtaining the same data through
a different and cheaper combination of queries) are not possible."  The
paper plans to "include these ideas as part of our design"; this module is
that inclusion.

Model (a practical instantiation of Koutris et al.'s query-based pricing):
sellers list *priced bundles* — named sets of atomic information units
(columns, partitions, views) with a price.  A buyer's query needs some set
of atoms.  The **arbitrage-free closure** prices a query at the cheapest
collection of listed bundles that covers it (a weighted set cover).  The
closure is monotone (more atoms never cost less) and subadditive (a union
never costs more than its parts) — together these eliminate arbitrage.

A *naive* pricer that charges every listed bundle its sticker price can be
arbitraged whenever some bundle is dominated by a cheaper cover; benchmark
E6 hunts for exactly those opportunities under both pricers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, Sequence

from ..errors import PricingError


@dataclass(frozen=True)
class PricedBundle:
    """A named set of atoms offered at a sticker price."""

    name: str
    atoms: FrozenSet[str]
    price: float

    def __post_init__(self):
        if not self.atoms:
            raise PricingError(f"bundle {self.name!r} has no atoms")
        if self.price < 0:
            raise PricingError(f"bundle {self.name!r} has a negative price")


def bundle(name: str, atoms: Iterable[str], price: float) -> PricedBundle:
    return PricedBundle(name, frozenset(atoms), price)


class ArbitrageFreePricer:
    """Prices any atom set at its cheapest cover by listed bundles."""

    def __init__(self, bundles: Sequence[PricedBundle]):
        if not bundles:
            raise PricingError("need at least one priced bundle")
        names = [b.name for b in bundles]
        if len(set(names)) != len(names):
            raise PricingError("duplicate bundle names")
        self.bundles = tuple(bundles)
        self.universe: FrozenSet[str] = frozenset().union(
            *(b.atoms for b in bundles)
        )

    def price(self, atoms: Iterable[str]) -> float:
        """Minimum-cost cover of ``atoms`` (exact DP over <= 20 atoms)."""
        cost, _cover = self.price_with_cover(atoms)
        return cost

    def price_with_cover(
        self, atoms: Iterable[str]
    ) -> tuple[float, list[PricedBundle]]:
        needed = frozenset(atoms)
        if not needed:
            return 0.0, []
        uncoverable = needed - self.universe
        if uncoverable:
            raise PricingError(
                f"atoms {sorted(uncoverable)} are not offered by any bundle"
            )
        order = sorted(needed)
        if len(order) > 20:
            raise PricingError(
                f"exact cover over {len(order)} atoms is too large "
                "(limit 20); partition the query"
            )
        index = {a: i for i, a in enumerate(order)}
        full = (1 << len(order)) - 1
        bundle_masks = []
        for b in self.bundles:
            mask = 0
            for a in b.atoms & needed:
                mask |= 1 << index[a]
            if mask:
                bundle_masks.append((mask, b))
        inf = float("inf")
        dp: list[float] = [inf] * (full + 1)
        choice: list[tuple[int, PricedBundle] | None] = [None] * (full + 1)
        dp[0] = 0.0
        for mask in range(full + 1):
            if dp[mask] == inf:
                continue
            for bmask, b in bundle_masks:
                nxt = mask | bmask
                if dp[mask] + b.price < dp[nxt]:
                    dp[nxt] = dp[mask] + b.price
                    choice[nxt] = (mask, b)
        if dp[full] == inf:
            raise PricingError("no combination of bundles covers the query")
        cover = []
        mask = full
        while mask:
            prev, b = choice[mask]  # type: ignore[misc]
            cover.append(b)
            mask = prev
        return dp[full], cover

    # -- arbitrage analysis -------------------------------------------------
    def arbitrage_opportunities(self) -> list[tuple[PricedBundle, float]]:
        """Listed bundles whose sticker price exceeds their cheapest cover
        (excluding themselves) — the money a smart buyer saves."""
        out = []
        for b in self.bundles:
            others = [x for x in self.bundles if x.name != b.name]
            if not others:
                continue
            try:
                alt_cost, _ = ArbitrageFreePricer(others).price_with_cover(
                    b.atoms
                )
            except PricingError:
                continue
            if alt_cost < b.price - 1e-12:
                out.append((b, alt_cost))
        return out

    def is_arbitrage_free_pricelist(self) -> bool:
        """True iff no sticker price can be undercut by a cover."""
        return not self.arbitrage_opportunities()

    def check_monotone_sample(
        self, atoms: Iterable[str]
    ) -> bool:
        """Sanity property: every subset of ``atoms`` costs <= the set."""
        needed = sorted(frozenset(atoms))
        total = self.price(needed)
        for i in range(len(needed)):
            subset = needed[:i] + needed[i + 1 :]
            if subset and self.price(subset) > total + 1e-9:
                return False
        return True


class NaivePricer:
    """Sticker-price seller: a query must match one listed bundle exactly or
    be bought as the cheapest single listed superset.  This is how "sellers
    choose a price for datasets" on today's marketplaces (Section 2) — and
    it is arbitrageable."""

    def __init__(self, bundles: Sequence[PricedBundle]):
        if not bundles:
            raise PricingError("need at least one priced bundle")
        self.bundles = tuple(bundles)

    def price(self, atoms: Iterable[str]) -> float:
        needed = frozenset(atoms)
        if not needed:
            return 0.0
        supersets = [b for b in self.bundles if needed <= b.atoms]
        if not supersets:
            raise PricingError(
                "no single listed bundle contains the query; "
                "the naive seller cannot serve it"
            )
        return min(b.price for b in supersets)


def exhaustive_arbitrage_search(
    pricer, universe: Sequence[str], max_atoms: int = 12
) -> list[tuple[frozenset, float, float]]:
    """Search all non-empty atom subsets for violations of subadditivity:
    a set priced higher than the sum of a 2-part partition.  Returns
    (atom_set, direct_price, cheaper_split_price) triples.
    """
    from itertools import combinations

    atoms = sorted(universe)
    if len(atoms) > max_atoms:
        raise PricingError("universe too large for exhaustive search")
    violations = []
    n = len(atoms)
    for mask in range(1, 1 << n):
        subset = frozenset(atoms[i] for i in range(n) if mask & (1 << i))
        try:
            direct = pricer.price(subset)
        except PricingError:
            continue
        # try all 2-partitions
        members = sorted(subset)
        best_split = None
        for k in range(1, len(members)):
            for left in combinations(members, k):
                left_set = frozenset(left)
                right_set = subset - left_set
                try:
                    split = pricer.price(left_set) + pricer.price(right_set)
                except PricingError:
                    continue
                if best_split is None or split < best_split:
                    best_split = split
        if best_split is not None and best_split < direct - 1e-9:
            violations.append((subset, direct, best_split))
    return violations
