"""Revenue-optimal posted prices and Myerson reserves.

The external-market design "extracts as much money from buyers as possible"
(Section 3.3).  For a freely replicable digital good the arbiter's problem
is a posted price against the buyers' valuation distribution; for an
auction, Myerson's optimal reserve.  Both are implemented empirically (from
valuation samples) and analytically (from a distribution's F and f).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..errors import PricingError


@dataclass(frozen=True)
class PostedPriceResult:
    price: float
    revenue: float
    buyers_served: int


def optimal_posted_price(valuations: Sequence[float]) -> PostedPriceResult:
    """Empirically optimal take-it-or-leave-it price for unlimited supply.

    Since data is freely replicable the arbiter can serve every buyer with
    v >= p, so revenue(p) = p * |{v_i >= p}|; the optimum is at one of the
    observed valuations.
    """
    vals = sorted(float(v) for v in valuations if v is not None)
    if not vals:
        raise PricingError("need at least one valuation")
    if vals[0] < 0:
        raise PricingError("valuations must be non-negative")
    n = len(vals)
    best = PostedPriceResult(price=0.0, revenue=0.0, buyers_served=0)
    for i, p in enumerate(vals):
        served = n - i  # all buyers with v >= p (vals sorted ascending)
        revenue = p * served
        if revenue > best.revenue:
            best = PostedPriceResult(p, revenue, served)
    return best


def revenue_curve(
    valuations: Sequence[float], grid: Sequence[float]
) -> list[tuple[float, float]]:
    """(price, revenue) samples over a price grid, for plotting/benches."""
    vals = np.asarray(sorted(valuations), dtype=float)
    out = []
    for p in grid:
        served = int(np.sum(vals >= p))
        out.append((float(p), float(p) * served))
    return out


def virtual_value(
    v: float, cdf: Callable[[float], float], pdf: Callable[[float], float]
) -> float:
    """Myerson's virtual value φ(v) = v - (1 - F(v)) / f(v)."""
    density = pdf(v)
    if density <= 0:
        raise PricingError(f"pdf must be positive at v={v}")
    return v - (1.0 - cdf(v)) / density


def myerson_reserve(
    cdf: Callable[[float], float],
    pdf: Callable[[float], float],
    lo: float,
    hi: float,
    tolerance: float = 1e-9,
) -> float:
    """Reserve price r* solving φ(r*) = 0 by bisection on [lo, hi].

    Requires a regular distribution (monotone virtual value), which all the
    textbook families (uniform, exponential) satisfy.
    """
    if hi <= lo:
        raise PricingError("need hi > lo")
    f_lo = virtual_value(lo, cdf, pdf)
    f_hi = virtual_value(hi, cdf, pdf)
    if f_lo > 0:
        return lo  # virtual value positive everywhere: no binding reserve
    if f_hi < 0:
        raise PricingError("virtual value negative on the whole support")
    a, b = lo, hi
    while b - a > tolerance:
        mid = (a + b) / 2
        if virtual_value(mid, cdf, pdf) < 0:
            a = mid
        else:
            b = mid
    return (a + b) / 2


def myerson_reserve_uniform(low: float, high: float) -> float:
    """Closed form for U[low, high]: r* = max(low, high / 2)."""
    if high <= low or low < 0:
        raise PricingError("need 0 <= low < high")
    return max(low, high / 2.0)


def myerson_reserve_exponential(rate: float) -> float:
    """Closed form for Exp(rate): φ(v) = v - 1/rate, so r* = 1/rate."""
    if rate <= 0:
        raise PricingError("rate must be positive")
    return 1.0 / rate
