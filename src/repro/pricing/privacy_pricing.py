"""The privacy–value connection: pricing ε.

Section 8.2: "The buyer can specify a level of privacy associated with a
query, in such a way that the higher the privacy level, the less the dataset
is perturbed, meaning the dataset will be of higher quality.  Therefore, the
higher the privacy level [ε], the higher the price of the dataset."

:class:`PrivacyPriceMenu` is the seller-side quote generator: a concave,
increasing price-of-ε curve anchored at the clean-data price, plus the
inverse query ("what ε does my budget buy?").  Combined with the
:class:`~repro.privacy.accountant.PrivacyAccountant` it refuses quotes the
remaining budget cannot honour.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PricingError
from ..privacy import PrivacyAccountant


@dataclass(frozen=True)
class PrivacyQuote:
    dataset: str
    epsilon: float
    price: float


@dataclass(frozen=True)
class PrivacyPriceMenu:
    """price(ε) = clean_price · ε / (ε + ε_half).

    ``epsilon_half`` is the ε at which the buyer gets half the clean-data
    price's worth of quality — the single knob a seller tunes.  The curve is
    increasing and concave with price(∞) = clean_price, matching the
    intuition that early ε buys the most utility.
    """

    dataset: str
    clean_price: float
    epsilon_half: float = 1.0

    def __post_init__(self):
        if self.clean_price < 0:
            raise PricingError("clean price must be non-negative")
        if self.epsilon_half <= 0:
            raise PricingError("epsilon_half must be positive")

    def price_for_epsilon(self, epsilon: float) -> float:
        if epsilon <= 0:
            raise PricingError("epsilon must be positive")
        return self.clean_price * epsilon / (epsilon + self.epsilon_half)

    def epsilon_for_budget(self, budget: float) -> float:
        """Largest ε the budget affords (inverse of the price curve)."""
        if budget <= 0:
            raise PricingError("budget must be positive")
        if budget >= self.clean_price:
            raise PricingError(
                "budget covers the clean-data price; buy the data un-noised"
            )
        # budget = clean * eps/(eps+h)  =>  eps = h * budget/(clean - budget)
        return self.epsilon_half * budget / (self.clean_price - budget)

    def quote(
        self,
        epsilon: float,
        accountant: PrivacyAccountant | None = None,
    ) -> PrivacyQuote:
        """Produce a quote, checking the privacy budget when given."""
        if accountant is not None and not accountant.can_spend(
            self.dataset, epsilon
        ):
            raise PricingError(
                f"dataset {self.dataset!r}: remaining privacy budget "
                f"{accountant.remaining(self.dataset):g} cannot honour "
                f"ε={epsilon:g}"
            )
        return PrivacyQuote(
            self.dataset, epsilon, self.price_for_epsilon(epsilon)
        )
