"""Supply–demand price dynamics (tatonnement).

Section 2: "In the markets we envision, the price of a dataset is set by the
arbiter based on the economic principles of supply and demand.  A dataset
that lots of buyers want will be priced higher than a dataset that is hardly
ever requested, regardless of the intrinsic properties of such datasets."

:func:`tatonnement` is the arbiter's price-adjustment loop: excess demand
raises the price multiplicatively, excess supply lowers it, until the market
clears.  Benchmark E12 uses it to show prices track *demand*, not intrinsic
quality — the paper's "value is primarily extrinsic" claim.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import PricingError


@dataclass
class TatonnementResult:
    price: float
    converged: bool
    iterations: int
    history: list[tuple[float, float]] = field(default_factory=list)
    #: (price, demand) trajectory

    @property
    def final_demand(self) -> float:
        return self.history[-1][1] if self.history else 0.0


def tatonnement(
    demand_fn: Callable[[float], float],
    supply: float,
    initial_price: float = 1.0,
    learning_rate: float = 0.2,
    max_iterations: int = 500,
    tolerance: float = 0.01,
    min_price: float = 1e-6,
) -> TatonnementResult:
    """Adjust price until |demand - supply| <= tolerance * max(supply, 1).

    ``demand_fn(price)`` returns quantity demanded at that price (e.g., the
    number of buyers whose WTP exceeds it).  The update is the classic
    multiplicative rule  p <- p * (1 + η · (D(p) - S) / max(S, 1)).
    """
    if supply < 0:
        raise PricingError("supply must be non-negative")
    if initial_price <= 0:
        raise PricingError("initial price must be positive")
    if not 0 < learning_rate < 1:
        raise PricingError("learning rate must be in (0, 1)")
    price = initial_price
    history: list[tuple[float, float]] = []
    band = tolerance * max(supply, 1.0)
    for iteration in range(1, max_iterations + 1):
        demand = float(demand_fn(price))
        history.append((price, demand))
        excess = demand - supply
        if abs(excess) <= band:
            return TatonnementResult(price, True, iteration, history)
        price = max(
            min_price,
            price * (1.0 + learning_rate * excess / max(supply, 1.0)),
        )
    return TatonnementResult(price, False, max_iterations, history)


def demand_from_valuations(
    valuations: Sequence[float],
) -> Callable[[float], float]:
    """Unit demand: D(p) = number of buyers with valuation >= p."""
    vals = sorted(float(v) for v in valuations)
    if not vals:
        raise PricingError("need at least one valuation")

    def demand(price: float) -> float:
        # count of vals >= price via binary search
        lo, hi = 0, len(vals)
        while lo < hi:
            mid = (lo + hi) // 2
            if vals[mid] < price:
                lo = mid + 1
            else:
                hi = mid
        return float(len(vals) - lo)

    return demand


def clearing_price_bounds(
    valuations: Sequence[float], supply: int
) -> tuple[float, float]:
    """The interval of prices at which exactly ``supply`` buyers buy.

    With unit demand the market-clearing prices for k units lie between the
    (k+1)-th and k-th highest valuations.
    """
    vals = sorted((float(v) for v in valuations), reverse=True)
    if supply <= 0 or supply > len(vals):
        raise PricingError("supply must be in [1, n_buyers]")
    upper = vals[supply - 1]
    lower = vals[supply] if supply < len(vals) else 0.0
    return lower, upper
