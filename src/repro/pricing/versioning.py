"""Versioning information goods (Varian; cited in §2/§8.2 [95, 96]).

"Versioning: the smart way to sell information": a seller with one dataset
offers *quality-degraded versions* (a sample, a noisier ε-release, a stale
snapshot) at lower prices so that buyer types self-select.  This module
solves the classic two-type screening problem on a quality grid:

* the low type's participation (IR) constraint binds:  p_L = u_L(q_L);
* the high type's self-selection (IC) constraint binds:
  p_H = u_H(q_H) − [u_H(q_L) − p_L]  (their information rent);

and the seller chooses the low version's quality q_L to maximize expected
revenue, also considering the degenerate menus (serve only the high type,
or one version for everyone).  With concave low-type utility the optimum is
typically interior — deliberately damaging the product raises revenue,
which is exactly the counterintuitive Varian result the tests pin down.

Quality maps directly onto the platform's degradation knobs: a row-sample
fraction, a privacy ε (via :class:`~repro.pricing.privacy_pricing`
curves), or a freshness lag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from ..errors import PricingError


@dataclass(frozen=True)
class BuyerType:
    """A buyer segment: population share + willingness to pay for quality.

    ``utility(q)`` is the maximum the type pays for quality q ∈ [0, 1];
    it must be non-decreasing with utility(0) = 0.
    """

    name: str
    fraction: float
    utility: Callable[[float], float]

    def __post_init__(self):
        if not 0 < self.fraction <= 1:
            raise PricingError("type fraction must be in (0, 1]")
        if abs(self.utility(0.0)) > 1e-9:
            raise PricingError("utility(0) must be 0 (no data, no value)")


@dataclass(frozen=True)
class Version:
    quality: float
    price: float


@dataclass(frozen=True)
class VersionMenu:
    """The menu offered: one version per served type."""

    high: Version | None
    low: Version | None
    expected_revenue: float
    strategy: str  # "screen" | "high_only" | "single_version"


def design_version_menu(
    high: BuyerType,
    low: BuyerType,
    grid: int = 201,
) -> VersionMenu:
    """Optimal two-type menu over a quality grid.

    ``high`` must value full quality at least as much as ``low``.  Returns
    the revenue-maximizing choice among screening menus, serving only the
    high type, and a single full-quality version for everyone.
    """
    if high.fraction + low.fraction > 1 + 1e-9:
        raise PricingError("type fractions must sum to at most 1")
    if high.utility(1.0) < low.utility(1.0):
        raise PricingError(
            "the 'high' type must value full quality at least as much"
        )
    # degenerate menu 1: only the high type is served at full quality
    best = VersionMenu(
        high=Version(1.0, high.utility(1.0)),
        low=None,
        expected_revenue=high.fraction * high.utility(1.0),
        strategy="high_only",
    )
    # degenerate menu 2: one full-quality version priced for everyone
    single_price = low.utility(1.0)
    single_revenue = (high.fraction + low.fraction) * single_price
    if single_revenue > best.expected_revenue:
        best = VersionMenu(
            high=Version(1.0, single_price),
            low=Version(1.0, single_price),
            expected_revenue=single_revenue,
            strategy="single_version",
        )
    # screening menus: sweep the damaged version's quality
    for q_low in np.linspace(0.0, 1.0, grid)[1:-1]:
        p_low = low.utility(float(q_low))  # low IR binds
        # high's information rent (floored at 0: their IR also binds when
        # the damaged version is worthless *to them*)
        rent = max(0.0, high.utility(float(q_low)) - p_low)
        p_high = high.utility(1.0) - rent  # high IC binds
        if p_high < p_low - 1e-12:
            continue  # menu would be upside down
        if low.utility(1.0) - p_high > 1e-12:
            continue  # low type would grab the premium version (low IC)
        revenue = high.fraction * p_high + low.fraction * p_low
        if revenue > best.expected_revenue + 1e-12:
            best = VersionMenu(
                high=Version(1.0, p_high),
                low=Version(float(q_low), p_low),
                expected_revenue=revenue,
                strategy="screen",
            )
    return best


def menu_is_incentive_compatible(
    menu: VersionMenu, high: BuyerType, low: BuyerType, tolerance: float = 1e-9
) -> bool:
    """Verify IR + IC of a menu for both types (each prefers its version)."""

    def surplus(buyer: BuyerType, version: Version | None) -> float:
        if version is None:
            return 0.0
        return buyer.utility(version.quality) - version.price

    for buyer, mine, other in (
        (high, menu.high, menu.low),
        (low, menu.low, menu.high),
    ):
        if mine is None:
            continue
        if surplus(buyer, mine) < -tolerance:  # IR
            return False
        if surplus(buyer, mine) < surplus(buyer, other) - tolerance:  # IC
            return False
    return True
