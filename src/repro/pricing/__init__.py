"""Pricing: arbitrage-free query pricing, revenue optimization, dynamics."""

from .dynamic import (
    TatonnementResult,
    clearing_price_bounds,
    demand_from_valuations,
    tatonnement,
)
from .privacy_pricing import PrivacyPriceMenu, PrivacyQuote
from .query_pricing import (
    ArbitrageFreePricer,
    NaivePricer,
    PricedBundle,
    bundle,
    exhaustive_arbitrage_search,
)
from .versioning import (
    BuyerType,
    Version,
    VersionMenu,
    design_version_menu,
    menu_is_incentive_compatible,
)
from .revenue_opt import (
    PostedPriceResult,
    myerson_reserve,
    myerson_reserve_exponential,
    myerson_reserve_uniform,
    optimal_posted_price,
    revenue_curve,
    virtual_value,
)

__all__ = [
    "PricedBundle",
    "bundle",
    "ArbitrageFreePricer",
    "NaivePricer",
    "exhaustive_arbitrage_search",
    "optimal_posted_price",
    "PostedPriceResult",
    "revenue_curve",
    "virtual_value",
    "myerson_reserve",
    "myerson_reserve_uniform",
    "myerson_reserve_exponential",
    "tatonnement",
    "TatonnementResult",
    "demand_from_valuations",
    "clearing_price_bounds",
    "PrivacyPriceMenu",
    "PrivacyQuote",
    "BuyerType",
    "Version",
    "VersionMenu",
    "design_version_menu",
    "menu_is_incentive_compatible",
]
