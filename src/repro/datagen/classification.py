"""Synthetic classification tasks whose features live in different datasets.

This reproduces the paper's introductory scenario: buyer ``b1`` needs
features ⟨a, b, d, e⟩ for a classifier with ≥80% accuracy; seller 1 owns
⟨a, b, c⟩, seller 2 owns ⟨a, b', f(d)⟩.  Accuracy must *improve* as the
mashup builder joins more informative features, so the generator plants a
logistic ground truth in which each feature carries a controlled share of
the signal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..relation import Column, Relation, Schema


@dataclass
class ClassificationWorld:
    """Ground truth + a set of feature datasets carved out of it."""

    full: Relation  # entity_id, all features, label
    label_relation: Relation  # entity_id, label (what the buyer owns)
    feature_names: list[str]
    weights: dict[str, float]
    datasets: list[Relation]


def make_classification_world(
    n_entities: int = 400,
    feature_weights: Sequence[float] = (2.0, 1.5, 0.0, 1.0, 2.5),
    dataset_features: Sequence[Sequence[int]] = ((0, 1, 2), (0, 3,)),
    noise: float = 0.5,
    seed: int = 0,
) -> ClassificationWorld:
    """Build a binary classification world.

    ``feature_weights[j]`` is feature j's coefficient in the logistic ground
    truth (0 = pure noise feature, like attribute ``c`` in the paper's
    example).  ``dataset_features`` lists, per seller dataset, the feature
    indices it contains; every dataset also carries ``entity_id``.
    """
    rng = np.random.default_rng(seed)
    k = len(feature_weights)
    x = rng.normal(0, 1, size=(n_entities, k))
    logits = x @ np.asarray(feature_weights, dtype=float)
    logits += rng.normal(0, noise, size=n_entities)
    labels = (logits > 0).astype(int)

    feature_names = [f"f{j}" for j in range(k)]
    cols = [Column("entity_id", "int", "entity")]
    cols += [Column(n, "float", n) for n in feature_names]
    cols.append(Column("label", "int", "label"))
    rows = [
        (i, *(float(v) for v in x[i]), int(labels[i]))
        for i in range(n_entities)
    ]
    full = Relation("full", Schema(cols), rows)

    label_relation = full.project(["entity_id", "label"]).renamed(
        "buyer_labels"
    ).with_provenance_root("buyer_labels")

    datasets = []
    for d, feats in enumerate(dataset_features):
        names = ["entity_id"] + [feature_names[j] for j in feats]
        rel = full.project(names).renamed(f"seller_{d}")
        datasets.append(rel.with_provenance_root(f"seller_{d}"))

    return ClassificationWorld(
        full=full,
        label_relation=label_relation,
        feature_names=feature_names,
        weights=dict(zip(feature_names, map(float, feature_weights))),
        datasets=datasets,
    )


def intro_scenario(seed: int = 0, n_entities: int = 500) -> dict:
    """The paper's Section 1 example, materialized.

    * Buyer b1 owns labels and wants features a, b, d (e is unavailable —
      an opportunistic seller could later collect it, Section 7.1).
    * Seller 1 shares s1 = ⟨entity_id, a, b, c⟩ (c is a noise feature).
    * Seller 2 shares s2 = ⟨entity_id, b', f(d)⟩ where b' is a noisy copy
      of b and f(d) = 1.8*d + 32 (a Celsius→Fahrenheit-style affine map).

    Returns a dict with the relations and the ground-truth transform.
    """
    rng = np.random.default_rng(seed)
    world = make_classification_world(
        n_entities=n_entities,
        feature_weights=(2.0, 1.5, 0.0, 2.5, 1.0),  # a, b, c, d, e
        dataset_features=((0, 1, 2),),  # seller_0 = s1 with a, b, c
        noise=0.4,
        seed=seed,
    )
    a, b, c, d, e = "f0", "f1", "f2", "f3", "f4"
    s1 = (
        world.datasets[0]
        .rename({a: "a", b: "b", c: "c"})
        .renamed("s1")
        .with_provenance_root("s1")
    )

    # s2: b' (noisy copy of b) and fd = 1.8*d + 32
    full = world.full
    b_idx = full.schema.position(b)
    d_idx = full.schema.position(d)
    rows = []
    for row in full.rows:
        b_prime = float(row[b_idx]) + float(rng.normal(0, 0.3))
        fd = 1.8 * float(row[d_idx]) + 32.0
        rows.append((row[0], b_prime, fd))
    s2 = Relation(
        "s2",
        [
            Column("entity_id", "int", "entity"),
            Column("b_prime", "float"),
            Column("fd", "float"),
        ],
        rows,
    )

    labels = world.label_relation
    return {
        "world": world,
        "s1": s1,
        "s2": s2,
        "labels": labels,
        "transform": ("affine", 1.8, 32.0, "fd", d),
        "wanted_features": ["a", "b", "d", "e"],
        "missing_feature": e,
    }
