"""Deterministic vocabularies for synthetic data (names, cities, products).

The corpus generator uses these pools to synthesize realistic-looking
categorical and PII columns.  Everything is plain data so generation stays
reproducible under a seeded RNG.
"""

from __future__ import annotations

import numpy as np

FIRST_NAMES = (
    "ada alan alice amir ana beth carl chen dana dev elena emil fatima finn "
    "grace hana henry ines ivan jack jana juan kai lara leo lin maria marco "
    "nadia noah olga omar pablo petra quinn rosa sam sara tariq tess uma "
    "victor wei xena yara zoe"
).split()

LAST_NAMES = (
    "adams baker chen diaz evans fischer garcia haddad ito jensen kim lopez "
    "meyer novak okafor patel quintero rossi sato tanaka ueda vargas weber "
    "xu yamada zhang"
).split()

CITIES = (
    "amsterdam athens austin bangkok berlin bogota boston cairo chicago "
    "dakar delhi dublin geneva hanoi havana kyoto lagos lima lisbon london "
    "madrid manila nairobi oslo paris prague quito rome seoul tokyo vienna "
    "warsaw"
).split()

PRODUCTS = (
    "anvil beacon cable drone easel flange gasket hinge ingot jigsaw kettle "
    "lathe magnet nozzle oiler pulley quiver rivet spring tongs valve wrench"
).split()

DEPARTMENTS = (
    "engineering finance hr legal logistics marketing operations research "
    "sales support"
).split()


def person_name(rng: np.random.Generator) -> str:
    first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
    last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
    return f"{first} {last}"


def email(name: str, rng: np.random.Generator) -> str:
    domain = ["example.com", "mail.test", "corp.local"][int(rng.integers(3))]
    return name.replace(" ", ".") + f"{int(rng.integers(100))}@{domain}"


def pick(pool: tuple | list, rng: np.random.Generator) -> str:
    return pool[int(rng.integers(len(pool)))]
