"""Synthetic data generation: relational corpora and classification worlds."""

from .classification import (
    ClassificationWorld,
    intro_scenario,
    make_classification_world,
)
from .tabular import (
    Corpus,
    CorpusSpec,
    NoisyCopyRecord,
    TransformRecord,
    conflicting_sources,
    generate_corpus,
    time_series,
)

__all__ = [
    "Corpus",
    "CorpusSpec",
    "TransformRecord",
    "NoisyCopyRecord",
    "generate_corpus",
    "time_series",
    "conflicting_sources",
    "ClassificationWorld",
    "make_classification_world",
    "intro_scenario",
]
