"""Synthetic relational corpora with controlled structure.

This is the substitution for real organizations' data lakes (see DESIGN.md):
a single hidden *wide table* over a universe of entities is vertically and
horizontally partitioned into seller datasets.  The generator controls — and
records as ground truth — exactly the properties the platform must recover:

* which column pairs truly join (shared key columns, possibly renamed),
* which columns are transformed copies (the paper's ``f(d)``: affine unit
  conversions or opaque code mappings with a hidden mapping table),
* which columns are noisy near-duplicates (the paper's ``b'``: same signal,
  conflicting values — fodder for the fusion operators),
* how much rows/values overlap across datasets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..relation import Column, Relation, Schema
from . import vocab


@dataclass(frozen=True)
class TransformRecord:
    """Ground truth about a transformed column in some dataset."""

    dataset: str
    column: str
    base_column: str
    kind: str  # "affine" | "code"
    params: tuple = ()  # (a, b) for affine; () for code
    mapping: dict | None = None  # code -> original value, for "code"


@dataclass(frozen=True)
class NoisyCopyRecord:
    """Ground truth about a noisy near-duplicate column (the paper's b')."""

    dataset: str
    column: str
    base_column: str
    error_rate: float


@dataclass
class Corpus:
    """A generated corpus plus its ground truth."""

    wide: Relation
    datasets: list[Relation]
    key_column: str
    #: per-dataset name of the key column (may be renamed/obfuscated)
    key_names: dict[str, str] = field(default_factory=dict)
    #: (dataset_a, col_a, dataset_b, col_b) pairs that truly join
    true_joins: list[tuple[str, str, str, str]] = field(default_factory=list)
    transforms: list[TransformRecord] = field(default_factory=list)
    noisy_copies: list[NoisyCopyRecord] = field(default_factory=list)
    #: ground truth: (dataset, column) -> wide-table column it derives from
    column_bases: dict[tuple[str, str], str] = field(default_factory=dict)

    def dataset(self, name: str) -> Relation:
        for d in self.datasets:
            if d.name == name:
                return d
        raise KeyError(name)


@dataclass(frozen=True)
class CorpusSpec:
    """Knobs of the corpus generator."""

    n_entities: int = 200
    n_numeric: int = 4
    n_categorical: int = 3
    n_datasets: int = 6
    columns_per_dataset: int = 3
    row_fraction: float = 0.7
    rename_probability: float = 0.3
    affine_probability: float = 0.2
    code_probability: float = 0.15
    noisy_copy_probability: float = 0.2
    noise_error_rate: float = 0.1
    include_pii: bool = False
    seed: int = 0


_RENAMES = {
    "num": ("value", "reading", "measure", "metric", "amount"),
    "cat": ("label", "category", "group", "segment", "tag"),
}


def _make_wide(spec: CorpusSpec, rng: np.random.Generator) -> Relation:
    """The hidden wide table the datasets are carved from."""
    cols: list[Column] = [Column("entity_id", "int", "entity")]
    rows: list[list] = [[i] for i in range(spec.n_entities)]

    for j in range(spec.n_numeric):
        name = f"num_{j}"
        cols.append(Column(name, "float", name))
        loc = float(rng.uniform(-50, 50))
        scale = float(rng.uniform(1, 20))
        values = rng.normal(loc, scale, size=spec.n_entities)
        for row, v in zip(rows, values):
            row.append(float(v))

    pools = (vocab.CITIES, vocab.PRODUCTS, vocab.DEPARTMENTS)
    for j in range(spec.n_categorical):
        name = f"cat_{j}"
        cols.append(Column(name, "str", name))
        pool = pools[j % len(pools)]
        for row in rows:
            row.append(vocab.pick(pool, rng))

    if spec.include_pii:
        cols.append(Column("person_name", "str", "pii_name"))
        cols.append(Column("person_email", "str", "pii_email"))
        for row in rows:
            name = vocab.person_name(rng)
            row.append(name)
            row.append(vocab.email(name, rng))

    return Relation("wide", Schema(cols), [tuple(r) for r in rows])


def generate_corpus(spec: CorpusSpec) -> Corpus:
    """Generate a corpus of seller datasets from one hidden wide table."""
    rng = np.random.default_rng(spec.seed)
    wide = _make_wide(spec, rng)
    attr_names = [n for n in wide.columns if n != "entity_id"]

    corpus = Corpus(wide=wide, datasets=[], key_column="entity_id")
    for d in range(spec.n_datasets):
        ds_name = f"ds_{d}"
        n_cols = min(spec.columns_per_dataset, len(attr_names))
        chosen = list(
            rng.choice(attr_names, size=n_cols, replace=False)
        )
        n_rows = max(2, int(spec.row_fraction * spec.n_entities))
        row_idx = sorted(
            int(i)
            for i in rng.choice(spec.n_entities, size=n_rows, replace=False)
        )

        columns: list[Column] = [Column("entity_id", "int", "entity")]
        key_name = "entity_id"
        if rng.random() < spec.rename_probability:
            key_name = f"id_{d}"
            columns[0] = Column(key_name, "int", "entity")
        corpus.key_names[ds_name] = key_name
        corpus.column_bases[(ds_name, key_name)] = "entity_id"

        wide_pos = {n: wide.schema.position(n) for n in wide.columns}
        out_rows: list[list] = [[i] for i in row_idx]
        for attr in chosen:
            base_vals = [wide.rows[i][wide_pos[attr]] for i in row_idx]
            out_name = attr
            dtype = wide.schema[attr].dtype
            semantic = wide.schema[attr].semantic

            if rng.random() < spec.rename_probability:
                kind = "num" if dtype == "float" else "cat"
                out_name = (
                    f"{vocab.pick(_RENAMES[kind], rng)}_{attr.split('_')[-1]}"
                )

            r = rng.random()
            if dtype == "float" and r < spec.affine_probability:
                a = float(rng.uniform(0.5, 3.0))
                b = float(rng.uniform(-10, 10))
                base_vals = [a * v + b for v in base_vals]
                out_name = f"{out_name}_x"
                corpus.transforms.append(
                    TransformRecord(ds_name, out_name, attr, "affine", (a, b))
                )
                semantic = None  # transformed signal loses its tag
            elif dtype == "str" and r < spec.code_probability:
                distinct = sorted({v for v in base_vals})
                mapping = {v: f"C{k:03d}" for k, v in enumerate(distinct)}
                base_vals = [mapping[v] for v in base_vals]
                out_name = f"{out_name}_code"
                corpus.transforms.append(
                    TransformRecord(
                        ds_name,
                        out_name,
                        attr,
                        "code",
                        mapping={code: v for v, code in mapping.items()},
                    )
                )
                semantic = None
            elif rng.random() < spec.noisy_copy_probability:
                base_vals = _perturb(
                    base_vals, dtype, spec.noise_error_rate, rng
                )
                corpus.noisy_copies.append(
                    NoisyCopyRecord(
                        ds_name, out_name, attr, spec.noise_error_rate
                    )
                )

            columns.append(Column(out_name, dtype, semantic))
            corpus.column_bases[(ds_name, out_name)] = attr
            for row, v in zip(out_rows, base_vals):
                row.append(v)

        corpus.datasets.append(
            Relation(ds_name, Schema(columns), [tuple(r) for r in out_rows])
        )

    # ground-truth join pairs: every dataset pair joins on its key columns
    for i, a in enumerate(corpus.datasets):
        for b in corpus.datasets[i + 1 :]:
            corpus.true_joins.append(
                (a.name, corpus.key_names[a.name], b.name, corpus.key_names[b.name])
            )
    return corpus


def _perturb(values: list, dtype: str, error_rate: float, rng) -> list:
    """Corrupt a fraction of values (numeric jitter / categorical swap)."""
    out = []
    for v in values:
        if v is not None and rng.random() < error_rate:
            if dtype == "float":
                out.append(float(v) * float(rng.uniform(1.05, 1.5)))
            else:
                out.append(f"{v}_alt")
        else:
            out.append(v)
    return out


def time_series(
    name: str,
    n_points: int,
    step: int,
    value_fn,
    seed: int = 0,
    noise: float = 0.0,
) -> Relation:
    """A (t, value) relation sampled on a regular grid — used to exercise the
    DoD engine's time-granularity interpolation."""
    rng = np.random.default_rng(seed)
    rows = []
    for k in range(n_points):
        t = k * step
        v = float(value_fn(t))
        if noise:
            v += float(rng.normal(0, noise))
        rows.append((t, v))
    return Relation(
        name, [("t", "int", "time"), ("value", "float")], rows
    )


def conflicting_sources(
    n_sources: int,
    n_entities: int,
    accuracies: Sequence[float],
    vocabulary: Sequence[str] = ("red", "green", "blue", "black"),
    seed: int = 0,
) -> tuple[Relation, list[Relation]]:
    """Sources reporting one categorical claim per entity, each with its own
    accuracy — ground truth for the fusion / truth-discovery experiments.

    Returns ``(truth, sources)``; each source has schema (entity_id, claim).
    """
    if len(accuracies) != n_sources:
        raise ValueError("need one accuracy per source")
    rng = np.random.default_rng(seed)
    truth_vals = [vocab.pick(list(vocabulary), rng) for _ in range(n_entities)]
    truth = Relation(
        "truth",
        [("entity_id", "int", "entity"), ("claim", "str")],
        list(enumerate(truth_vals)),
    )
    sources = []
    for s, acc in enumerate(accuracies):
        rows = []
        for e in range(n_entities):
            if rng.random() < acc:
                claim = truth_vals[e]
            else:
                wrong = [v for v in vocabulary if v != truth_vals[e]]
                claim = vocab.pick(wrong, rng)
            rows.append((e, claim))
        sources.append(
            Relation(
                f"source_{s}",
                [("entity_id", "int", "entity"), ("claim", "str")],
                rows,
            )
        )
    return truth, sources
