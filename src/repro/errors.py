"""Exception hierarchy for the data market platform.

All library errors derive from :class:`ReproError` so callers can catch the
whole family with a single ``except`` clause while still being able to react
to specific failure modes (schema mismatches, budget exhaustion, licensing
violations, ...).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the library."""


class SchemaError(ReproError):
    """A relation was used with an incompatible or malformed schema."""


class TypeMismatchError(SchemaError):
    """A value did not match the declared dtype of its column."""


class UnknownColumnError(SchemaError):
    """A referenced column does not exist in the relation."""


class ProvenanceError(ReproError):
    """Provenance information is missing or inconsistent."""


class DiscoveryError(ReproError):
    """The discovery subsystem could not fulfil a request."""


class IntegrationError(ReproError):
    """The DoD engine could not assemble a requested mashup."""


class SynthesisError(IntegrationError):
    """No mapping function consistent with the given examples exists."""


class FusionError(ReproError):
    """A fusion operator received incompatible inputs."""


class PrivacyError(ReproError):
    """A privacy mechanism was misused (bad epsilon, exhausted budget...)."""


class BudgetExhaustedError(PrivacyError):
    """The privacy accountant refused an operation: budget exhausted."""


class ValuationError(ReproError):
    """A revenue-allocation computation failed or was infeasible."""


class PricingError(ReproError):
    """A pricing computation failed (e.g. no arbitrage-free price exists)."""


class ArbitrageError(PricingError):
    """An arbitrage opportunity was detected where none should exist."""


class MechanismError(ReproError):
    """An auction/payment mechanism received invalid input."""


class MarketError(ReproError):
    """Generic market-platform error."""


class MarketDesignError(MarketError):
    """A market design is inconsistent or impractical."""


class InvalidRequestError(MarketError):
    """A platform request carried arguments the market cannot act on
    (empty attribute list, negative reserve price, negative funding...)."""


class UnknownParticipantError(MarketError):
    """An operation referenced a participant the ledger does not know."""


class DuplicateParticipantError(MarketError):
    """A participant name was registered twice."""


class DatasetNotFoundError(MarketError):
    """An operation referenced a dataset the platform does not hold."""


class DuplicateDatasetError(MarketError):
    """``register_dataset`` was called for a name that is already live
    (use ``update_dataset`` to refresh an existing registration)."""


class DatasetOwnershipError(MarketError):
    """A seller tried to register or update a dataset name held by a
    different seller."""


class LicensingError(MarketError):
    """A data transfer violates the license attached to a dataset."""


class LicenseDowngradeError(LicensingError):
    """A dataset update tried to silently strip rights already granted to
    existing licensees (e.g. revoking resale, shrinking exclusivity slots
    below the current holder count, or retrofitting a full transfer)."""


class LedgerError(MarketError):
    """A ledger operation is invalid (unknown account, overdraft...)."""


class InsufficientFundsError(LedgerError):
    """An account does not hold enough balance for the requested transfer."""


class AuditError(MarketError):
    """The tamper-evident audit log failed verification."""


class NegotiationError(MarketError):
    """A negotiation round could not be completed."""


class AuthenticationError(MarketError):
    """A network request carried no credential, or one the gateway does
    not recognize (HTTP 401)."""


class RateLimitError(MarketError):
    """A client exceeded its request budget (HTTP 429).

    ``retry_after`` is the minimum wait, in seconds, before the token
    bucket will admit the next request; the gateway surfaces it as the
    ``Retry-After`` response header."""

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class SimulationError(ReproError):
    """The market simulator was configured inconsistently."""


class ReproDeprecationWarning(DeprecationWarning):
    """Warning category for deprecated library surface (manual engine
    wiring superseded by :class:`repro.platform.DataMarket`).

    A dedicated subclass lets the test suite escalate *our* deprecations to
    errors (``filterwarnings = error::repro.errors.ReproDeprecationWarning``)
    without tripping over third-party DeprecationWarnings.
    """
