"""The Metadata Engine (Fig. 3): ingestion, context snapshots, lifecycle.

Section 5.1 describes a "fully-incremental, always-on system" that reads
datasets in bulk or via manual registration, divides them into data items,
and maintains a *time-ordered list of context snapshots* per dataset — each
capturing content signatures, owners and security credentials at that point
in time.  The engine's relational *output schema* is produced by the Sink.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Mapping

from ..errors import DiscoveryError
from ..relation import Relation
from .profiler import TableProfile, profile_table, table_content_hash


@dataclass(frozen=True)
class ContextSnapshot:
    """State of one dataset's data items at one point in (logical) time."""

    dataset: str
    version: int
    logical_time: int
    content_hash: str
    profile: TableProfile
    owners: tuple[str, ...]
    credentials: str  # e.g. "public", "team:finance", "pii"


@dataclass(frozen=True)
class MetadataDelta:
    """Typed change event the engine emits to subscribers.

    Downstream indexes consume these instead of bare staleness pings: the
    delta carries everything needed to patch derived state in place —
    ``snapshot`` (with per-column profiles) for added/updated datasets,
    ``previous`` for updated/removed ones.
    """

    kind: str  # "added" | "updated" | "removed"
    dataset: str
    snapshot: ContextSnapshot | None
    previous: ContextSnapshot | None = None


MetadataListener = Callable[[MetadataDelta], None]


@dataclass
class DatasetLifecycle:
    """Time-ordered snapshots plus the live relation."""

    relation: Relation
    snapshots: list[ContextSnapshot] = field(default_factory=list)

    @property
    def current(self) -> ContextSnapshot:
        return self.snapshots[-1]

    @property
    def version(self) -> int:
        return self.current.version


class MetadataEngine:
    """Registers datasets, tracks versions, and profiles data items."""

    def __init__(
        self, num_perm: int = 64, access_quota: int | None = None,
        scheme: str = "classic",
    ):
        self._lifecycles: dict[str, DatasetLifecycle] = {}
        self._clock = 0
        self._num_perm = num_perm
        #: MinHash sketch scheme every profile in this engine uses
        #: ("classic" or "oph"); one engine holds one scheme so every
        #: signature it emits is mutually comparable
        self.scheme = scheme
        #: optional cap on profile refreshes per source system (Section 4.2's
        #: "optional access quota established by the origin system")
        self.access_quota = access_quota
        self._accesses = 0
        self._listeners: list[MetadataListener] = []
        self._newest_logical_time = 0

    # -- ingestion (batch + share interfaces) ---------------------------
    def register(
        self,
        relation: Relation,
        owner: str = "unknown",
        credentials: str = "public",
    ) -> ContextSnapshot:
        """Share interface: register or update a single dataset."""
        self._check_quota()
        name = relation.name
        # one profiling pass: keep the columnar view's text caches alive
        # across the dedupe hash + per-column profiling; always released
        # on the way out so an always-on engine does not pin ~tens of
        # bytes per cell for the lifetime of every registered relation
        view = relation.columnar
        view.retain_text = True
        try:
            content_hash = table_content_hash(relation, scheme=self.scheme)
            lifecycle = self._lifecycles.get(name)
            if (
                lifecycle is not None
                and lifecycle.current.content_hash == content_hash
            ):
                return lifecycle.current  # unchanged: no new snapshot
            self._clock += 1
            previous = lifecycle.current if lifecycle else None
            snapshot = ContextSnapshot(
                dataset=name,
                version=previous.version + 1 if previous else 1,
                logical_time=self._clock,
                content_hash=content_hash,
                profile=profile_table(
                    relation,
                    num_perm=self._num_perm,
                    previous=previous.profile if previous else None,
                    scheme=self.scheme,
                ),
                owners=(owner,),
                credentials=credentials,
            )
        finally:
            view.release_text()
            view.retain_text = False
        if lifecycle is None:
            self._lifecycles[name] = DatasetLifecycle(relation, [snapshot])
        else:
            lifecycle.relation = relation
            lifecycle.snapshots.append(snapshot)
        self._newest_logical_time = self._clock
        self._notify(
            MetadataDelta(
                kind="added" if previous is None else "updated",
                dataset=name,
                snapshot=snapshot,
                previous=previous,
            )
        )
        return snapshot

    def register_batch(
        self,
        relations: Iterable[Relation],
        owner: str = "unknown",
        credentials: str = "public",
    ) -> list[ContextSnapshot]:
        """Batch interface: point at a whole source (lake, DB, CSV dir)."""
        return [self.register(r, owner, credentials) for r in relations]

    def remove(self, name: str) -> MetadataDelta:
        """Withdraw a dataset (seller retirement): drop its lifecycle and
        notify subscribers so derived indexes prune it in place."""
        lifecycle = self._lifecycle(name)
        del self._lifecycles[name]
        if lifecycle.current.logical_time >= self._newest_logical_time:
            self._newest_logical_time = max(
                (lc.current.logical_time for lc in self._lifecycles.values()),
                default=0,
            )
        delta = MetadataDelta(
            kind="removed",
            dataset=name,
            snapshot=None,
            previous=lifecycle.current,
        )
        self._notify(delta)
        return delta

    # -- cold-start replay (durable-store hooks) -------------------------
    def restore_lifecycle(
        self, relation: Relation, snapshot: ContextSnapshot
    ) -> None:
        """Adopt a persisted dataset wholesale: no profiling, no delta.

        The durable store replays datasets in registration order, so the
        lifecycle dict's insertion order — which fixes :meth:`profiles`
        order and hence candidate orientation downstream — matches the
        original process exactly.  Only the current snapshot is restored;
        prior snapshot history is process-resident by design."""
        if relation.name != snapshot.dataset:
            raise DiscoveryError(
                f"snapshot is for {snapshot.dataset!r}, "
                f"not {relation.name!r}"
            )
        self._lifecycles[relation.name] = DatasetLifecycle(
            relation, [snapshot]
        )

    def restore_clock(self, clock: int, newest_logical_time: int) -> None:
        """Restore logical-time counters so post-replay registrations keep
        the monotonic ordering that survived in the store."""
        self._clock = max(self._clock, int(clock))
        self._newest_logical_time = max(
            self._newest_logical_time, int(newest_logical_time)
        )

    def subscribe(self, listener: MetadataListener) -> MetadataListener:
        """Call ``listener(delta)`` on every change; returns the listener as
        a detach token for :meth:`unsubscribe`."""
        self._listeners.append(listener)
        return listener

    def unsubscribe(self, listener: MetadataListener) -> None:
        """Detach a subscriber so discarded consumers don't leak as dangling
        listeners in long-running deployments."""
        try:
            self._listeners.remove(listener)
        except ValueError:
            raise DiscoveryError(
                "listener is not subscribed to this metadata engine"
            ) from None

    @property
    def subscribers(self) -> tuple[MetadataListener, ...]:
        """The live delta listeners (read-only view).  Teardown code — and
        the tests guarding it — asserts this empties when a consumer stack
        detaches, so long-running deployments cannot leak listeners."""
        return tuple(self._listeners)

    def _notify(self, delta: MetadataDelta) -> None:
        for listener in list(self._listeners):
            listener(delta)

    def _check_quota(self) -> None:
        self._accesses += 1
        if self.access_quota is not None and self._accesses > self.access_quota:
            raise DiscoveryError(
                f"source access quota exhausted ({self.access_quota})"
            )

    # -- lookups ---------------------------------------------------------
    @property
    def datasets(self) -> list[str]:
        return sorted(self._lifecycles)

    @property
    def clock(self) -> int:
        """The logical clock (ticks once per accepted snapshot)."""
        return self._clock

    @property
    def newest_logical_time(self) -> int:
        """Logical time of the freshest live snapshot (0 when empty) —
        O(1); freshness/version-lag checks need not scan every dataset."""
        return self._newest_logical_time

    def __contains__(self, name: str) -> bool:
        return name in self._lifecycles

    def relation(self, name: str) -> Relation:
        return self._lifecycle(name).relation

    def lifecycle(self, name: str) -> DatasetLifecycle:
        return self._lifecycle(name)

    def snapshot(self, name: str) -> ContextSnapshot:
        return self._lifecycle(name).current

    def profiles(self) -> list[TableProfile]:
        return [lc.current.profile for lc in self._lifecycles.values()]

    def _lifecycle(self, name: str) -> DatasetLifecycle:
        try:
            return self._lifecycles[name]
        except KeyError:
            raise DiscoveryError(f"dataset {name!r} is not registered") from None

    # -- the Sink's relational output schema ------------------------------
    def output_schema(self) -> Mapping[str, Relation]:
        """Conceptual relational view of the metadata (Section 5.1's Sink)."""
        ds_rows, col_rows, snap_rows = [], [], []
        for name, lc in sorted(self._lifecycles.items()):
            current = lc.current
            ds_rows.append(
                (name, current.version, current.profile.n_rows,
                 current.credentials, current.owners[0])
            )
            for cp in current.profile.columns:
                null_fraction = cp.categorical.null_fraction
                col_rows.append(
                    (name, cp.column, cp.dtype, cp.semantic,
                     cp.categorical.distinct, round(null_fraction, 6),
                     round(cp.distinct_fraction, 6))
                )
            for snap in lc.snapshots:
                snap_rows.append(
                    (name, snap.version, snap.logical_time, snap.content_hash)
                )
        return {
            "datasets": Relation(
                "meta_datasets",
                [("dataset", "str"), ("version", "int"), ("rows", "int"),
                 ("credentials", "str"), ("owner", "str")],
                ds_rows,
            ),
            "columns": Relation(
                "meta_columns",
                [("dataset", "str"), ("column", "str"), ("dtype", "str"),
                 ("semantic", "str"), ("distinct", "int"),
                 ("null_fraction", "float"), ("distinct_fraction", "float")],
                col_rows,
            ),
            "snapshots": Relation(
                "meta_snapshots",
                [("dataset", "str"), ("version", "int"),
                 ("logical_time", "int"), ("content_hash", "str")],
                snap_rows,
            ),
        }
