"""The Index Builder (Fig. 3): join candidates and the relationship graph.

Section 5.2: "the index builder materializes join paths between files, and
it identifies candidate functions to map attributes to each other; i.e., it
facilitates the DoD's job.  The index builder keeps indexes up-to-date as the
output schema changes."

Join candidates are proposed from three signals and scored in [0, 1]:

* **value overlap** — MinHash Jaccard between column signatures,
* **semantic tags** — columns sharing an explicit semantic annotation,
* **name similarity** — normalized column-name distance,

gated on dtype compatibility and key-likeness of at least one side.  The
relationship graph is a :class:`networkx.MultiGraph` over datasets carrying
**every** qualifying join predicate per dataset pair — one parallel edge per
column pair, plus a *composite* edge grouping disjoint value-backed column
pairs into a multi-column (composite-key) predicate.  Each predicate also
records an inclusion-dependency direction (``pk_side``) inferred from
containment asymmetry: when one column's values are essentially contained in
the other's and the containing column is key-like, the containing side is
the referenced (primary-key) side.  The DoD engine searches the graph for
join paths and prunes plan assignments spanning disconnected components via
the :meth:`IndexBuilder.components` / :meth:`IndexBuilder.reachable` API,
which stays correct under incremental register/update/remove deltas.

Maintenance is **incremental** by default: the builder keeps a persistent
:class:`~repro.sketches.lsh.LSHIndex` over column MinHash signatures plus a
semantic-tag inverted index, and on every :class:`MetadataDelta` re-scores
only the changed dataset's columns against their bucketed neighbours,
patching candidates and the graph in place — removals prune, updates
re-score.  With the default single-row banding the neighbour set provably
covers every pair the exhaustive scorer would emit (any candidate needs
either estimated overlap > 0 or a shared semantic tag), so incremental and
full-rebuild modes produce identical output.  The O(C²) full rebuild stays
available as the reference oracle behind ``incremental=False``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable

import networkx as nx

from ..errors import DiscoveryError
from ..sketches import LSHIndex
from .metadata import MetadataDelta, MetadataEngine
from .profiler import ColumnProfile, TableProfile, name_similarity
from .stats import FanoutEstimate, combine_composite, estimate_fanouts


@dataclass(frozen=True)
class JoinCandidate:
    """A scored hypothesis that two columns join."""

    left_dataset: str
    left_column: str
    right_dataset: str
    right_column: str
    score: float
    evidence: str  # "overlap" | "semantic" | "name"
    #: dataset inferred to hold the referenced (primary-key) side of an
    #: inclusion dependency, or None when containment is symmetric/weak
    pk_side: str | None = None
    #: estimated per-row join fan-out (left→right / right→left), derived
    #: from profile stats; None when the sketches carry no signal
    fanout: FanoutEstimate | None = None

    @property
    def pair(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return ((self.left_dataset, self.left_column),
                (self.right_dataset, self.right_column))

    def reversed(self) -> "JoinCandidate":
        return JoinCandidate(
            self.right_dataset, self.right_column,
            self.left_dataset, self.left_column,
            self.score, self.evidence, self.pk_side,
            None if self.fanout is None else self.fanout.reversed(),
        )


@dataclass(frozen=True)
class JoinPredicate:
    """One relationship-graph edge: a (possibly multi-column) join predicate.

    ``pairs`` lists (left_column, right_column) pairs; single-column
    predicates carry exactly one pair, composite-key predicates several.
    ``pk_side`` names the dataset inferred to be the referenced (PK) side of
    the inclusion dependency, or None when direction is undecidable.
    """

    left_dataset: str
    right_dataset: str
    pairs: tuple[tuple[str, str], ...]
    score: float
    evidence: str  # "overlap" | "semantic" | "name" | "composite"
    pk_side: str | None = None
    #: estimated per-row join fan-out (left→right / right→left); composite
    #: predicates carry the member-wise minimum
    fanout: FanoutEstimate | None = None

    @property
    def left_column(self) -> str:
        return self.pairs[0][0]

    @property
    def right_column(self) -> str:
        return self.pairs[0][1]

    @property
    def is_composite(self) -> bool:
        return len(self.pairs) > 1

    def reversed(self) -> "JoinPredicate":
        return JoinPredicate(
            self.right_dataset, self.left_dataset,
            tuple((rc, lc) for lc, rc in self.pairs),
            self.score, self.evidence, self.pk_side,
            None if self.fanout is None else self.fanout.reversed(),
        )


def _candidate_sort_key(c: JoinCandidate) -> tuple:
    """Deterministic global order: best score first, then dataset names,
    then column names — ties between column pairs of the same dataset pair
    are stable."""
    return (-c.score, c.left_dataset, c.right_dataset,
            c.left_column, c.right_column)


class IndexBuilder:
    """Maintains join candidates + relationship graph over a MetadataEngine."""

    def __init__(
        self,
        engine: MetadataEngine,
        min_overlap: float = 0.5,
        min_name_similarity: float = 0.8,
        subscribe: bool = True,
        incremental: bool = True,
        lsh_bands: int | None = None,
    ):
        self.engine = engine
        self.min_overlap = min_overlap
        self.min_name_similarity = min_name_similarity
        #: patch on deltas (default) vs. full O(C²) rebuild on any change
        self.incremental = incremental
        #: LSH bands for neighbour bucketing; ``None`` means one row per
        #: band (exact recall — incremental output matches the oracle).
        #: Fewer bands trade recall for smaller buckets.
        self.lsh_bands = lsh_bands
        self._profiles: dict[str, TableProfile] = {}
        #: registration order, mirroring the engine's lifecycle order; fixes
        #: candidate orientation identically to the full-rebuild enumeration
        self._order: dict[str, int] = {}
        self._next_order = 0
        self._lsh: LSHIndex | None = None
        self._semantic: dict[str, set[tuple[str, str]]] = {}
        self._candidates: dict[tuple, JoinCandidate] = {}
        self._pairs_of: dict[str, set[tuple]] = {}
        self._sorted: list[JoinCandidate] | None = None
        self._graph = nx.MultiGraph()
        #: bumped on every graph mutation; keys the component cache
        self._graph_version = 0
        self._components: tuple[frozenset[str], ...] = ()
        self._component_id: dict[str, int] = {}
        self._components_version = -1
        self._fingerprints: tuple[str, ...] = ()
        self._fingerprint_set: frozenset[str] = frozenset()
        self._fingerprints_version = -1
        self._stale = True
        self._subscription = None
        if subscribe:
            self._subscription = engine.subscribe(self._on_delta)

    # -- lifecycle ---------------------------------------------------------
    def detach(self) -> None:
        """Unsubscribe from the metadata engine (idempotent): a discarded
        builder must not linger as a dangling listener.

        A detached builder is *frozen at detach-time state* — like one
        constructed with ``subscribe=False``, it no longer tracks engine
        changes; call :meth:`refresh` explicitly to resync."""
        if self._subscription is not None:
            self.engine.unsubscribe(self._subscription)
            self._subscription = None

    # -- incremental maintenance -----------------------------------------
    def _on_delta(self, delta: MetadataDelta) -> None:
        if not self.incremental:
            self._stale = True
            return
        if self._stale:
            return  # a pending full build will absorb this change
        if delta.kind == "removed":
            self._remove_dataset(delta.dataset)
        else:
            self._upsert_dataset(delta.snapshot.profile)

    def refresh(self) -> None:
        """Full rebuild from the engine's current profiles (the O(C²)
        reference oracle; also primes the incremental structures)."""
        profiles = self.engine.profiles()
        self._profiles = {p.dataset: p for p in profiles}
        self._order = {p.dataset: i for i, p in enumerate(profiles)}
        self._next_order = len(profiles)
        self._rebuild_buckets()
        columns: list[ColumnProfile] = [
            c for p in profiles for c in p.columns
        ]
        self._candidates = {}
        self._pairs_of = {p.dataset: set() for p in profiles}
        for i, a in enumerate(columns):
            for b in columns[i + 1 :]:
                if a.dataset == b.dataset:
                    continue
                cand = self._score_pair(a, b)
                if cand is not None:
                    self._store_candidate(cand)
        self._sorted = None
        self._graph = nx.MultiGraph()
        for p in profiles:
            self._graph.add_node(p.dataset, n_rows=p.n_rows)
        pairs_seen: set[tuple[str, str]] = set()
        for cand in self._sorted_candidates():
            pair = (cand.left_dataset, cand.right_dataset)
            if pair not in pairs_seen:
                pairs_seen.add(pair)
                self._add_pair_edges(*pair)
        self._graph_version += 1
        self._stale = False

    def _rebuild_buckets(self) -> None:
        self._lsh = None
        self._semantic = {}
        for profile in self._profiles.values():
            self._bucket_columns(profile)

    def _bucket_columns(self, profile: TableProfile) -> None:
        for col in profile.columns:
            if self._lsh is None:
                num_perm = col.signature.num_perm
                self._lsh = LSHIndex(
                    num_perm=num_perm, bands=self.lsh_bands or num_perm
                )
            self._lsh.add(col.key, col.signature)
            if col.semantic is not None:
                self._semantic.setdefault(col.semantic, set()).add(col.key)

    def _unbucket_columns(self, profile: TableProfile) -> None:
        for col in profile.columns:
            self._lsh.remove(col.key)
            if col.semantic is not None:
                tagged = self._semantic.get(col.semantic)
                if tagged is not None:
                    tagged.discard(col.key)
                    if not tagged:
                        del self._semantic[col.semantic]

    def _upsert_dataset(self, profile: TableProfile) -> None:
        name = profile.dataset
        if name in self._profiles:
            self._drop_derived_state(name)
            self._profiles[name] = profile  # dict position preserved
        else:
            self._profiles[name] = profile
            self._order[name] = self._next_order
            self._next_order += 1
        self._bucket_columns(profile)
        self._pairs_of.setdefault(name, set())
        self._graph.add_node(name, n_rows=profile.n_rows)
        self._graph_version += 1
        touched: set[str] = set()
        for col in profile.columns:
            for other_key in self._neighbour_keys(col):
                other_ds, other_col = other_key
                if other_ds == name:
                    continue
                other = self._profiles[other_ds].column(other_col)
                a, b = self._oriented(col, other)
                cand = self._score_pair(a, b)
                if cand is not None:
                    self._store_candidate(cand)
                    touched.add(other_ds)
        self._sorted = None
        for other_ds in touched:
            self._rebuild_pair_edges(name, other_ds)

    def _remove_dataset(self, name: str) -> None:
        if name not in self._profiles:
            return
        self._drop_derived_state(name)
        del self._profiles[name]
        del self._order[name]
        self._sorted = None

    def _drop_derived_state(self, name: str) -> None:
        """Prune buckets, candidates and graph edges touching ``name``."""
        self._unbucket_columns(self._profiles[name])
        for pair_key in self._pairs_of.pop(name, ()):
            cand = self._candidates.pop(pair_key, None)
            if cand is None:
                continue
            other = (
                cand.right_dataset
                if cand.left_dataset == name
                else cand.left_dataset
            )
            self._pairs_of[other].discard(pair_key)
        if name in self._graph:
            self._graph.remove_node(name)
            self._graph_version += 1
        self._sorted = None

    def _neighbour_keys(self, col: ColumnProfile) -> set[tuple[str, str]]:
        """Columns that could form a candidate with ``col``: LSH collisions
        (any pair with estimated overlap > 0 under single-row banding) plus
        same-semantic columns.  Falls back to every indexed column when
        ``min_overlap <= 0`` (the overlap gate then prunes nothing)."""
        if self.min_overlap <= 0:
            return set(self._lsh.keys())
        keys = self._lsh.candidates(col.signature)
        if col.semantic is not None:
            keys |= self._semantic.get(col.semantic, set())
        keys.discard(col.key)
        return keys

    def _oriented(
        self, a: ColumnProfile, b: ColumnProfile
    ) -> tuple[ColumnProfile, ColumnProfile]:
        """Left/right orientation identical to the full-rebuild enumeration:
        earlier-registered dataset (then earlier schema column) is left."""
        ka = (self._order[a.dataset], self._column_index(a))
        kb = (self._order[b.dataset], self._column_index(b))
        return (a, b) if ka < kb else (b, a)

    def _column_index(self, col: ColumnProfile) -> int:
        columns = self._profiles[col.dataset].columns
        for i, c in enumerate(columns):
            if c.column == col.column:
                return i
        raise DiscoveryError(
            f"column {col.column!r} missing from {col.dataset!r} profile"
        )

    def _store_candidate(self, cand: JoinCandidate) -> None:
        pair_key = (cand.left_dataset, cand.left_column,
                    cand.right_dataset, cand.right_column)
        self._candidates[pair_key] = cand
        self._pairs_of.setdefault(cand.left_dataset, set()).add(pair_key)
        self._pairs_of.setdefault(cand.right_dataset, set()).add(pair_key)

    def _rebuild_pair_edges(self, u: str, v: str) -> None:
        """Recompute all parallel edges between two datasets in place."""
        while self._graph.has_edge(u, v):
            self._graph.remove_edge(u, v)
        self._add_pair_edges(u, v)
        self._graph_version += 1

    def _add_pair_edges(self, u: str, v: str) -> None:
        """Insert one edge per predicate between ``u`` and ``v`` (in the
        deterministic order of :meth:`_pair_predicates`)."""
        for pred in self._pair_predicates(u, v):
            self._insert_edge(pred)

    def _insert_edge(self, pred: JoinPredicate) -> None:
        self._graph.add_edge(
            pred.left_dataset, pred.right_dataset,
            key=pred.pairs,
            left_dataset=pred.left_dataset,
            left=pred.left_column,
            right=pred.right_column,
            pairs=pred.pairs,
            score=pred.score,
            evidence=pred.evidence,
            pk_side=pred.pk_side,
            fanout=pred.fanout,
        )

    def _pair_predicates(self, u: str, v: str) -> list[JoinPredicate]:
        """All join predicates between two datasets, derived deterministically
        from the current candidate set: one single-column predicate per
        candidate, plus one composite-key predicate grouping column-disjoint
        value-backed candidates (evidence "overlap"/"semantic") when at least
        two qualify.  Candidates between a fixed dataset pair all share the
        same registration-order orientation, so pair tuples are consistent.
        """
        pair_keys = self._pairs_of.get(u, set()) & self._pairs_of.get(v, set())
        cands = sorted(
            (self._candidates[k] for k in pair_keys), key=_candidate_sort_key
        )
        preds = [
            JoinPredicate(
                c.left_dataset, c.right_dataset,
                ((c.left_column, c.right_column),),
                c.score, c.evidence, c.pk_side, c.fanout,
            )
            for c in cands
        ]
        used_left: set[str] = set()
        used_right: set[str] = set()
        members: list[JoinCandidate] = []
        for c in cands:
            if c.evidence == "name":
                continue  # composite keys need value-backed evidence
            if c.left_column in used_left or c.right_column in used_right:
                continue
            members.append(c)
            used_left.add(c.left_column)
            used_right.add(c.right_column)
        if len(members) >= 2:
            sides = {m.pk_side for m in members}
            pk_side = sides.pop() if len(sides) == 1 else None
            preds.append(
                JoinPredicate(
                    members[0].left_dataset, members[0].right_dataset,
                    tuple((m.left_column, m.right_column) for m in members),
                    # max, not mean: the composite predicate is at least as
                    # selective as its best member, and keeping path costs
                    # equal to the best single edge preserves shortest paths
                    max(m.score for m in members),
                    "composite", pk_side,
                    combine_composite([m.fanout for m in members]),
                )
            )
        return preds

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.refresh()

    def _score_pair(
        self, a: ColumnProfile, b: ColumnProfile
    ) -> JoinCandidate | None:
        if not _dtypes_compatible(a.dtype, b.dtype):
            return None
        joinable = a.looks_like_key or b.looks_like_key
        overlap = a.signature.jaccard(b.signature)
        pk_side = _infer_pk_side(a, b, overlap)
        fanout = estimate_fanouts(
            a, b,
            self._profiles[a.dataset].n_rows,
            self._profiles[b.dataset].n_rows,
            overlap,
        )
        if joinable and overlap >= self.min_overlap:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column, overlap, "overlap",
                pk_side, fanout,
            )
        if (
            a.semantic is not None
            and a.semantic == b.semantic
            and joinable
        ):
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                max(overlap, 0.75), "semantic", pk_side, fanout,
            )
        name_sim = name_similarity(a.column, b.column)
        if joinable and name_sim >= self.min_name_similarity and overlap > 0.1:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                0.5 * name_sim + 0.5 * overlap, "name", pk_side, fanout,
            )
        return None

    def _sorted_candidates(self) -> list[JoinCandidate]:
        if self._sorted is None:
            self._sorted = sorted(
                self._candidates.values(), key=_candidate_sort_key
            )
        return self._sorted

    # -- queries -----------------------------------------------------------
    def join_candidates(
        self, dataset: str | None = None, min_score: float = 0.0
    ) -> list[JoinCandidate]:
        self._ensure_fresh()
        out = []
        for c in self._sorted_candidates():
            if c.score < min_score:
                continue
            if dataset is None:
                out.append(c)
            elif c.left_dataset == dataset:
                out.append(c)
            elif c.right_dataset == dataset:
                out.append(c.reversed())
        return out

    @property
    def graph(self) -> nx.MultiGraph:
        self._ensure_fresh()
        return self._graph

    @property
    def graph_version(self) -> int:
        """Monotonic counter bumped on every relationship-graph mutation.

        This is the platform's read-snapshot token: plan caches key on it,
        and every :mod:`repro.platform` result is stamped with the version
        (``as_of``) it was computed against.  Accessing it forces a pending
        lazy rebuild first, so equal versions imply equal derived state.
        """
        self._ensure_fresh()
        return self._graph_version

    def join_path(self, source: str, target: str) -> list[JoinPredicate]:
        """Cheapest join path between two datasets (weight = 1 - score; for
        parallel edges networkx takes the cheapest, i.e. the best-scored
        predicate, so path costs match the old single-best-edge graph).
        Each step is the best predicate of its pair — composite preferred on
        score ties, as joining on more equality pairs is more selective —
        oriented so ``left_dataset`` is the already-reached side."""
        self._ensure_fresh()
        g = self._graph
        if source not in g or target not in g:
            raise DiscoveryError(
                f"unknown dataset in join_path: {source!r} or {target!r}"
            )
        if self.component_of(source) != self.component_of(target):
            raise DiscoveryError(
                f"no join path between {source!r} and {target!r}"
            )
        try:
            # a callable weight on a MultiGraph receives the keyed dict of
            # all parallel edges: the pair's cost is its best predicate's
            nodes = nx.shortest_path(
                g, source, target,
                weight=lambda u, v, d: 1.0 - max(
                    attrs["score"] for attrs in d.values()
                ),
            )
        except nx.NetworkXNoPath:  # pragma: no cover - component check above
            raise DiscoveryError(
                f"no join path between {source!r} and {target!r}"
            ) from None
        steps = []
        for u, v in zip(nodes, nodes[1:]):
            d = min(
                g.get_edge_data(u, v).values(),
                key=lambda d: (-d["score"], -len(d["pairs"]), d["pairs"]),
            )
            pred = JoinPredicate(
                d["left_dataset"],
                v if d["left_dataset"] == u else u,
                d["pairs"], d["score"], d["evidence"], d["pk_side"],
                d["fanout"],
            )
            if pred.left_dataset != u:
                pred = pred.reversed()
            steps.append(pred)
        return steps

    def neighbours(self, dataset: str) -> list[str]:
        self._ensure_fresh()
        if dataset not in self._graph:
            raise DiscoveryError(f"unknown dataset {dataset!r}")
        return sorted(self._graph.neighbors(dataset))

    # -- connectivity ------------------------------------------------------
    def _ensure_components(self) -> None:
        if self._components_version == self._graph_version:
            return
        comps = sorted(
            (frozenset(c) for c in nx.connected_components(self._graph)),
            key=min,
        )
        self._components = tuple(comps)
        self._component_id = {
            ds: i for i, comp in enumerate(comps) for ds in comp
        }
        self._components_version = self._graph_version

    def components(self) -> tuple[frozenset[str], ...]:
        """Connected components of the relationship graph, deterministically
        ordered by smallest member.  Recomputed lazily only when the
        incrementally maintained graph actually changed."""
        self._ensure_fresh()
        self._ensure_components()
        return self._components

    def component_of(self, dataset: str) -> int | None:
        """Index of ``dataset``'s component in :meth:`components`, or None
        for datasets the graph does not know."""
        self._ensure_fresh()
        self._ensure_components()
        return self._component_id.get(dataset)

    def _ensure_fingerprints(self) -> None:
        if self._fingerprints_version == self._graph_version:
            return
        self._ensure_components()
        fps = []
        for comp in self._components:
            h = hashlib.blake2b(digest_size=16)
            for ds in sorted(comp):
                h.update(ds.encode())
                h.update(b"\x00")
                h.update(self._profiles[ds].content_hash.encode())
                h.update(b"\x01")
            fps.append(h.hexdigest())
        self._fingerprints = tuple(fps)
        self._fingerprint_set = frozenset(fps)
        self._fingerprints_version = self._graph_version

    def component_fingerprints(self) -> tuple[str, ...]:
        """One digest per component (aligned with :meth:`components`),
        covering its membership and every member's table content hash.

        A fingerprint changes exactly when some delta touched that
        component — a member arrived, departed, changed content/schema, or
        components merged or split.  Everything the builder derives for a
        component (candidates, edges, join paths) is a deterministic
        function of its members' profiles, so *per-delta changed-component
        reporting* reduces to diffing fingerprint sets across deltas:
        consumers snapshot the fingerprints their result depended on and
        later check them against :meth:`component_fingerprint_set` — the
        DoD plan cache keys its entries this way to survive unrelated
        seller churn."""
        self._ensure_fresh()
        self._ensure_fingerprints()
        return self._fingerprints

    def component_fingerprint_set(self) -> frozenset[str]:
        """The current fingerprints as a set (for O(1) staleness checks)."""
        self._ensure_fresh()
        self._ensure_fingerprints()
        return self._fingerprint_set

    def component_fingerprint_of(self, dataset: str) -> str | None:
        """Fingerprint of ``dataset``'s component, or None when unknown."""
        cid = self.component_of(dataset)
        if cid is None:
            return None
        self._ensure_fingerprints()
        return self._fingerprints[cid]

    def changed_components(
        self, fingerprints: Iterable[str]
    ) -> frozenset[str]:
        """Of the given (previously observed) fingerprints, the ones whose
        component has since changed — i.e. no current component carries
        that digest any more."""
        return frozenset(fingerprints) - self.component_fingerprint_set()

    def reachable(self, datasets) -> bool:
        """True when every named dataset lies in one connected component —
        i.e. a join tree spanning all of them can exist.  The DoD planner
        uses this to discard assignments before scoring them."""
        ids = set()
        for ds in datasets:
            cid = self.component_of(ds)
            if cid is None:
                return False
            ids.add(cid)
            if len(ids) > 1:
                return False
        return True

    # -- durable-store serialization hooks --------------------------------
    def registration_order(self, name: str) -> int:
        """The dataset's registration-order rank (fixes the canonical
        orientation of its candidates; persisted so replay re-registers in
        the original order)."""
        try:
            return self._order[name]
        except KeyError:
            raise DiscoveryError(
                f"dataset {name!r} is not indexed"
            ) from None

    def dataset_candidates(self, name: str) -> list[JoinCandidate]:
        """All stored candidates involving ``name`` in their *canonical*
        (registration-order) orientation — the exact dict payload, so a
        store can persist and later :meth:`restore_state` them verbatim."""
        self._ensure_fresh()
        return [
            self._candidates[k] for k in sorted(self._pairs_of.get(name, ()))
        ]

    def dataset_edges(self, name: str) -> list[JoinPredicate]:
        """Every relationship-graph predicate on a pair involving ``name``,
        in deterministic (neighbour, per-pair) order."""
        self._ensure_fresh()
        preds: list[JoinPredicate] = []
        if name not in self._graph:
            return preds
        for other in sorted(self._graph.neighbors(name)):
            preds.extend(self._pair_predicates(name, other))
        return preds

    def lsh_band_keys(self, signature) -> list[tuple[int, ...]]:
        """The banded bucket keys this builder derives for a signature
        (pure function of the signature and the banding configuration —
        what the durable store persists per column)."""
        bands = self.lsh_bands or signature.num_perm
        rows = signature.num_perm // bands
        return [
            tuple(
                int(x)
                for x in signature.signature[b * rows : (b + 1) * rows]
            )
            for b in range(bands)
        ]

    def restore_state(
        self,
        *,
        profiles: list[TableProfile],
        candidates: Iterable[JoinCandidate],
        edges: Iterable[JoinPredicate],
        graph_version: int,
    ) -> None:
        """Cold-start replay: adopt persisted derived state wholesale.

        ``profiles`` must arrive in original registration order (it fixes
        candidate orientation), ``candidates``/``edges`` are re-installed
        verbatim — no re-scoring — and LSH buckets are rebuilt from the
        restored signatures (band keys are a pure function of a signature,
        so the buckets are bit-identical to the persisted ones).  The graph
        version continues from the stored counter, preserving the platform's
        ``as_of`` monotonicity across restarts."""
        self._profiles = {p.dataset: p for p in profiles}
        self._order = {p.dataset: i for i, p in enumerate(profiles)}
        self._next_order = len(self._order)
        self._rebuild_buckets()
        self._candidates = {}
        self._pairs_of = {p.dataset: set() for p in profiles}
        for cand in candidates:
            self._store_candidate(cand)
        self._sorted = None
        self._graph = nx.MultiGraph()
        for p in profiles:
            self._graph.add_node(p.dataset, n_rows=p.n_rows)
        for pred in edges:
            self._insert_edge(pred)
        self._graph_version = int(graph_version)
        self._components_version = -1
        self._fingerprints_version = -1
        self._stale = False


def _dtypes_compatible(a: str, b: str) -> bool:
    numeric = {"int", "float"}
    if a in numeric and b in numeric:
        return True
    return a == b or "any" in (a, b)


#: a column whose values are ≥95% contained in the other side's is treated
#: as the referencing (FK) side of an inclusion dependency
_CONTAINMENT_THRESHOLD = 0.95
#: minimum containment gap before direction is called (symmetry guard)
_CONTAINMENT_GAP = 0.05


def _infer_pk_side(
    a: ColumnProfile, b: ColumnProfile, jaccard: float
) -> str | None:
    """Inclusion-dependency direction from containment asymmetry.

    From estimated Jaccard ``j`` and the sides' distinct counts ``da, db``,
    the intersection size is ``j/(1+j) * (da+db)`` and per-side containments
    follow.  When one side is essentially contained in the other (>= 0.95),
    the gap is material, and the containing column is key-like, the
    containing side is the referenced (PK) dataset — the PK→FK orientation
    the DoD engine can exploit.  Purely profile-derived, so incremental and
    full-rebuild maintenance agree.
    """
    da, db = a.categorical.distinct, b.categorical.distinct
    if jaccard <= 0.0 or da == 0 or db == 0:
        return None
    inter = jaccard / (1.0 + jaccard) * (da + db)
    cont_a = min(1.0, inter / da)  # fraction of a's values appearing in b
    cont_b = min(1.0, inter / db)
    if (
        cont_a >= _CONTAINMENT_THRESHOLD
        and cont_a - cont_b >= _CONTAINMENT_GAP
        and b.looks_like_key
    ):
        return b.dataset
    if (
        cont_b >= _CONTAINMENT_THRESHOLD
        and cont_b - cont_a >= _CONTAINMENT_GAP
        and a.looks_like_key
    ):
        return a.dataset
    return None
