"""The Index Builder (Fig. 3): join candidates and the relationship graph.

Section 5.2: "the index builder materializes join paths between files, and
it identifies candidate functions to map attributes to each other; i.e., it
facilitates the DoD's job.  The index builder keeps indexes up-to-date as the
output schema changes."

Join candidates are proposed from three signals and scored in [0, 1]:

* **value overlap** — MinHash Jaccard between column signatures,
* **semantic tags** — columns sharing an explicit semantic annotation,
* **name similarity** — normalized column-name distance,

gated on dtype compatibility and key-likeness of at least one side.  The
relationship graph is a networkx graph over datasets whose edges carry the
best join predicate; the DoD engine searches it for join paths.

Maintenance is **incremental** by default: the builder keeps a persistent
:class:`~repro.sketches.lsh.LSHIndex` over column MinHash signatures plus a
semantic-tag inverted index, and on every :class:`MetadataDelta` re-scores
only the changed dataset's columns against their bucketed neighbours,
patching candidates and the graph in place — removals prune, updates
re-score.  With the default single-row banding the neighbour set provably
covers every pair the exhaustive scorer would emit (any candidate needs
either estimated overlap > 0 or a shared semantic tag), so incremental and
full-rebuild modes produce identical output.  The O(C²) full rebuild stays
available as the reference oracle behind ``incremental=False``.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import DiscoveryError
from ..sketches import LSHIndex
from .metadata import MetadataDelta, MetadataEngine
from .profiler import ColumnProfile, TableProfile, name_similarity


@dataclass(frozen=True)
class JoinCandidate:
    """A scored hypothesis that two columns join."""

    left_dataset: str
    left_column: str
    right_dataset: str
    right_column: str
    score: float
    evidence: str  # "overlap" | "semantic" | "name"

    @property
    def pair(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return ((self.left_dataset, self.left_column),
                (self.right_dataset, self.right_column))

    def reversed(self) -> "JoinCandidate":
        return JoinCandidate(
            self.right_dataset, self.right_column,
            self.left_dataset, self.left_column,
            self.score, self.evidence,
        )


def _candidate_sort_key(c: JoinCandidate) -> tuple:
    """Deterministic global order: best score first, then dataset names,
    then column names — ties between column pairs of the same dataset pair
    are stable."""
    return (-c.score, c.left_dataset, c.right_dataset,
            c.left_column, c.right_column)


class IndexBuilder:
    """Maintains join candidates + relationship graph over a MetadataEngine."""

    def __init__(
        self,
        engine: MetadataEngine,
        min_overlap: float = 0.5,
        min_name_similarity: float = 0.8,
        subscribe: bool = True,
        incremental: bool = True,
        lsh_bands: int | None = None,
    ):
        self.engine = engine
        self.min_overlap = min_overlap
        self.min_name_similarity = min_name_similarity
        #: patch on deltas (default) vs. full O(C²) rebuild on any change
        self.incremental = incremental
        #: LSH bands for neighbour bucketing; ``None`` means one row per
        #: band (exact recall — incremental output matches the oracle).
        #: Fewer bands trade recall for smaller buckets.
        self.lsh_bands = lsh_bands
        self._profiles: dict[str, TableProfile] = {}
        #: registration order, mirroring the engine's lifecycle order; fixes
        #: candidate orientation identically to the full-rebuild enumeration
        self._order: dict[str, int] = {}
        self._next_order = 0
        self._lsh: LSHIndex | None = None
        self._semantic: dict[str, set[tuple[str, str]]] = {}
        self._candidates: dict[tuple, JoinCandidate] = {}
        self._pairs_of: dict[str, set[tuple]] = {}
        self._sorted: list[JoinCandidate] | None = None
        self._graph = nx.Graph()
        self._stale = True
        self._subscription = None
        if subscribe:
            self._subscription = engine.subscribe(self._on_delta)

    # -- lifecycle ---------------------------------------------------------
    def detach(self) -> None:
        """Unsubscribe from the metadata engine (idempotent): a discarded
        builder must not linger as a dangling listener.

        A detached builder is *frozen at detach-time state* — like one
        constructed with ``subscribe=False``, it no longer tracks engine
        changes; call :meth:`refresh` explicitly to resync."""
        if self._subscription is not None:
            self.engine.unsubscribe(self._subscription)
            self._subscription = None

    # -- incremental maintenance -----------------------------------------
    def _on_delta(self, delta: MetadataDelta) -> None:
        if not self.incremental:
            self._stale = True
            return
        if self._stale:
            return  # a pending full build will absorb this change
        if delta.kind == "removed":
            self._remove_dataset(delta.dataset)
        else:
            self._upsert_dataset(delta.snapshot.profile)

    def refresh(self) -> None:
        """Full rebuild from the engine's current profiles (the O(C²)
        reference oracle; also primes the incremental structures)."""
        profiles = self.engine.profiles()
        self._profiles = {p.dataset: p for p in profiles}
        self._order = {p.dataset: i for i, p in enumerate(profiles)}
        self._next_order = len(profiles)
        self._rebuild_buckets()
        columns: list[ColumnProfile] = [
            c for p in profiles for c in p.columns
        ]
        self._candidates = {}
        self._pairs_of = {p.dataset: set() for p in profiles}
        for i, a in enumerate(columns):
            for b in columns[i + 1 :]:
                if a.dataset == b.dataset:
                    continue
                cand = self._score_pair(a, b)
                if cand is not None:
                    self._store_candidate(cand)
        self._sorted = None
        self._graph = nx.Graph()
        for p in profiles:
            self._graph.add_node(p.dataset, n_rows=p.n_rows)
        for cand in self._sorted_candidates():
            u, v = cand.left_dataset, cand.right_dataset
            if (
                not self._graph.has_edge(u, v)
                or self._graph.edges[u, v]["score"] < cand.score
            ):
                self._graph.add_edge(
                    u, v,
                    left=cand.left_column,
                    right=cand.right_column,
                    score=cand.score,
                    evidence=cand.evidence,
                )
        self._stale = False

    def _rebuild_buckets(self) -> None:
        self._lsh = None
        self._semantic = {}
        for profile in self._profiles.values():
            self._bucket_columns(profile)

    def _bucket_columns(self, profile: TableProfile) -> None:
        for col in profile.columns:
            if self._lsh is None:
                num_perm = col.signature.num_perm
                self._lsh = LSHIndex(
                    num_perm=num_perm, bands=self.lsh_bands or num_perm
                )
            self._lsh.add(col.key, col.signature)
            if col.semantic is not None:
                self._semantic.setdefault(col.semantic, set()).add(col.key)

    def _unbucket_columns(self, profile: TableProfile) -> None:
        for col in profile.columns:
            self._lsh.remove(col.key)
            if col.semantic is not None:
                tagged = self._semantic.get(col.semantic)
                if tagged is not None:
                    tagged.discard(col.key)
                    if not tagged:
                        del self._semantic[col.semantic]

    def _upsert_dataset(self, profile: TableProfile) -> None:
        name = profile.dataset
        if name in self._profiles:
            self._drop_derived_state(name)
            self._profiles[name] = profile  # dict position preserved
        else:
            self._profiles[name] = profile
            self._order[name] = self._next_order
            self._next_order += 1
        self._bucket_columns(profile)
        self._pairs_of.setdefault(name, set())
        self._graph.add_node(name, n_rows=profile.n_rows)
        touched: set[str] = set()
        for col in profile.columns:
            for other_key in self._neighbour_keys(col):
                other_ds, other_col = other_key
                if other_ds == name:
                    continue
                other = self._profiles[other_ds].column(other_col)
                a, b = self._oriented(col, other)
                cand = self._score_pair(a, b)
                if cand is not None:
                    self._store_candidate(cand)
                    touched.add(other_ds)
        self._sorted = None
        for other_ds in touched:
            self._rebuild_edge(name, other_ds)

    def _remove_dataset(self, name: str) -> None:
        if name not in self._profiles:
            return
        self._drop_derived_state(name)
        del self._profiles[name]
        del self._order[name]
        self._sorted = None

    def _drop_derived_state(self, name: str) -> None:
        """Prune buckets, candidates and graph edges touching ``name``."""
        self._unbucket_columns(self._profiles[name])
        for pair_key in self._pairs_of.pop(name, ()):
            cand = self._candidates.pop(pair_key, None)
            if cand is None:
                continue
            other = (
                cand.right_dataset
                if cand.left_dataset == name
                else cand.left_dataset
            )
            self._pairs_of[other].discard(pair_key)
        if name in self._graph:
            self._graph.remove_node(name)
        self._sorted = None

    def _neighbour_keys(self, col: ColumnProfile) -> set[tuple[str, str]]:
        """Columns that could form a candidate with ``col``: LSH collisions
        (any pair with estimated overlap > 0 under single-row banding) plus
        same-semantic columns.  Falls back to every indexed column when
        ``min_overlap <= 0`` (the overlap gate then prunes nothing)."""
        if self.min_overlap <= 0:
            return set(self._lsh.keys())
        keys = self._lsh.candidates(col.signature)
        if col.semantic is not None:
            keys |= self._semantic.get(col.semantic, set())
        keys.discard(col.key)
        return keys

    def _oriented(
        self, a: ColumnProfile, b: ColumnProfile
    ) -> tuple[ColumnProfile, ColumnProfile]:
        """Left/right orientation identical to the full-rebuild enumeration:
        earlier-registered dataset (then earlier schema column) is left."""
        ka = (self._order[a.dataset], self._column_index(a))
        kb = (self._order[b.dataset], self._column_index(b))
        return (a, b) if ka < kb else (b, a)

    def _column_index(self, col: ColumnProfile) -> int:
        columns = self._profiles[col.dataset].columns
        for i, c in enumerate(columns):
            if c.column == col.column:
                return i
        raise DiscoveryError(
            f"column {col.column!r} missing from {col.dataset!r} profile"
        )

    def _store_candidate(self, cand: JoinCandidate) -> None:
        pair_key = (cand.left_dataset, cand.left_column,
                    cand.right_dataset, cand.right_column)
        self._candidates[pair_key] = cand
        self._pairs_of.setdefault(cand.left_dataset, set()).add(pair_key)
        self._pairs_of.setdefault(cand.right_dataset, set()).add(pair_key)

    def _rebuild_edge(self, u: str, v: str) -> None:
        """Recompute the best-candidate edge between two datasets in place."""
        pair_keys = self._pairs_of.get(u, set()) & self._pairs_of.get(v, set())
        if self._graph.has_edge(u, v):
            self._graph.remove_edge(u, v)
        if not pair_keys:
            return
        best = min(
            (self._candidates[k] for k in pair_keys), key=_candidate_sort_key
        )
        self._graph.add_edge(
            best.left_dataset, best.right_dataset,
            left=best.left_column,
            right=best.right_column,
            score=best.score,
            evidence=best.evidence,
        )

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.refresh()

    def _score_pair(
        self, a: ColumnProfile, b: ColumnProfile
    ) -> JoinCandidate | None:
        if not _dtypes_compatible(a.dtype, b.dtype):
            return None
        joinable = a.looks_like_key or b.looks_like_key
        overlap = a.signature.jaccard(b.signature)
        if joinable and overlap >= self.min_overlap:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column, overlap, "overlap"
            )
        if (
            a.semantic is not None
            and a.semantic == b.semantic
            and joinable
        ):
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                max(overlap, 0.75), "semantic",
            )
        name_sim = name_similarity(a.column, b.column)
        if joinable and name_sim >= self.min_name_similarity and overlap > 0.1:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                0.5 * name_sim + 0.5 * overlap, "name",
            )
        return None

    def _sorted_candidates(self) -> list[JoinCandidate]:
        if self._sorted is None:
            self._sorted = sorted(
                self._candidates.values(), key=_candidate_sort_key
            )
        return self._sorted

    # -- queries -----------------------------------------------------------
    def join_candidates(
        self, dataset: str | None = None, min_score: float = 0.0
    ) -> list[JoinCandidate]:
        self._ensure_fresh()
        out = []
        for c in self._sorted_candidates():
            if c.score < min_score:
                continue
            if dataset is None:
                out.append(c)
            elif c.left_dataset == dataset:
                out.append(c)
            elif c.right_dataset == dataset:
                out.append(c.reversed())
        return out

    @property
    def graph(self) -> nx.Graph:
        self._ensure_fresh()
        return self._graph

    def join_path(self, source: str, target: str) -> list[JoinCandidate]:
        """Cheapest join path between two datasets (weight = 1 - score)."""
        self._ensure_fresh()
        g = self._graph
        if source not in g or target not in g:
            raise DiscoveryError(
                f"unknown dataset in join_path: {source!r} or {target!r}"
            )
        try:
            nodes = nx.shortest_path(
                g, source, target,
                weight=lambda u, v, d: 1.0 - d["score"],
            )
        except nx.NetworkXNoPath:
            raise DiscoveryError(
                f"no join path between {source!r} and {target!r}"
            ) from None
        steps = []
        for u, v in zip(nodes, nodes[1:]):
            d = g.edges[u, v]
            # edge attributes are stored from the build-time orientation
            cand = JoinCandidate(u, d["left"], v, d["right"], d["score"],
                                 d["evidence"])
            if not self._orientation_matches(u, d):
                cand = JoinCandidate(u, d["right"], v, d["left"], d["score"],
                                     d["evidence"])
            steps.append(cand)
        return steps

    def _orientation_matches(self, u: str, edge_data: dict) -> bool:
        """True if edge attribute 'left' is a column of dataset ``u``."""
        profile = self._profiles[u]
        return any(c.column == edge_data["left"] for c in profile.columns)

    def neighbours(self, dataset: str) -> list[str]:
        self._ensure_fresh()
        if dataset not in self._graph:
            raise DiscoveryError(f"unknown dataset {dataset!r}")
        return sorted(self._graph.neighbors(dataset))


def _dtypes_compatible(a: str, b: str) -> bool:
    numeric = {"int", "float"}
    if a in numeric and b in numeric:
        return True
    return a == b or "any" in (a, b)
