"""The Index Builder (Fig. 3): join candidates and the relationship graph.

Section 5.2: "the index builder materializes join paths between files, and
it identifies candidate functions to map attributes to each other; i.e., it
facilitates the DoD's job.  The index builder keeps indexes up-to-date as the
output schema changes."

Join candidates are proposed from three signals and scored in [0, 1]:

* **value overlap** — MinHash Jaccard between column signatures,
* **semantic tags** — columns sharing an explicit semantic annotation,
* **name similarity** — normalized column-name distance,

gated on dtype compatibility and key-likeness of at least one side.  The
relationship graph is a networkx graph over datasets whose edges carry the
best join predicate; the DoD engine searches it for join paths.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from ..errors import DiscoveryError
from .metadata import ContextSnapshot, MetadataEngine
from .profiler import ColumnProfile, name_similarity


@dataclass(frozen=True)
class JoinCandidate:
    """A scored hypothesis that two columns join."""

    left_dataset: str
    left_column: str
    right_dataset: str
    right_column: str
    score: float
    evidence: str  # "overlap" | "semantic" | "name"

    @property
    def pair(self) -> tuple[tuple[str, str], tuple[str, str]]:
        return ((self.left_dataset, self.left_column),
                (self.right_dataset, self.right_column))

    def reversed(self) -> "JoinCandidate":
        return JoinCandidate(
            self.right_dataset, self.right_column,
            self.left_dataset, self.left_column,
            self.score, self.evidence,
        )


class IndexBuilder:
    """Maintains join candidates + relationship graph over a MetadataEngine."""

    def __init__(
        self,
        engine: MetadataEngine,
        min_overlap: float = 0.5,
        min_name_similarity: float = 0.8,
        subscribe: bool = True,
    ):
        self.engine = engine
        self.min_overlap = min_overlap
        self.min_name_similarity = min_name_similarity
        self._candidates: list[JoinCandidate] = []
        self._graph = nx.Graph()
        self._stale = True
        if subscribe:
            engine.subscribe(self._on_snapshot)

    # -- incremental maintenance -----------------------------------------
    def _on_snapshot(self, _snapshot: ContextSnapshot) -> None:
        self._stale = True

    def refresh(self) -> None:
        """Rebuild candidates/graph from the engine's current profiles."""
        profiles = self.engine.profiles()
        columns: list[ColumnProfile] = [
            c for p in profiles for c in p.columns
        ]
        self._candidates = []
        for i, a in enumerate(columns):
            for b in columns[i + 1 :]:
                if a.dataset == b.dataset:
                    continue
                cand = self._score_pair(a, b)
                if cand is not None:
                    self._candidates.append(cand)
        self._candidates.sort(
            key=lambda c: (-c.score, c.left_dataset, c.right_dataset)
        )
        self._graph = nx.Graph()
        for p in profiles:
            self._graph.add_node(p.dataset, n_rows=p.n_rows)
        for cand in self._candidates:
            u, v = cand.left_dataset, cand.right_dataset
            if (
                not self._graph.has_edge(u, v)
                or self._graph.edges[u, v]["score"] < cand.score
            ):
                self._graph.add_edge(
                    u, v,
                    left=cand.left_column,
                    right=cand.right_column,
                    score=cand.score,
                    evidence=cand.evidence,
                )
        self._stale = False

    def _ensure_fresh(self) -> None:
        if self._stale:
            self.refresh()

    def _score_pair(
        self, a: ColumnProfile, b: ColumnProfile
    ) -> JoinCandidate | None:
        if not _dtypes_compatible(a.dtype, b.dtype):
            return None
        joinable = a.looks_like_key or b.looks_like_key
        overlap = a.signature.jaccard(b.signature)
        if joinable and overlap >= self.min_overlap:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column, overlap, "overlap"
            )
        if (
            a.semantic is not None
            and a.semantic == b.semantic
            and joinable
        ):
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                max(overlap, 0.75), "semantic",
            )
        name_sim = name_similarity(a.column, b.column)
        if joinable and name_sim >= self.min_name_similarity and overlap > 0.1:
            return JoinCandidate(
                a.dataset, a.column, b.dataset, b.column,
                0.5 * name_sim + 0.5 * overlap, "name",
            )
        return None

    # -- queries -----------------------------------------------------------
    def join_candidates(
        self, dataset: str | None = None, min_score: float = 0.0
    ) -> list[JoinCandidate]:
        self._ensure_fresh()
        out = []
        for c in self._candidates:
            if c.score < min_score:
                continue
            if dataset is None:
                out.append(c)
            elif c.left_dataset == dataset:
                out.append(c)
            elif c.right_dataset == dataset:
                out.append(c.reversed())
        return out

    @property
    def graph(self) -> nx.Graph:
        self._ensure_fresh()
        return self._graph

    def join_path(self, source: str, target: str) -> list[JoinCandidate]:
        """Cheapest join path between two datasets (weight = 1 - score)."""
        self._ensure_fresh()
        g = self._graph
        if source not in g or target not in g:
            raise DiscoveryError(
                f"unknown dataset in join_path: {source!r} or {target!r}"
            )
        try:
            nodes = nx.shortest_path(
                g, source, target,
                weight=lambda u, v, d: 1.0 - d["score"],
            )
        except nx.NetworkXNoPath:
            raise DiscoveryError(
                f"no join path between {source!r} and {target!r}"
            ) from None
        steps = []
        for u, v in zip(nodes, nodes[1:]):
            d = g.edges[u, v]
            # edge attributes are stored from the refresh()-time orientation
            cand = JoinCandidate(u, d["left"], v, d["right"], d["score"],
                                 d["evidence"])
            if not self._orientation_matches(u, d):
                cand = JoinCandidate(u, d["right"], v, d["left"], d["score"],
                                     d["evidence"])
            steps.append(cand)
        return steps

    def _orientation_matches(self, u: str, edge_data: dict) -> bool:
        """True if edge attribute 'left' is a column of dataset ``u``."""
        profile = next(
            p for p in self.engine.profiles() if p.dataset == u
        )
        return any(c.column == edge_data["left"] for c in profile.columns)

    def neighbours(self, dataset: str) -> list[str]:
        self._ensure_fresh()
        if dataset not in self._graph:
            raise DiscoveryError(f"unknown dataset {dataset!r}")
        return sorted(self._graph.neighbors(dataset))


def _dtypes_compatible(a: str, b: str) -> bool:
    numeric = {"int", "float"}
    if a in numeric and b in numeric:
        return True
    return a == b or "any" in (a, b)
