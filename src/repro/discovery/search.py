"""Data discovery queries: keyword and schema (query-by-example) search.

The arbiter "receives datasets from sellers, some of whom may be
organizations with thousands of datasets.  The goal of data discovery is to
identify a few datasets that are relevant to a WTP-function among thousands
of diverse heterogeneous datasets" (Section 5).  The buyer's WTP-function
names desired attributes; :class:`DiscoveryEngine` ranks datasets by how
well their columns cover that request.
"""

from __future__ import annotations

from dataclasses import dataclass

from .index import IndexBuilder
from .metadata import MetadataEngine
from .profiler import ColumnProfile, name_similarity


@dataclass(frozen=True)
class AttributeMatch:
    """One requested attribute resolved to a concrete column."""

    requested: str
    dataset: str
    column: str
    score: float


@dataclass(frozen=True)
class DatasetHit:
    dataset: str
    score: float
    matches: tuple[AttributeMatch, ...]


class DiscoveryEngine:
    """Keyword + schema search over the registered corpus.

    Attribute-resolution results are memoized and invalidated by the
    metadata engine's typed deltas, so the DoD engine's repeated lookups
    against an unchanged corpus don't re-scan every profile.
    """

    def __init__(
        self, engine: MetadataEngine, index: IndexBuilder,
        subscribe: bool = True,
    ):
        self.engine = engine
        self.index = index
        self._match_cache: dict[tuple[str, float], list[AttributeMatch]] = {}
        self._subscription = (
            engine.subscribe(self._on_delta) if subscribe else None
        )

    def _on_delta(self, _delta) -> None:
        self._match_cache.clear()

    def detach(self) -> None:
        """Unsubscribe from the metadata engine (idempotent).

        The memo cache is dropped with the subscription: without delta
        invalidation it could serve stale matches, so post-detach lookups
        always recompute against the live corpus.
        """
        if self._subscription is not None:
            self.engine.unsubscribe(self._subscription)
            self._subscription = None
        self._match_cache.clear()

    # -- attribute resolution ---------------------------------------------
    def match_attribute(
        self, requested: str, min_score: float = 0.55
    ) -> list[AttributeMatch]:
        """All columns matching one requested attribute name/semantic."""
        cache_key = (requested, min_score)
        cached = self._match_cache.get(cache_key)
        if cached is not None:
            return list(cached)
        out = []
        for profile in self.engine.profiles():
            for col in profile.columns:
                score = self._attribute_score(requested, col)
                if score >= min_score:
                    out.append(
                        AttributeMatch(requested, col.dataset, col.column, score)
                    )
        out.sort(key=lambda m: (-m.score, m.dataset, m.column))
        if self._subscription is not None:
            self._match_cache[cache_key] = out
        return list(out)

    @staticmethod
    def _attribute_score(requested: str, col: ColumnProfile) -> float:
        if col.semantic is not None and requested.lower() == col.semantic.lower():
            return 1.0
        return name_similarity(requested, col.column)

    # -- schema search (query-by-example) -----------------------------------
    def search_schema(
        self, attributes: list[str], min_score: float = 0.55
    ) -> list[DatasetHit]:
        """Rank datasets by coverage of the requested attribute list."""
        hits: dict[str, list[AttributeMatch]] = {}
        for attr in attributes:
            for m in self.match_attribute(attr, min_score=min_score):
                hits.setdefault(m.dataset, []).append(m)
        out = []
        for dataset, matches in hits.items():
            best: dict[str, AttributeMatch] = {}
            for m in matches:
                if m.requested not in best or m.score > best[m.requested].score:
                    best[m.requested] = m
            coverage = sum(m.score for m in best.values()) / len(attributes)
            out.append(
                DatasetHit(dataset, coverage, tuple(
                    sorted(best.values(), key=lambda m: m.requested)
                ))
            )
        out.sort(key=lambda h: (-h.score, h.dataset))
        return out

    # -- keyword search ------------------------------------------------------
    def search_keyword(self, keyword: str, limit: int = 10) -> list[DatasetHit]:
        """Match a keyword against column names and frequent values."""
        needle = keyword.lower()
        out = []
        for profile in self.engine.profiles():
            score = 0.0
            matches: list[AttributeMatch] = []
            for col in profile.columns:
                s = name_similarity(needle, col.column)
                if col.semantic and needle == col.semantic.lower():
                    s = 1.0
                for value, _count in col.categorical.top:
                    if needle in str(value).lower():
                        s = max(s, 0.9)
                if s >= 0.55:
                    matches.append(
                        AttributeMatch(keyword, col.dataset, col.column, s)
                    )
                    score = max(score, s)
            if matches:
                out.append(DatasetHit(profile.dataset, score, tuple(matches)))
        out.sort(key=lambda h: (-h.score, h.dataset))
        return out[:limit]

    # -- attribute coverage planning (feeds the DoD engine) ------------------
    def cover_attributes(
        self, attributes: list[str], min_score: float = 0.55
    ) -> dict[str, AttributeMatch | None]:
        """Best match per requested attribute (None when nothing matches)."""
        out: dict[str, AttributeMatch | None] = {}
        for attr in attributes:
            matches = self.match_attribute(attr, min_score=min_score)
            out[attr] = matches[0] if matches else None
        return out
