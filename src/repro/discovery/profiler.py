"""Column/table profiling — the Processor stage of the metadata engine.

Section 5.1: each dataset is divided into *data items*; a column data item
yields a value-distribution signature.  A :class:`ColumnProfile` packages the
MinHash signature plus summary statistics; a :class:`TableProfile` is the
per-dataset bundle stored inside context snapshots.

Profiling is **columnar by default**: the relation's memoized
:class:`~repro.relation.columnar.ColumnarView` computes one canonical
``repr`` per value, and that single pass feeds every consumer — the
column content hash digests the view's concatenated separator-delimited
byte buffer in one C-level BLAKE2b call, the MinHash signature folds the
distinct reprs through the vectorized token hasher, and the categorical
summary counts the same cached strings.  The original value-at-a-time
implementations are kept as the **scalar reference oracle** behind
``columnar=False`` (or :func:`set_columnar_profiling`); both paths produce
bit-identical profiles, which the test suite asserts property-style over
randomized dtypes.
"""

from __future__ import annotations

import hashlib
from collections import Counter
from dataclasses import dataclass
from difflib import SequenceMatcher
from functools import cached_property, lru_cache
from heapq import nsmallest

import numpy as np

from ..relation import Relation
from ..relation.columnar import pack_value, unpack_value
from ..sketches import CategoricalSummary, MinHash, NumericSummary
from ..sketches.minhash import _hash_bytes_raw, hash_packed

#: module default for the columnar fast path; flip with
#: :func:`set_columnar_profiling` to fall back to the scalar reference
#: oracle globally (e.g. when benchmarking one against the other)
_COLUMNAR_DEFAULT = True


def set_columnar_profiling(enabled: bool) -> bool:
    """Set the module-wide default profiling mode; returns the old value."""
    global _COLUMNAR_DEFAULT
    previous = _COLUMNAR_DEFAULT
    _COLUMNAR_DEFAULT = bool(enabled)
    return previous


def _use_columnar(flag: bool | None) -> bool:
    return _COLUMNAR_DEFAULT if flag is None else flag


@dataclass(frozen=True)
class ColumnProfile:
    """Everything the index builder needs to know about one column."""

    dataset: str
    column: str
    dtype: str
    semantic: str | None
    signature: MinHash
    numeric: NumericSummary | None
    categorical: CategoricalSummary
    distinct_fraction: float
    #: hash of the column's raw values; lets re-profiling skip unchanged
    #: columns when a dataset version only touches some of them
    content_hash: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.dataset, self.column)

    @property
    def is_numeric(self) -> bool:
        return self.dtype in ("int", "float")

    @property
    def looks_like_key(self) -> bool:
        """High distinctness + non-trivial size: a join-key candidate."""
        return self.distinct_fraction > 0.85 and self.categorical.count >= 2


@dataclass(frozen=True)
class TableProfile:
    dataset: str
    n_rows: int
    content_hash: str
    columns: tuple[ColumnProfile, ...]

    @cached_property
    def _by_name(self) -> dict[str, ColumnProfile]:
        # cached_property writes straight into __dict__, which a frozen
        # dataclass permits; lookups after the first are O(1) even on
        # wide tables
        return {c.column: c for c in self.columns}

    def column(self, name: str) -> ColumnProfile:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(
                f"no profile for column {name!r} of {self.dataset!r}"
            ) from None


def column_profile_record(profile: ColumnProfile) -> dict:
    """JSON-ready record of one column profile, minus the MinHash signature
    (the durable store carries that separately as a binary payload via
    :meth:`~repro.sketches.MinHash.to_bytes`)."""
    return {
        "column": profile.column,
        "dtype": profile.dtype,
        "semantic": profile.semantic,
        "distinct_fraction": profile.distinct_fraction,
        "content_hash": profile.content_hash,
        "numeric": (
            None if profile.numeric is None else profile.numeric.to_dict()
        ),
        "categorical": profile.categorical.to_dict(),
    }


def column_profile_from_record(
    dataset: str, record: dict, signature: MinHash
) -> ColumnProfile:
    """Inverse of :func:`column_profile_record`: bit-identical fields, with
    the signature supplied from its own round-tripped payload."""
    numeric = record.get("numeric")
    return ColumnProfile(
        dataset=dataset,
        column=record["column"],
        dtype=record["dtype"],
        semantic=record["semantic"],
        signature=signature,
        numeric=None if numeric is None else NumericSummary.from_dict(numeric),
        categorical=CategoricalSummary.from_dict(record["categorical"]),
        distinct_fraction=float(record["distinct_fraction"]),
        content_hash=record["content_hash"],
    )


def column_content_hash(
    relation: Relation, name: str, *, columnar: bool | None = None,
    scheme: str = "classic",
) -> str:
    """Deterministic hash of one column's values (order-sensitive).

    Under the classic scheme both paths digest the same ``repr``-based
    separator-delimited byte stream (columnar in one C-level update, the
    scalar reference value-by-value), hence bit-identical digests.

    Under the ``"oph"`` scheme the stream is **repr-free** where the dtype
    allows: packed canonical rows for int/float/bool columns, a
    length-prefixed UTF-8 concatenation for str columns (both with scalar
    reference loops that are bit-identical to the vectorized buffers);
    ``any``-typed and subclass-bearing columns keep the repr stream.
    Scheme-dependent by design — the two schemes hash different canonical
    encodings, and the store refuses to mix them.
    """
    if scheme == "oph":
        return _oph_column_hash(relation, name, _use_columnar(columnar))
    if _use_columnar(columnar):
        return hashlib.blake2b(
            relation.columnar.canonical_bytes(name), digest_size=16
        ).hexdigest()
    h = hashlib.blake2b(digest_size=16)
    for v in relation.column(name):
        h.update(repr(v).encode())
        h.update(b"\x1f")
    return h.hexdigest()


def _oph_column_hash(relation: Relation, name: str, columnar: bool) -> str:
    """Repr-free column hash (the ``"oph"`` canonical stream), memoized on
    the columnar view — the table digest computes every column's hash up
    front and the per-column profiles reuse them."""
    view = relation.columnar
    cached = view.oph_hashes.get(name)
    if cached is not None:
        return cached
    dtype = relation.schema[name].dtype
    h = hashlib.blake2b(digest_size=16)
    if view.packable(name):
        if columnar:
            h.update(view.packed_matrix(name).tobytes())
        else:
            for v in view.values(name):
                h.update(pack_value(v))
    elif dtype == "str" and (stream := view.utf8_stream(name)) is not None:
        # the join-validated stream doubles as the branch gate (shared
        # with the scalar oracle via the view's cached verdict)
        if columnar:
            lens, payload = stream
            h.update(lens.astype("<i8").tobytes())
            h.update(payload)
        else:
            values = view.values(name)
            lens = np.fromiter(
                (-1 if v is None else len(v) for v in values),
                dtype=np.int64, count=len(values),
            )
            h.update(lens.astype("<i8").tobytes())
            for v in values:
                if v is not None:
                    h.update(v.encode())
    else:
        # no sound repr-free encoding (any-typed or subclass-bearing
        # column): fall back to the classic repr stream
        digest = column_content_hash(
            relation, name, columnar=columnar, scheme="classic"
        )
        view.oph_hashes[name] = digest
        return digest
    digest = h.hexdigest()
    view.oph_hashes[name] = digest
    return digest


def table_content_hash(
    relation: Relation, *, columnar: bool | None = None,
    scheme: str = "classic",
) -> str:
    """Scheme-aware digest of a whole relation, used for change detection
    and component fingerprints.

    Classic delegates to :meth:`Relation.content_hash` (order-insensitive
    sorted-row repr stream, memoized on the relation).  ``"oph"`` digests
    the schema plus every column's repr-free content hash — no reprs, no
    row materialization beyond the column transpose; order-*sensitive*,
    which is sound everywhere the hash is consumed (equality means
    unchanged, and replay compares hashes produced by the same scheme).
    """
    if scheme != "oph":
        return relation.content_hash()
    relation.columnar.materialize()  # one transpose for all columns
    h = hashlib.blake2b(digest_size=32)
    h.update(repr(relation.schema).encode())
    h.update(str(len(relation)).encode())
    for name in relation.schema.names:
        h.update(_oph_column_hash(relation, name, _use_columnar(columnar)).encode())
    return h.hexdigest()


def _packed_display(row: bytes, dtype: str) -> str:
    """Display key for one distinct packed row (categorical summaries).

    Dtype-aware so pure int/bool columns render exactly like the classic
    scheme; in float columns an integral token renders as its float form
    (``1`` and ``1.0`` share one canonical token by design).  Irreversible
    ``r`` rows (ints beyond int64) render as a tagged hex digest."""
    if row[0] == 0x72:  # 'r'
        return "int#" + row[1:].hex()
    v = unpack_value(row)
    if dtype == "float" and type(v) is int:
        v = float(v)
    return str(v)


def _categorical_of_packed(
    uniq: np.ndarray, counts: np.ndarray, nulls: int, dtype: str,
    top_k: int = 10,
) -> CategoricalSummary:
    """Categorical summary straight from the packed distinct rows.

    Replicates :meth:`CategoricalSummary.of_counts` — same branch
    structure, same ``(-count, display)`` order — but materializes
    display strings only for the rows that can actually place in the
    top-k (display keys are injective per column, so the count partition
    narrows the candidates before any ``unpack``/``str`` work).  The
    scalar oracle builds the full display dict and goes through
    ``of_counts``; tests assert both produce identical summaries."""
    n = len(counts)
    count = int(counts.sum())
    if n <= max(32, 4 * top_k):
        items = [
            (_packed_display(uniq[i].tobytes(), dtype), int(counts[i]))
            for i in range(n)
        ]
        items.sort(key=lambda kv: (-kv[1], kv[0]))
        return CategoricalSummary(
            count=count, nulls=nulls, distinct=n, top=tuple(items[:top_k])
        )
    if count == n:
        top = tuple(
            (k, 1) for k in nsmallest(
                top_k,
                (_packed_display(r.tobytes(), dtype) for r in uniq),
            )
        )
        return CategoricalSummary(
            count=count, nulls=nulls, distinct=n, top=top
        )
    thresh = int(np.partition(counts, n - top_k)[n - top_k])
    candidates = np.nonzero(counts >= thresh)[0]
    above = [
        (_packed_display(uniq[i].tobytes(), dtype), int(counts[i]))
        for i in candidates if counts[i] > thresh
    ]
    above.sort(key=lambda kv: (-kv[1], kv[0]))
    at = nsmallest(
        top_k - len(above),
        (
            _packed_display(uniq[i].tobytes(), dtype)
            for i in candidates if counts[i] == thresh
        ),
    )
    top = tuple(above + [(k, thresh) for k in at])
    return CategoricalSummary(count=count, nulls=nulls, distinct=n, top=top)


def _profile_column_oph(
    relation: Relation, name: str, num_perm: int, content_hash: str,
    columnar: bool,
) -> ColumnProfile:
    """The repr-free profiling path of the ``"oph"`` scheme.

    Packable (exact int/float/bool) columns sketch their distinct packed
    canonical rows via :func:`hash_packed`; exact str columns sketch the
    raw values (no repr quoting).  Columns without a sound repr-free
    encoding fall back to repr tokens — still folded through the OPH
    sketch, so every signature in an OPH corpus shares one scheme.
    ``columnar=False`` is the scalar reference oracle: per-value
    ``pack_value``/``_hash_bytes_raw`` loops, bit-identical signatures.
    """
    col = relation.schema[name]
    view = relation.columnar
    nulls = view.null_count(name)
    n_non_null = len(view.values(name)) - nulls
    numeric = None
    signature = MinHash(num_perm=num_perm, scheme="oph")
    if view.packable(name):
        if columnar:
            uniq, counts = view.packed_distinct(name)
            signature.update_hashes(hash_packed(uniq), len(uniq))
            categorical = _categorical_of_packed(
                uniq, counts, nulls, col.dtype
            )
        else:
            packed = Counter(
                pack_value(v)
                for v in view.values(name) if v is not None
            )
            uniq = sorted(packed)  # deterministic fold order (irrelevant
            # to the signature, which is order-insensitive by min-fold)
            signature.update_hashes(
                np.fromiter(
                    map(_hash_bytes_raw, uniq), dtype=np.int64,
                    count=len(uniq),
                ),
                len(uniq),
            )
            categorical = CategoricalSummary.of_counts(
                {_packed_display(r, col.dtype): packed[r] for r in uniq},
                nulls,
            )
        distinct_count = len(uniq)
        if col.dtype in ("int", "float"):
            numeric = NumericSummary.of_array(view.numeric_array(name), nulls)
    elif col.dtype == "str" and view.utf8_able(name):
        if columnar:
            counts = view.value_counts_any(name)
            tokens = (
                set(counts) if counts is not None
                else {v for v in view.values(name) if v is not None}
            )
            signature.update_tokens(tokens)
            freq = counts if counts is not None else Counter(
                v for v in view.values(name) if v is not None
            )
        else:
            tokens = {v for v in view.values(name) if v is not None}
            signature.update_tokens(tokens, vectorize=False)
            freq = Counter(
                v for v in view.values(name) if v is not None
            )
        distinct_count = len(tokens)
        categorical = CategoricalSummary.of_counts(freq, nulls)
    else:
        # any-typed / subclass-bearing: repr tokens, OPH fold
        if columnar:
            distinct = view.distinct_reprs(name)
            signature.update_tokens(distinct)
            non_null, _ = view.non_null(name)
            freq = Counter(map(str, non_null))
        else:
            values = relation.column(name)
            non_null = [v for v in values if v is not None]
            distinct = {repr(v) for v in non_null}
            signature.update_tokens(distinct, vectorize=False)
            freq = Counter(map(str, non_null))
        distinct_count = len(distinct)
        if col.dtype in ("int", "float"):
            numeric = NumericSummary.of_array(view.numeric_array(name), nulls)
        categorical = CategoricalSummary.of_counts(freq, nulls)
    return ColumnProfile(
        dataset=relation.name,
        column=name,
        dtype=col.dtype,
        semantic=col.semantic,
        signature=signature,
        numeric=numeric,
        categorical=categorical,
        distinct_fraction=(
            (distinct_count / n_non_null) if n_non_null else 0.0
        ),
        content_hash=content_hash,
    )


def profile_column(
    relation: Relation, name: str, num_perm: int = 64,
    content_hash: str | None = None, *, columnar: bool | None = None,
    scheme: str = "classic",
) -> ColumnProfile:
    """Sketch one column; pass ``content_hash`` when already computed."""
    col = relation.schema[name]
    use_columnar = _use_columnar(columnar)
    if scheme == "oph":
        return _profile_column_oph(
            relation, name, num_perm,
            content_hash or column_content_hash(
                relation, name, columnar=use_columnar, scheme=scheme
            ),
            use_columnar,
        )
    if use_columnar:
        view = relation.columnar
        nulls = view.null_count(name)
        distinct = view.distinct_reprs(name)
        n_non_null = len(view.values(name)) - nulls
        signature = MinHash.of_tokens(distinct, num_perm=num_perm)
        numeric = None
        if col.dtype in ("int", "float"):
            numeric = NumericSummary.of_array(view.numeric_array(name), nulls)
        freq = view.categorical_counts(name)
        if freq is None:
            # no sound counting pass (float/any, tiny, or subclass-bearing
            # column): derive counts from the cached repr/value vectors —
            # the repr/str shortcuts apply only to exact builtin cells
            non_null, non_null_reprs = view.non_null(name)
            exact = view.values_exact(name)
            if (
                col.dtype == "float" and exact
                and len(distinct) == n_non_null
            ):
                # str == repr for floats, and an all-unique (key-like)
                # column needs no counting at all (repr is injective)
                freq = dict.fromkeys(distinct, 1)
            elif col.dtype in ("int", "float", "bool") and exact:
                freq = Counter(non_null_reprs)
            elif col.dtype == "str" and exact:
                freq = Counter(non_null)  # str(v) is v for str values
            else:
                freq = Counter(map(str, non_null))
        categorical = CategoricalSummary.of_counts(freq, nulls)
    else:
        values = relation.column(name)
        non_null = [v for v in values if v is not None]
        n_non_null = len(non_null)
        distinct = {repr(v) for v in non_null}
        signature = MinHash.of_tokens(
            distinct, num_perm=num_perm, vectorize=False
        )
        numeric = None
        if col.dtype in ("int", "float"):
            numeric = NumericSummary.of(values)
        categorical = CategoricalSummary.of(values)
    return ColumnProfile(
        dataset=relation.name,
        column=name,
        dtype=col.dtype,
        semantic=col.semantic,
        signature=signature,
        numeric=numeric,
        categorical=categorical,
        distinct_fraction=(len(distinct) / n_non_null) if n_non_null else 0.0,
        content_hash=content_hash or column_content_hash(
            relation, name, columnar=use_columnar
        ),
    )


def profile_table(
    relation: Relation,
    num_perm: int = 64,
    previous: TableProfile | None = None,
    *,
    columnar: bool | None = None,
    scheme: str = "classic",
) -> TableProfile:
    """Profile every column; with ``previous`` (the dataset's prior profile),
    columns whose values, dtype and semantic are unchanged reuse the old
    :class:`ColumnProfile` — no re-sketching — so incremental re-registration
    of a wide dataset only pays for the columns that actually moved.
    """
    prior = previous._by_name if previous is not None else {}
    if _use_columnar(columnar):
        relation.columnar.materialize()  # one transpose for all columns
    columns = []
    for name in relation.columns:
        col = relation.schema[name]
        old = prior.get(name)
        content_hash = column_content_hash(
            relation, name, columnar=columnar, scheme=scheme
        )
        if (
            old is not None
            and old.content_hash
            and old.dtype == col.dtype
            and old.semantic == col.semantic
            and old.signature.num_perm == num_perm
            and old.signature.scheme == scheme
            and old.content_hash == content_hash
        ):
            columns.append(old)
            continue
        columns.append(
            profile_column(
                relation, name, num_perm=num_perm, content_hash=content_hash,
                columnar=columnar, scheme=scheme,
            )
        )
    return TableProfile(
        dataset=relation.name,
        n_rows=len(relation),
        content_hash=table_content_hash(
            relation, columnar=columnar, scheme=scheme
        ),
        columns=tuple(columns),
    )


@lru_cache(maxsize=32768)
def _name_similarity_normalized(na: str, nb: str) -> float:
    """Similarity of two pre-normalized names, memoized process-wide: the
    index builder re-scores the same column-name pairs on every delta.  The
    ``SequenceMatcher`` ratio is only computed when its cheap upper bounds
    (``real_quick_ratio``/``quick_ratio``) show it could exceed the token
    Jaccard — the returned maximum is unchanged either way."""
    if na == nb:
        return 1.0
    tokens_a, tokens_b = set(na.split("_")), set(nb.split("_"))
    token_sim = (
        len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        if tokens_a | tokens_b
        else 0.0
    )
    if token_sim >= 1.0:
        return token_sim
    matcher = SequenceMatcher(None, na, nb)
    if (
        matcher.real_quick_ratio() <= token_sim
        or matcher.quick_ratio() <= token_sim
    ):
        return token_sim
    return max(token_sim, matcher.ratio())


def name_similarity(a: str, b: str) -> float:
    """Similarity of two column names in [0, 1] (case/sep-insensitive)."""
    return _name_similarity_normalized(
        a.lower().replace("-", "_").strip("_"),
        b.lower().replace("-", "_").strip("_"),
    )
