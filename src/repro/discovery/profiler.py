"""Column/table profiling — the Processor stage of the metadata engine.

Section 5.1: each dataset is divided into *data items*; a column data item
yields a value-distribution signature.  A :class:`ColumnProfile` packages the
MinHash signature plus summary statistics; a :class:`TableProfile` is the
per-dataset bundle stored inside context snapshots.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from difflib import SequenceMatcher

from ..relation import Relation
from ..sketches import CategoricalSummary, MinHash, NumericSummary


@dataclass(frozen=True)
class ColumnProfile:
    """Everything the index builder needs to know about one column."""

    dataset: str
    column: str
    dtype: str
    semantic: str | None
    signature: MinHash
    numeric: NumericSummary | None
    categorical: CategoricalSummary
    distinct_fraction: float
    #: hash of the column's raw values; lets re-profiling skip unchanged
    #: columns when a dataset version only touches some of them
    content_hash: str = ""

    @property
    def key(self) -> tuple[str, str]:
        return (self.dataset, self.column)

    @property
    def is_numeric(self) -> bool:
        return self.dtype in ("int", "float")

    @property
    def looks_like_key(self) -> bool:
        """High distinctness + non-trivial size: a join-key candidate."""
        return self.distinct_fraction > 0.85 and self.categorical.count >= 2


@dataclass(frozen=True)
class TableProfile:
    dataset: str
    n_rows: int
    content_hash: str
    columns: tuple[ColumnProfile, ...]

    def column(self, name: str) -> ColumnProfile:
        for c in self.columns:
            if c.column == name:
                return c
        raise KeyError(f"no profile for column {name!r} of {self.dataset!r}")


def column_content_hash(relation: Relation, name: str) -> str:
    """Deterministic hash of one column's values (order-sensitive)."""
    h = hashlib.blake2b(digest_size=16)
    for v in relation.column(name):
        h.update(repr(v).encode())
        h.update(b"\x1f")
    return h.hexdigest()


def profile_column(
    relation: Relation, name: str, num_perm: int = 64,
    content_hash: str | None = None,
) -> ColumnProfile:
    """Sketch one column; pass ``content_hash`` when already computed."""
    col = relation.schema[name]
    values = relation.column(name)
    non_null = [v for v in values if v is not None]
    distinct = {repr(v) for v in non_null}
    signature = MinHash.of(
        (_canonical(v) for v in distinct), num_perm=num_perm
    )
    numeric = None
    if col.dtype in ("int", "float"):
        numeric = NumericSummary.of(values)
    categorical = CategoricalSummary.of(values)
    return ColumnProfile(
        dataset=relation.name,
        column=name,
        dtype=col.dtype,
        semantic=col.semantic,
        signature=signature,
        numeric=numeric,
        categorical=categorical,
        distinct_fraction=(len(distinct) / len(non_null)) if non_null else 0.0,
        content_hash=content_hash or column_content_hash(relation, name),
    )


def profile_table(
    relation: Relation,
    num_perm: int = 64,
    previous: TableProfile | None = None,
) -> TableProfile:
    """Profile every column; with ``previous`` (the dataset's prior profile),
    columns whose values, dtype and semantic are unchanged reuse the old
    :class:`ColumnProfile` — no re-sketching — so incremental re-registration
    of a wide dataset only pays for the columns that actually moved.
    """
    prior = (
        {c.column: c for c in previous.columns} if previous is not None else {}
    )
    columns = []
    for name in relation.columns:
        col = relation.schema[name]
        old = prior.get(name)
        content_hash = column_content_hash(relation, name)
        if (
            old is not None
            and old.content_hash
            and old.dtype == col.dtype
            and old.semantic == col.semantic
            and old.signature.num_perm == num_perm
            and old.content_hash == content_hash
        ):
            columns.append(old)
            continue
        columns.append(
            profile_column(
                relation, name, num_perm=num_perm, content_hash=content_hash
            )
        )
    return TableProfile(
        dataset=relation.name,
        n_rows=len(relation),
        content_hash=relation.content_hash(),
        columns=tuple(columns),
    )


def _canonical(value: object) -> str:
    """Canonical token for signature hashing (ints and floats unify)."""
    if isinstance(value, bool):
        return f"b:{value}"
    if isinstance(value, (int, float)):
        return f"n:{float(value):.10g}"
    return f"s:{value}"


def name_similarity(a: str, b: str) -> float:
    """Similarity of two column names in [0, 1] (case/sep-insensitive)."""
    na = a.lower().replace("-", "_").strip("_")
    nb = b.lower().replace("-", "_").strip("_")
    if na == nb:
        return 1.0
    tokens_a, tokens_b = set(na.split("_")), set(nb.split("_"))
    token_sim = (
        len(tokens_a & tokens_b) / len(tokens_a | tokens_b)
        if tokens_a | tokens_b
        else 0.0
    )
    char_sim = SequenceMatcher(None, na, nb).ratio()
    return max(token_sim, char_sim)
