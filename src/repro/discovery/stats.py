"""Cardinality statistics for cost-based join planning.

The profiler already sketches everything a textbook cost model needs —
row counts, per-column distinct counts and MinHash signatures whose
Jaccard estimates give containment asymmetry (the same arithmetic that
infers ``pk_side``).  This module turns those profile stats into
**per-edge fan-out estimates**: for a candidate join predicate between
columns *a* (of dataset A) and *b* (of dataset B),

* ``fanout_lr`` estimates the matching B rows per A row — the factor by
  which joining B onto a running mashup rooted at A multiplies its
  cardinality;
* ``fanout_rl`` is the symmetric estimate for the other direction.

Derivation (uniform-multiplicity model, the one FDB's fact→dimension
ordering rests on): from estimated Jaccard ``j`` and distinct counts
``da, db``, the intersection size is ``j/(1+j) · (da+db)``; the fraction
of A-side values that appear in B at all is ``inter/da`` (containment),
and each appearing value matches the B-side average multiplicity
``rows_b/db``.  So

    fanout_lr = min(1, inter/da) · rows_b / db

A textbook PK→FK edge (B references A's key) gives ``fanout_rl ≈ 1`` and
``fanout_lr ≈ rows_b/db ≥ 1`` — exactly the asymmetry the planner orders
joins by.  Estimates are derived purely from profiles, so incremental and
full-rebuild index maintenance agree bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass

from .profiler import ColumnProfile


@dataclass(frozen=True)
class FanoutEstimate:
    """Estimated per-row join fan-out for one column pair, both ways."""

    #: expected matching right-side rows per left-side row
    lr: float
    #: expected matching left-side rows per right-side row
    rl: float

    def reversed(self) -> "FanoutEstimate":
        return FanoutEstimate(self.rl, self.lr)


def estimate_fanouts(
    a: ColumnProfile,
    b: ColumnProfile,
    rows_a: int,
    rows_b: int,
    jaccard: float,
) -> FanoutEstimate | None:
    """Fan-out estimates for joining on ``a = b``, or None when the
    profiles carry no usable cardinality signal (zero distincts or no
    estimated overlap — e.g. a candidate backed purely by semantic tags
    whose sketches never collided)."""
    da = a.categorical.distinct
    db = b.categorical.distinct
    if jaccard <= 0.0 or da <= 0 or db <= 0:
        return None
    inter = jaccard / (1.0 + jaccard) * (da + db)
    cont_a = min(1.0, inter / da)
    cont_b = min(1.0, inter / db)
    return FanoutEstimate(
        lr=cont_a * rows_b / db,
        rl=cont_b * rows_a / da,
    )


def combine_composite(
    estimates: list[FanoutEstimate | None],
) -> FanoutEstimate | None:
    """Fan-out of a composite-key predicate from its members' estimates.

    Joining on the conjunction of several column pairs matches at most as
    many rows as the most selective member alone, so the composite
    estimate is the member-wise minimum.  Members without an estimate
    contribute nothing; all-unknown composites stay unknown."""
    known = [e for e in estimates if e is not None]
    if not known:
        return None
    return FanoutEstimate(
        lr=min(e.lr for e in known),
        rl=min(e.rl for e in known),
    )
