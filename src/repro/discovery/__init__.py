"""Data discovery: profiling, metadata engine, index builder, search."""

from .index import IndexBuilder, JoinCandidate
from .metadata import ContextSnapshot, DatasetLifecycle, MetadataEngine
from .profiler import (
    ColumnProfile,
    TableProfile,
    name_similarity,
    profile_column,
    profile_table,
)
from .search import AttributeMatch, DatasetHit, DiscoveryEngine

__all__ = [
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
    "name_similarity",
    "MetadataEngine",
    "ContextSnapshot",
    "DatasetLifecycle",
    "IndexBuilder",
    "JoinCandidate",
    "DiscoveryEngine",
    "AttributeMatch",
    "DatasetHit",
]
