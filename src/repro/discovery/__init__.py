"""Data discovery: profiling, metadata engine, index builder, search."""

from .index import IndexBuilder, JoinCandidate, JoinPredicate
from .metadata import (
    ContextSnapshot,
    DatasetLifecycle,
    MetadataDelta,
    MetadataEngine,
)
from .profiler import (
    ColumnProfile,
    TableProfile,
    column_content_hash,
    name_similarity,
    profile_column,
    profile_table,
)
from .search import AttributeMatch, DatasetHit, DiscoveryEngine
from .stats import FanoutEstimate, combine_composite, estimate_fanouts

__all__ = [
    "FanoutEstimate",
    "estimate_fanouts",
    "combine_composite",
    "ColumnProfile",
    "TableProfile",
    "profile_column",
    "profile_table",
    "column_content_hash",
    "name_similarity",
    "MetadataEngine",
    "MetadataDelta",
    "ContextSnapshot",
    "DatasetLifecycle",
    "IndexBuilder",
    "JoinCandidate",
    "JoinPredicate",
    "DiscoveryEngine",
    "AttributeMatch",
    "DatasetHit",
]
