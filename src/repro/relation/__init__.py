"""Relational substrate: schemas, provenance-carrying relations, CSV I/O."""

from .columnar import ColumnarView
from .csvio import read_csv, read_csv_dir, read_csv_text, write_csv
from .engines import (
    DEFAULT_ENGINE,
    ColumnarEngine,
    Engine,
    IterationEngine,
    Processor,
    get_engine,
    push_down,
)
from .provenance import (
    ProvExpr,
    ProvOne,
    ProvPlus,
    ProvTimes,
    ProvToken,
    boolean_sources,
    derivation_count,
    evaluate,
    plus,
    source_shares,
    times,
    token_shares,
)
from .relation import Relation
from .schema import Column, Schema
from .tree import (
    Distinct,
    Extend,
    Join,
    Label,
    LeafRelation,
    Project,
    RelationExpr,
    Rename,
    Select,
)

__all__ = [
    "Column",
    "ColumnarView",
    "Schema",
    "Relation",
    "RelationExpr",
    "LeafRelation",
    "Project",
    "Select",
    "Distinct",
    "Rename",
    "Label",
    "Extend",
    "Join",
    "Engine",
    "IterationEngine",
    "ColumnarEngine",
    "Processor",
    "get_engine",
    "push_down",
    "DEFAULT_ENGINE",
    "ProvExpr",
    "ProvToken",
    "ProvOne",
    "ProvPlus",
    "ProvTimes",
    "plus",
    "times",
    "evaluate",
    "token_shares",
    "source_shares",
    "boolean_sources",
    "derivation_count",
    "read_csv",
    "read_csv_text",
    "read_csv_dir",
    "write_csv",
]
