"""CSV import/export for relations (no external dependencies).

The seller management platform's data-packaging feature uses these helpers
to bulk-load datasets from directories of CSV files (the paper's "point to a
data lake / cloud storage full of files" scenario).
"""

from __future__ import annotations

import csv
import io
import os
from typing import Iterable

from ..errors import SchemaError
from .relation import Relation
from .schema import Column, Schema


def _parse_cell(text: str):
    """Best-effort typed parse of a CSV cell ('' -> NULL)."""
    if text == "":
        return None
    low = text.lower()
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        pass
    return text


def _column_dtype(values: Iterable) -> str:
    kinds = set()
    for v in values:
        if v is None:
            continue
        if isinstance(v, bool):
            kinds.add("bool")
        elif isinstance(v, int):
            kinds.add("int")
        elif isinstance(v, float):
            kinds.add("float")
        else:
            kinds.add("str")
    if not kinds:
        return "any"
    if kinds <= {"int"}:
        return "int"
    if kinds <= {"int", "float"}:
        return "float"
    if len(kinds) == 1:
        return kinds.pop()
    return "str"


def read_csv_text(name: str, text: str) -> Relation:
    """Parse CSV text (with a header row) into a typed relation."""
    reader = csv.reader(io.StringIO(text))
    try:
        header = next(reader)
    except StopIteration:
        raise SchemaError("CSV input is empty (no header row)") from None
    raw_rows = [[_parse_cell(cell) for cell in row] for row in reader if row]
    for row in raw_rows:
        if len(row) != len(header):
            raise SchemaError(
                f"CSV row arity {len(row)} does not match header {len(header)}"
            )
    columns = []
    for i, col_name in enumerate(header):
        dtype = _column_dtype(row[i] for row in raw_rows)
        columns.append(Column(col_name, dtype))
    # Coerce ints to float in float columns so dtype checks pass uniformly.
    rows = []
    for row in raw_rows:
        fixed = []
        for col, v in zip(columns, row):
            if col.dtype == "float" and isinstance(v, int):
                v = float(v)
            if col.dtype == "str" and v is not None and not isinstance(v, str):
                v = str(v)
            fixed.append(v)
        rows.append(tuple(fixed))
    return Relation(name, Schema(columns), rows)


def read_csv(path: str, name: str | None = None) -> Relation:
    """Load one CSV file as a relation named after the file stem."""
    if name is None:
        name = os.path.splitext(os.path.basename(path))[0]
    with open(path, newline="") as f:
        return read_csv_text(name, f.read())


def write_csv(relation: Relation, path: str) -> None:
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(relation.schema.names)
        for row in relation.rows:
            writer.writerow(["" if v is None else v for v in row])


def read_csv_dir(path: str) -> list[Relation]:
    """Load every ``*.csv`` under ``path`` (sorted, non-recursive)."""
    relations = []
    for entry in sorted(os.listdir(path)):
        if entry.lower().endswith(".csv"):
            relations.append(read_csv(os.path.join(path, entry)))
    return relations
