"""Execution engines for lazy relation expression trees.

Two engines stand behind one interface:

* :class:`IterationEngine` — the reference oracle.  It walks the tree and
  applies the eager :class:`~repro.relation.relation.Relation` operators
  node-for-node, so its output *is* the eager semantics by construction.
* :class:`ColumnarEngine` — the fast path.  It never materializes an
  intermediate wide relation: a pipeline is carried as a set of **leaf
  sources plus per-leaf row-index arrays** (numpy ``intp``), reusing the
  relations' memoized :class:`~repro.relation.columnar.ColumnarView`
  column vectors.  A join only composes index arrays; a selection only
  shrinks them; projection and rename are pure metadata.  Rows, wide
  tuples and provenance products are assembled once, at ``collect``
  time, for exactly the output columns — late materialization is
  projection pushdown by construction, and :func:`push_down` additionally
  sinks selections below joins/projections toward the leaves.

Both engines are **bit-identical**: same rows in the same order, same
schema, same relation name, and equal provenance expressions.  Join
provenance relies on the :func:`~repro.relation.provenance.times` smart
constructor flattening nested products — ``times(times(a, b), c)`` equals
``times(a, b, c)`` — which makes the eager left-deep product association
reproducible from flat per-leaf annotations.

The :class:`Processor` resolves an engine (by name, instance, or the
default) and memoizes the materialized result on the tree's payload slot,
so plan copies sharing one tree materialize at most once.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import replace
from typing import Any, Callable

import numpy as np

from ..errors import SchemaError
from .columnar import SCALAR_DTYPES
from .predicates import Predicate, _bool_mask, _scalar_operand
from .provenance import times
from .relation import Relation, _freeze
from .schema import Column, Schema
from .tree import (
    Distinct,
    Extend,
    Join,
    Label,
    LeafRelation,
    Project,
    RelationExpr,
    Rename,
    Select,
)

#: engine used when a caller does not pick one
DEFAULT_ENGINE = "columnar"


class Engine(ABC):
    """One way to execute an expression tree."""

    name: str = "abstract"

    @abstractmethod
    def execute(self, tree: RelationExpr) -> Relation:
        """Materialize the tree's result (bit-identical across engines)."""

    def count(self, tree: RelationExpr) -> int:
        """Row count of the result (override to avoid materializing)."""
        return len(self.execute(tree))


class IterationEngine(Engine):
    """The oracle: apply the eager operators node-for-node."""

    name = "iteration"

    def execute(self, tree: RelationExpr) -> Relation:
        if isinstance(tree, LeafRelation):
            return tree.relation
        if isinstance(tree, Project):
            return self.execute(tree.target).project(list(tree.names))
        if isinstance(tree, Select):
            rel = self.execute(tree.target)
            if tree.predicate is None:
                return rel.where(**dict(tree.conditions))
            return rel.select(_restricted(tree.predicate, tree.input_columns))
        if isinstance(tree, Distinct):
            return self.execute(tree.target).distinct()
        if isinstance(tree, Rename):
            return self.execute(tree.target).rename(dict(tree.mapping))
        if isinstance(tree, Label):
            return self.execute(tree.target).renamed(tree.label)
        if isinstance(tree, Extend):
            return self.execute(tree.target).extend(
                tree.column, _restricted(tree.fn, tree.input_columns)
            )
        if isinstance(tree, Join):
            return self.execute(tree.left).join(
                self.execute(tree.right),
                on=list(tree.pairs),
                suffix=tree.suffix,
                keep_right=tree.keep_right,
            )
        raise SchemaError(f"unknown tree node {tree!r}")


def _restricted(
    fn: Callable[[dict[str, Any]], Any], columns: tuple[str, ...] | None
) -> Callable[[dict[str, Any]], Any]:
    """Wrap a row function to see only the declared input columns (both
    engines build the restricted dict the same way)."""
    if columns is None:
        return fn
    return lambda row: fn({k: row[k] for k in columns})


def _remapped(
    fn: Callable[[dict[str, Any]], Any],
    declared: tuple[str, ...],
    sources: tuple[str, ...],
) -> Callable[[dict[str, Any]], Any]:
    """Wrap a row function whose inputs were renamed: the engine hands it
    a dict keyed by ``sources`` and the wrapper re-keys it to the
    ``declared`` names the function was written against."""
    pairs = tuple(zip(declared, sources))
    return lambda row: fn({d: row[s] for d, s in pairs})


# ---------------------------------------------------------------------------
# columnar engine
# ---------------------------------------------------------------------------
class _RelationSource:
    """One leaf relation inside a batch; columns served as object arrays
    built from the relation's memoized columnar vectors."""

    __slots__ = ("relation", "_arrays")

    def __init__(self, relation: Relation):
        self.relation = relation
        self._arrays: dict[str, np.ndarray] = {}

    @property
    def provenance(self):
        return self.relation.provenance

    def column(self, name: str) -> np.ndarray:
        arr = self._arrays.get(name)
        if arr is None:
            values = self.relation.columnar.values(name)
            arr = np.empty(len(values), dtype=object)
            arr[:] = values
            self._arrays[name] = arr
        return arr


class _ValueSource:
    """A computed (extend) column: values only, no provenance of its own."""

    __slots__ = ("array",)
    provenance = None

    def __init__(self, values: list):
        arr = np.empty(len(values), dtype=object)
        arr[:] = values
        self.array = arr

    def column(self, name: str) -> np.ndarray:
        return self.array


class _Batch:
    """A pipelined intermediate: sources + per-source row-index arrays.

    ``indexes[i]`` is None when source ``i`` contributes its rows 0..n-1
    unchanged (only possible while ``nrows`` equals the source length);
    otherwise an ``intp`` array of length ``nrows`` into the source.
    ``cols`` lists the output columns as (source position, source column
    name, output Column).  Batches are immutable once built; operators
    derive new batches that share sources and index arrays.
    """

    __slots__ = ("name", "sources", "indexes", "cols", "nrows")

    def __init__(self, name, sources, indexes, cols, nrows):
        self.name = name
        self.sources = sources
        self.indexes = indexes
        self.cols = cols
        self.nrows = nrows

    def column_array(self, pos: int) -> np.ndarray:
        src_i, src_name, _col = self.cols[pos]
        arr = self.sources[src_i].column(src_name)
        idx = self.indexes[src_i]
        return arr if idx is None else arr[idx]

    def position(self, name: str) -> int:
        for p, (_si, _sn, col) in enumerate(self.cols):
            if col.name == name:
                return p
        raise SchemaError(f"column {name!r} not in batch")


def _compose(idx: np.ndarray | None, take: np.ndarray) -> np.ndarray:
    """Row selection ``take`` applied on top of an existing index."""
    return take if idx is None else idx[take]


def _conditions_mask(
    vecs: list[tuple[np.ndarray, Any]], n: int
) -> np.ndarray | None:
    """Vectorized AND of equality conditions, or None when any operand
    (or any cell's comparison result) defies elementwise ``==`` — the
    row loop then reproduces the oracle semantics exactly."""
    mask = np.ones(n, dtype=bool)
    for arr, value in vecs:
        if not _scalar_operand(value):
            return None
        try:
            mask &= _bool_mask(np.equal(arr, value), n)
        except Exception:
            return None
    return mask


# ---------------------------------------------------------------------------
# join kernels (all bit-identical: same (left, right) match pairs in the
# same order as the eager operator — left rows ascending, and per left row
# its right matches ascending)
# ---------------------------------------------------------------------------
#: dtypes whose values sort under ``np.unique`` and whose dict-key
#: semantics ``==`` reproduces exactly.  ``float`` is excluded: a NaN key
#: matches itself *by identity* in a dict probe, while the factorize
#: kernel's ``==`` grouping can never match NaN — the dict kernels keep
#: that bit-identity instead.
_FACTORIZE_DTYPES = frozenset(("int", "str", "bool"))


def _factorizable(ldt: str, rdt: str) -> bool:
    """True when both key columns may take the factorize kernel: sortable
    dtypes, and mutually comparable (mixed int/bool sorts fine; mixed
    int/str would raise mid-sort)."""
    if ldt not in _FACTORIZE_DTYPES or rdt not in _FACTORIZE_DTYPES:
        return False
    return ldt == rdt or {ldt, rdt} <= {"int", "bool"}


def _not_none(arr: np.ndarray) -> np.ndarray:
    return np.fromiter(
        (v is not None for v in arr), dtype=bool, count=len(arr)
    )


_EMPTY_TAKE = (
    np.zeros(0, dtype=np.intp), np.zeros(0, dtype=np.intp)
)


def _factorize_join(
    lk: np.ndarray, rk: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Vectorized single-key equi-join: factorize both key vectors into
    integer codes with one ``np.unique`` over the concatenated non-null
    keys, group the right side by code with a stable argsort, and expand
    each left row's match run with a repeat/cumsum ramp — no per-row
    Python in the match phase."""
    lrows = np.flatnonzero(_not_none(lk))
    rrows = np.flatnonzero(_not_none(rk))
    if lrows.size == 0 or rrows.size == 0:
        return _EMPTY_TAKE
    lvals = lk[lrows]
    rvals = rk[rrows]
    _uniq, inv = np.unique(
        np.concatenate([lvals, rvals]), return_inverse=True
    )
    lcodes = inv[: lvals.size]
    rcodes = inv[lvals.size:]
    counts = np.bincount(rcodes, minlength=int(inv.max()) + 1)
    order = np.argsort(rcodes, kind="stable")
    group_start = np.concatenate(([0], np.cumsum(counts)[:-1]))
    cnt = counts[lcodes]  # matches per (non-null) left row
    total = int(cnt.sum())
    if total == 0:
        return _EMPTY_TAKE
    lpos = np.repeat(lrows, cnt)
    # per output row: its offset within its left row's run, shifted to
    # that run's slice of `order`
    run_end = np.cumsum(cnt)
    ramp = (
        np.arange(total, dtype=np.intp)
        - np.repeat(run_end - cnt, cnt)
        + np.repeat(group_start[lcodes], cnt)
    )
    rpos = rrows[order[ramp]]
    return lpos.astype(np.intp, copy=False), rpos.astype(np.intp, copy=False)


def _scalar_join(
    lk: np.ndarray, rk: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Dict hash join on bare scalar keys: skips the one-element tuple
    and ``_freeze`` call per row of the generic kernel.  Scalar dict
    probes share the tuple kernel's identity-then-equality semantics
    (NaN keys match only themselves), so the two are bit-identical."""
    table: dict = {}
    for j, v in enumerate(rk.tolist()):
        if v is not None:
            table.setdefault(v, []).append(j)
    lpos: list[int] = []
    rpos: list[int] = []
    for i, v in enumerate(lk.tolist()):
        if v is None:
            continue
        matches = table.get(v)
        if matches:
            lpos.extend([i] * len(matches))
            rpos.extend(matches)
    return (
        np.asarray(lpos, dtype=np.intp), np.asarray(rpos, dtype=np.intp)
    )


def _tuple_join(
    lkeys: list[np.ndarray], rkeys: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """The generic kernel: build on the right side over frozen key
    tuples, probe left rows in order (the original row-loop hash join —
    and the oracle the fast kernels must match)."""
    table: dict[tuple, list[int]] = {}
    for j in range(len(rkeys[0]) if rkeys else 0):
        key = tuple(_freeze(k[j]) for k in rkeys)
        if any(k is None for k in key):
            continue  # NULLs never join
        table.setdefault(key, []).append(j)
    lpos: list[int] = []
    rpos: list[int] = []
    for i in range(len(lkeys[0]) if lkeys else 0):
        key = tuple(_freeze(k[i]) for k in lkeys)
        if any(k is None for k in key):
            continue
        matches = table.get(key)
        if matches:
            lpos.extend([i] * len(matches))
            rpos.extend(matches)
    return (
        np.asarray(lpos, dtype=np.intp), np.asarray(rpos, dtype=np.intp)
    )


class ColumnarEngine(Engine):
    """Pipelined execution over per-leaf index arrays (late materialization).

    ``optimize`` (default True) applies :func:`push_down` before
    evaluation; the rewrite is order- and provenance-preserving, so the
    bit-identity contract holds either way.
    """

    name = "columnar"

    def __init__(self, optimize: bool = True):
        self.optimize = optimize

    # -- public API --------------------------------------------------------
    def execute(self, tree: RelationExpr) -> Relation:
        return self._gather(self._batch_for(tree))

    def count(self, tree: RelationExpr) -> int:
        return self._batch_for(tree).nrows

    def _batch_for(self, tree: RelationExpr) -> _Batch:
        # cache the evaluated batch on the original root node so a count
        # followed by a collect (the DoD pattern) runs the joins once
        cached = tree.__dict__.get("_columnar_batch")
        if cached is not None:
            return cached
        plan = push_down(tree) if self.optimize else tree
        batch = self._eval(plan)
        object.__setattr__(tree, "_columnar_batch", batch)
        return batch

    # -- evaluation --------------------------------------------------------
    def _eval(self, tree: RelationExpr) -> _Batch:
        if isinstance(tree, LeafRelation):
            return self._leaf(tree.relation)
        if isinstance(tree, Project):
            return self._project(self._eval(tree.target), tree)
        if isinstance(tree, Select):
            return self._select(self._eval(tree.target), tree)
        if isinstance(tree, Distinct):
            # a materialization point: dedup needs the whole wide row
            return self._leaf(self._gather(self._eval(tree.target)).distinct())
        if isinstance(tree, Rename):
            return self._rename(self._eval(tree.target), tree)
        if isinstance(tree, Label):
            inner = self._eval(tree.target)
            return _Batch(tree.label, inner.sources, inner.indexes,
                          inner.cols, inner.nrows)
        if isinstance(tree, Extend):
            return self._extend(self._eval(tree.target), tree)
        if isinstance(tree, Join):
            return self._join(
                self._eval(tree.left), self._eval(tree.right), tree
            )
        raise SchemaError(f"unknown tree node {tree!r}")

    def _leaf(self, relation: Relation) -> _Batch:
        source = _RelationSource(relation)
        cols = [(0, c.name, c) for c in relation.schema.columns]
        return _Batch(relation.name, [source], [None], cols, len(relation))

    def _project(self, batch: _Batch, node: Project) -> _Batch:
        out_cols = node.schema.columns
        cols = []
        for name, out_col in zip(node.names, out_cols):
            src_i, src_name, _old = batch.cols[batch.position(name)]
            cols.append((src_i, src_name, out_col))
        return _Batch(batch.name, batch.sources, batch.indexes, cols,
                      batch.nrows)

    def _rename(self, batch: _Batch, node: Rename) -> _Batch:
        cols = [
            (src_i, src_name, new_col)
            for (src_i, src_name, _old), new_col in zip(
                batch.cols, node.schema.columns
            )
        ]
        return _Batch(batch.name, batch.sources, batch.indexes, cols,
                      batch.nrows)

    def _select(self, batch: _Batch, node: Select) -> _Batch:
        """Row filter.  Equality conditions and structured predicates
        compile to numpy masks over whole column vectors; anything the
        mask cannot reproduce bit-for-bit (opaque callables, non-scalar
        operands, comparisons that error) falls back to the row loop —
        the oracle the masks are tested against."""
        n = batch.nrows
        take: np.ndarray | None = None
        if node.predicate is None:
            vecs = [
                (batch.column_array(batch.position(name)), value)
                for name, value in node.conditions
            ]
            mask = _conditions_mask(vecs, n)
            if mask is not None:
                take = np.flatnonzero(mask)
            else:
                take = np.asarray(
                    [
                        i for i in range(n)
                        if all(vec[i] == value for vec, value in vecs)
                    ],
                    dtype=np.intp,
                )
        else:
            names = (
                node.input_columns
                if node.input_columns is not None
                else tuple(c.name for _si, _sn, c in batch.cols)
            )
            vecs = [batch.column_array(batch.position(nm)) for nm in names]
            predicate = node.predicate
            if isinstance(predicate, Predicate):
                try:
                    mask = predicate.mask(dict(zip(names, vecs)), n)
                except Exception:
                    mask = None  # row loop reproduces (or re-raises) it
                if mask is not None:
                    take = np.flatnonzero(mask)
            if take is None:
                take = np.asarray(
                    [
                        i for i in range(n)
                        if predicate(dict(zip(names, (v[i] for v in vecs))))
                    ],
                    dtype=np.intp,
                )
        indexes = [_compose(idx, take) for idx in batch.indexes]
        return _Batch(batch.name, batch.sources, indexes, batch.cols,
                      int(take.size))

    def _extend(self, batch: _Batch, node: Extend) -> _Batch:
        names = (
            node.input_columns
            if node.input_columns is not None
            else tuple(c.name for _si, _sn, c in batch.cols)
        )
        vecs = [batch.column_array(batch.position(nm)) for nm in names]
        fn = node.fn
        values = [
            fn(dict(zip(names, (v[i] for v in vecs))))
            for i in range(batch.nrows)
        ]
        sources = batch.sources + [_ValueSource(values)]
        indexes = batch.indexes + [None]
        cols = batch.cols + [(len(sources) - 1, node.column.name, node.column)]
        return _Batch(batch.name, sources, indexes, cols, batch.nrows)

    def _join(self, left: _Batch, right: _Batch, node: Join) -> _Batch:
        # key vectors (already index-composed views of the leaf columns)
        lkeys = [
            left.column_array(left.position(lc)) for lc, _rc in node.pairs
        ]
        rkeys = [
            right.column_array(right.position(rc)) for _lc, rc in node.pairs
        ]
        taken = None
        if len(node.pairs) == 1:
            ldt = left.cols[left.position(node.pairs[0][0])][2].dtype
            rdt = right.cols[right.position(node.pairs[0][1])][2].dtype
            if _factorizable(ldt, rdt):
                try:
                    taken = _factorize_join(lkeys[0], rkeys[0])
                except TypeError:
                    # a cell violating its declared dtype broke the sort:
                    # the dict kernels reproduce the oracle regardless
                    taken = None
            if taken is None and ldt in SCALAR_DTYPES and rdt in SCALAR_DTYPES:
                taken = _scalar_join(lkeys[0], rkeys[0])
        if taken is None:
            taken = _tuple_join(lkeys, rkeys)
        ltake, rtake = taken
        indexes = [_compose(idx, ltake) for idx in left.indexes]
        indexes += [_compose(idx, rtake) for idx in right.indexes]
        sources = left.sources + right.sources
        shift = len(left.sources)

        out_cols = node.schema.columns
        cols = [
            (src_i, src_name, out_col)
            for (src_i, src_name, _old), out_col in zip(
                left.cols, out_cols[: len(left.cols)]
            )
        ]
        for kept_pos, out_col in zip(
            node.right_kept(), out_cols[len(left.cols):]
        ):
            src_i, src_name, _old = right.cols[kept_pos]
            cols.append((src_i + shift, src_name, out_col))
        return _Batch(
            f"{left.name}⋈{right.name}", sources, indexes, cols,
            int(ltake.size),
        )

    # -- late materialization ----------------------------------------------
    def _gather(self, batch: _Batch) -> Relation:
        """Assemble the output relation: only the output columns are
        gathered, and provenance products are built flat per row."""
        n = batch.nrows
        schema = Schema([col for _si, _sn, col in batch.cols])
        if batch.cols:
            vectors = [
                batch.column_array(p).tolist()
                for p in range(len(batch.cols))
            ]
            rows = list(zip(*vectors)) if n else []
        else:
            rows = [()] * n

        prov_parts = [
            (src.provenance, idx)
            for src, idx in zip(batch.sources, batch.indexes)
            if src.provenance is not None
        ]
        if len(prov_parts) == 1:
            source_prov, idx = prov_parts[0]
            if idx is None:
                # pristine single-source pipeline: reuse the leaf verbatim
                # when nothing changed at all
                relation = batch.sources[0].relation
                if (
                    batch.name == relation.name
                    and schema.names == relation.schema.names
                    and tuple(schema.columns) == tuple(relation.schema.columns)
                ):
                    return relation
                prov = source_prov
            else:
                prov = tuple(source_prov[i] for i in idx)
        else:
            per_row = [
                (p, idx if idx is not None else range(len(p)))
                for p, idx in prov_parts
            ]
            prov = tuple(
                times(*(p[idx[r]] for p, idx in per_row)) for r in range(n)
            )
        return Relation._build(batch.name, schema, rows, prov)


# ---------------------------------------------------------------------------
# selection pushdown
# ---------------------------------------------------------------------------
def push_down(tree: RelationExpr) -> RelationExpr:
    """Sink selections toward the leaves (through projections, renames,
    labels, condition-only distincts, and into join inputs).

    The rewrite preserves rows, row order and provenance expressions, so
    engines may apply it unconditionally.  Selections never sink below an
    :class:`Extend` — that could skip a mapping-function error the
    un-rewritten tree would raise.
    """
    if isinstance(tree, LeafRelation):
        return tree
    if isinstance(tree, Join):
        return Join(
            push_down(tree.left), push_down(tree.right), tree.pairs,
            tree.suffix, tree.keep_right,
        )
    if isinstance(tree, Select):
        return _sink(tree, push_down(tree.target))
    return replace(tree, target=push_down(tree.target))


def _sink(sel: Select, node: RelationExpr) -> RelationExpr:
    """Equivalent of ``Select(node, ...)`` with the selection sunk as far
    down as the rewrite rules allow."""
    conditions, predicate, columns = (
        sel.conditions, sel.predicate, sel.input_columns
    )

    if isinstance(node, Label):
        return Label(_sink(sel, node.target), node.label)

    if isinstance(node, Project):
        referenced = (
            [name for name, _v in conditions]
            if predicate is None
            else list(columns or ())
        )
        # projected names keep their identity below the projection; a
        # full-row predicate (columns=None) must stay above it
        if (predicate is None or columns is not None) and all(
            name in node.target.schema for name in referenced
        ):
            inner = Select(node.target, conditions, predicate, columns)
            return Project(_sink(inner, node.target), node.names)
        return Select(node, conditions, predicate, columns)

    if isinstance(node, Rename):
        inverse = {new: old for old, new in node.mapping}
        if predicate is None:
            remapped = tuple(
                (inverse.get(name, name), value) for name, value in conditions
            )
            inner = Select(node.target, remapped, None, None)
            return Rename(_sink(inner, node.target), node.mapping)
        if columns is not None:
            # the select references output (renamed) names; below the
            # rename it must read the source names, with the row dict
            # translated back so the predicate sees the names it declared
            sources = tuple(inverse.get(c, c) for c in columns)
            pushed = predicate
            if sources != columns:
                if isinstance(predicate, Predicate):
                    # structured predicates rewrite their column names in
                    # place, keeping the shape (and the vectorized mask)
                    # a re-keying lambda wrapper would destroy
                    pushed = predicate.rename(
                        {c: s for c, s in zip(columns, sources) if c != s}
                    )
                else:
                    pushed = _remapped(predicate, columns, sources)
            inner = Select(node.target, (), pushed, sources)
            return Rename(_sink(inner, node.target), node.mapping)
        return Select(node, conditions, predicate, columns)

    if isinstance(node, Distinct) and predicate is None:
        # all duplicates of a row share its cell values, so filtering
        # commutes with dedup (rows and merged provenance both agree)
        inner = Select(node.target, conditions, None, None)
        return Distinct(_sink(inner, node.target))

    if isinstance(node, Join):
        left_names = set(node.left.schema.names)
        right_map = node.right_output_names()
        if predicate is None:
            lcond = tuple(
                (n, v) for n, v in conditions if n in left_names
            )
            rcond = tuple(
                (right_map[n], v)
                for n, v in conditions
                if n not in left_names and n in right_map
            )
            if len(lcond) + len(rcond) == len(conditions):
                new_left = node.left
                if lcond:
                    new_left = _sink(
                        Select(node.left, lcond, None, None), node.left
                    )
                new_right = node.right
                if rcond:
                    new_right = _sink(
                        Select(node.right, rcond, None, None), node.right
                    )
                return Join(new_left, new_right, node.pairs, node.suffix,
                            node.keep_right)
        elif columns is not None and set(columns) <= left_names:
            new_left = _sink(
                Select(node.left, (), predicate, columns), node.left
            )
            return Join(new_left, node.right, node.pairs, node.suffix,
                        node.keep_right)
        return Select(node, conditions, predicate, columns)

    return Select(node, conditions, predicate, columns)


# ---------------------------------------------------------------------------
# processor
# ---------------------------------------------------------------------------
_ENGINES: dict[str, Engine] = {}


def get_engine(name: str) -> Engine:
    """Resolve a registered engine by name (instances are shared)."""
    engine = _ENGINES.get(name)
    if engine is None:
        if name == "iteration":
            engine = IterationEngine()
        elif name == "columnar":
            engine = ColumnarEngine()
        else:
            raise SchemaError(
                f"unknown execution engine {name!r} "
                "(expected 'iteration' or 'columnar')"
            )
        _ENGINES[name] = engine
    return engine


class Processor:
    """Executes expression trees on a chosen engine, memoizing results on
    the tree's payload slot (engines are bit-identical, so a payload from
    any engine serves all of them)."""

    def __init__(self, engine: str | Engine | None = None):
        if engine is None:
            engine = DEFAULT_ENGINE
        self.engine = engine if isinstance(engine, Engine) else (
            get_engine(engine)
        )

    def execute(self, tree: RelationExpr) -> Relation:
        cached = tree.payload
        if cached is not None:
            return cached
        relation = self.engine.execute(tree)
        tree.attach_payload(relation)
        return relation

    def count(self, tree: RelationExpr) -> int:
        cached = tree.payload
        if cached is not None:
            return len(cached)
        return self.engine.count(tree)
