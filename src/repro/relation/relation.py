"""In-memory relations with provenance-carrying relational algebra.

The substrate the whole market platform stands on.  A :class:`Relation` is an
immutable ordered bag of rows with a :class:`~repro.relation.schema.Schema`
and a parallel vector of provenance annotations — every operator propagates
provenance per Green et al.'s semiring rules so the revenue-sharing engine
can later split a mashup's price across the contributing datasets.
"""

from __future__ import annotations

import hashlib
import warnings
from typing import TYPE_CHECKING, Any, Callable, Iterable, Iterator, Mapping, Sequence

from ..errors import ReproDeprecationWarning, SchemaError, UnknownColumnError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .tree import LeafRelation
from .columnar import SCALAR_DTYPES, ColumnarView
from .provenance import ProvExpr, ProvOne, ProvToken, plus, times
from .schema import Column, Schema

Row = tuple


def _freeze(value: Any) -> Any:
    """Make a cell hashable for grouping/dedup (lists become tuples)."""
    if isinstance(value, list):
        return tuple(_freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _freeze(v)) for k, v in value.items()))
    if isinstance(value, set):
        return frozenset(_freeze(v) for v in value)
    return value


class Relation:
    """An immutable, provenance-annotated bag of tuples."""

    __slots__ = ("name", "schema", "_rows", "_prov", "_columnar", "_chash")

    def __init__(
        self,
        name: str,
        schema: Schema | Iterable,
        rows: Iterable[Sequence] = (),
        /,
        provenance: Sequence[ProvExpr] | None = None,
        validate: bool = True,
        **legacy: Any,
    ):
        if legacy:
            unknown = set(legacy) - {"rows"}
            if unknown:
                raise TypeError(
                    f"Relation() got unexpected keyword arguments "
                    f"{sorted(unknown)}"
                )
            warnings.warn(
                "passing rows= to Relation as a keyword is deprecated "
                "(mutation-era entry point): pass the rows positionally, "
                "or build results lazily through the tree API "
                "(Relation.lazy() and the expression-tree operators)",
                ReproDeprecationWarning,
                stacklevel=2,
            )
            rows = legacy["rows"]
        self.name = name
        self.schema = schema if isinstance(schema, Schema) else Schema(schema)
        self._rows: tuple[Row, ...] = tuple(tuple(r) for r in rows)
        self._columnar: ColumnarView | None = None
        self._chash: str | None = None
        if validate:
            for row in self._rows:
                self.schema.validate_row(row)
        if provenance is None:
            self._prov: tuple[ProvExpr, ...] = tuple(
                ProvToken(name, i) for i in range(len(self._rows))
            )
        else:
            if len(provenance) != len(self._rows):
                raise SchemaError(
                    "provenance vector length does not match row count"
                )
            self._prov = tuple(provenance)

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_dicts(
        cls,
        name: str,
        records: Iterable[Mapping[str, Any]],
        schema: Schema | Iterable | None = None,
    ) -> "Relation":
        """Build a relation from dict records, inferring a schema if needed."""
        records = list(records)
        if schema is None:
            if not records:
                raise SchemaError("cannot infer a schema from zero records")
            names = list(records[0].keys())
            schema = Schema([Column(n, _infer_dtype(records, n)) for n in names])
        elif not isinstance(schema, Schema):
            schema = Schema(schema)
        rows = [tuple(rec.get(n) for n in schema.names) for rec in records]
        return cls(name, schema, rows)

    @classmethod
    def empty(cls, name: str, schema: Schema | Iterable) -> "Relation":
        return cls(name, schema, [])

    # ------------------------------------------------------------------
    # container protocol / accessors
    # ------------------------------------------------------------------
    @property
    def rows(self) -> tuple[Row, ...]:
        return self._rows

    @property
    def provenance(self) -> tuple[ProvExpr, ...]:
        return self._prov

    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.names

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def __bool__(self) -> bool:
        return bool(self._rows)

    def __eq__(self, other: object) -> bool:
        """Bag equality on (schema names, rows), ignoring order and name."""
        if not isinstance(other, Relation):
            return NotImplemented
        if self.schema.names != other.schema.names:
            return False

        def key(row: Row) -> tuple:
            return tuple(_sort_key(_freeze(v)) for v in row)

        return sorted(self._rows, key=key) == sorted(other._rows, key=key)

    def __hash__(self) -> int:  # pragma: no cover - identity hash
        return id(self)

    def __repr__(self) -> str:
        return (
            f"Relation({self.name!r}, {len(self._rows)} rows, "
            f"cols={list(self.columns)})"
        )

    @property
    def columnar(self) -> ColumnarView:
        """Lazily-built, memoized columnar view (per-column value vectors,
        canonical reprs/bytes, numeric arrays).  Safe to share: the relation
        is immutable, so the view is computed at most once per column."""
        view = self._columnar
        if view is None:
            view = self._columnar = ColumnarView(self)
        return view

    @property
    def _all_scalar(self) -> bool:
        """True when every declared dtype guarantees hashable scalar cells,
        enabling the freeze-free fast paths."""
        return all(c.dtype in SCALAR_DTYPES for c in self.schema.columns)

    def column(self, name: str) -> list:
        """All values of one column, in row order."""
        return list(self.columnar.values(name))

    def to_dicts(self) -> list[dict[str, Any]]:
        names = self.schema.names
        return [dict(zip(names, row)) for row in self._rows]

    def row_dict(self, index: int) -> dict[str, Any]:
        return dict(zip(self.schema.names, self._rows[index]))

    def head(self, n: int = 5) -> "Relation":
        return self._derive(self.name, self.schema, self._rows[:n], self._prov[:n])

    def pretty(self, limit: int = 10) -> str:
        """A fixed-width textual rendering, for examples and debugging."""
        names = list(self.schema.names)
        shown = [list(map(_cell_str, row)) for row in self._rows[:limit]]
        widths = [
            max([len(n)] + [len(r[i]) for r in shown]) for i, n in enumerate(names)
        ]
        header = " | ".join(n.ljust(w) for n, w in zip(names, widths))
        sep = "-+-".join("-" * w for w in widths)
        body = [
            " | ".join(c.ljust(w) for c, w in zip(row, widths)) for row in shown
        ]
        more = len(self._rows) - limit
        tail = [f"... ({more} more rows)"] if more > 0 else []
        return "\n".join([header, sep, *body, *tail])

    def content_hash(self) -> str:
        """Order-insensitive digest of schema + rows (for change detection).

        Memoized (the relation is immutable, and registration hashes the
        same relation more than once).  All-scalar relations assemble the
        per-row ``repr`` strings from the columnar view's cached per-value
        reprs — shared with column hashing and profiling, so each cell is
        repr'd once per relation — and digest one joined buffer.  The
        digest is bit-identical to the row-wise reference because
        ``_freeze`` is the identity on scalar cells and Python's tuple
        ``repr`` is reproduced exactly.
        """
        if self._chash is not None:
            return self._chash
        h = hashlib.sha256()
        h.update(repr(self.schema).encode())
        n_cols = len(self.schema)
        if self._rows and n_cols >= 1 and self._all_scalar:
            view = self.columnar
            populated_before = bool(view._reprs)
            view.materialize()
            repr_cols = [view.reprs(n) for n in self.schema.names]
            if n_cols == 1:
                row_strs = [f"({r},)" for r in repr_cols[0]]
            else:
                row_strs = [
                    "(%s)" % ", ".join(t) for t in zip(*repr_cols)
                ]
            h.update("".join(sorted(row_strs)).encode())
            if not view.retain_text and not populated_before:
                # nobody else is using the text caches we just built (a
                # profiling pass sets ``retain_text``); don't leave ~tens
                # of bytes per cell pinned on a relation that merely got
                # hashed — the digest itself is memoized below
                view.release_text()
        else:
            for row in sorted(map(repr, map(_freeze_row, self._rows))):
                h.update(row.encode())
        self._chash = h.hexdigest()
        return self._chash

    def lazy(self) -> "LeafRelation":
        """This relation as a lazy expression-tree leaf.

        The entry point of the tree API: chain the lazy operators on the
        returned node and materialize with ``collect()`` —
        ``rel.lazy().join(other.lazy(), on=["k"]).project(["a"]).collect()``.
        """
        from .tree import LeafRelation

        return LeafRelation(self)

    # ------------------------------------------------------------------
    # relational algebra (all provenance-propagating)
    # ------------------------------------------------------------------
    @classmethod
    def _build(
        cls,
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        prov: Iterable[ProvExpr],
    ) -> "Relation":
        """Raw constructor for operators and engines: rows are trusted
        (already schema-valid) and provenance is supplied, so validation
        and token tagging are skipped."""
        rel = cls.__new__(cls)
        rel.name = name
        rel.schema = schema
        rel._rows = tuple(rows)
        rel._prov = tuple(prov)
        rel._columnar = None
        rel._chash = None
        return rel

    def _derive(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row],
        prov: Iterable[ProvExpr],
    ) -> "Relation":
        return Relation._build(name, schema, rows, prov)

    def project(self, names: Sequence[str]) -> "Relation":
        """π — keep the given columns (duplicates preserved: bag semantics)."""
        schema = self.schema.project(names)
        if names:
            # recombine memoized column vectors (zip is one C-level pass)
            view = self.columnar
            rows: Iterable[Row] = zip(*[view.values(n) for n in names])
        else:
            rows = [() for _ in self._rows]
        return self._derive(self.name, schema, rows, self._prov)

    def select(self, predicate: Callable[[dict[str, Any]], bool]) -> "Relation":
        """σ — keep rows for which ``predicate(row_as_dict)`` is truthy."""
        names = self.schema.names
        keep_rows, keep_prov = [], []
        for row, prov in zip(self._rows, self._prov):
            if predicate(dict(zip(names, row))):
                keep_rows.append(row)
                keep_prov.append(prov)
        return self._derive(self.name, self.schema, keep_rows, keep_prov)

    def where(self, **conditions: Any) -> "Relation":
        """σ with equality conditions given as keyword arguments."""
        idx = {self.schema.position(k): v for k, v in conditions.items()}
        keep_rows, keep_prov = [], []
        for row, prov in zip(self._rows, self._prov):
            if all(row[i] == v for i, v in idx.items()):
                keep_rows.append(row)
                keep_prov.append(prov)
        return self._derive(self.name, self.schema, keep_rows, keep_prov)

    def rename(self, mapping: dict[str, str]) -> "Relation":
        return self._derive(
            self.name, self.schema.rename(mapping), self._rows, self._prov
        )

    def renamed(self, name: str) -> "Relation":
        """Change the relation's name (does not re-tag provenance)."""
        return self._derive(name, self.schema, self._rows, self._prov)

    def extend(
        self,
        column: Column | str,
        fn: Callable[[dict[str, Any]], Any],
    ) -> "Relation":
        """Append a computed column; provenance is unchanged."""
        col = column if isinstance(column, Column) else Column(column)
        if col.name in self.schema:
            raise SchemaError(f"column {col.name!r} already exists")
        names = self.schema.names
        rows = [
            row + (fn(dict(zip(names, row))),) for row in self._rows
        ]
        schema = Schema(list(self.schema.columns) + [col])
        return self._derive(self.name, schema, rows, self._prov)

    def drop(self, names: Sequence[str]) -> "Relation":
        keep = [n for n in self.schema.names if n not in set(names)]
        missing = set(names) - set(self.schema.names)
        if missing:
            raise UnknownColumnError(f"cannot drop unknown columns {sorted(missing)}")
        return self.project(keep)

    def distinct(self) -> "Relation":
        """δ — duplicate elimination; provenance of duplicates is summed."""
        # scalar-typed rows are already hashable: skip the per-cell freeze
        freeze = (lambda row: row) if self._all_scalar else _freeze_row
        seen: dict[Row, int] = {}
        rows: list[Row] = []
        provs: list[list[ProvExpr]] = []
        for row, prov in zip(self._rows, self._prov):
            key = freeze(row)
            if key in seen:
                provs[seen[key]].append(prov)
            else:
                seen[key] = len(rows)
                rows.append(row)
                provs.append([prov])
        merged = [plus(*ps) if len(ps) > 1 else ps[0] for ps in provs]
        return self._derive(self.name, self.schema, rows, merged)

    def union(self, other: "Relation") -> "Relation":
        """∪ (bag union) — schemas must have identical column names."""
        if self.schema.names != other.schema.names:
            raise SchemaError(
                f"union requires identical column names: "
                f"{self.schema.names} vs {other.schema.names}"
            )
        return self._derive(
            self.name,
            self.schema,
            self._rows + other._rows,
            self._prov + other._prov,
        )

    def join(
        self,
        other: "Relation",
        on: Sequence[tuple[str, str]] | Sequence[str] | None = None,
        suffix: str = "_r",
        keep_right: bool = False,
    ) -> "Relation":
        """Equi-join.  ``on`` is a list of (left, right) column pairs, a list
        of shared names, or None for a natural join on all shared names.

        The right-hand join columns are dropped from the output (they equal
        the left ones) unless ``keep_right``; clashing right columns get
        ``suffix`` appended.  Provenance of an output row is the product of
        the input annotations.
        """
        if on is None:
            shared = [n for n in self.schema.names if n in other.schema]
            if not shared:
                raise SchemaError(
                    f"natural join of {self.name!r} and {other.name!r}: "
                    "no shared column names"
                )
            pairs = [(n, n) for n in shared]
        elif on and isinstance(on[0], str):
            pairs = [(n, n) for n in on]  # type: ignore[list-item]
        else:
            pairs = list(on)  # type: ignore[arg-type]

        left_idx = self.schema.positions([p[0] for p in pairs])
        right_idx = other.schema.positions([p[1] for p in pairs])
        right_drop = set() if keep_right else set(right_idx)

        # hash join: build on the right side
        table: dict[tuple, list[int]] = {}
        for j, row in enumerate(other._rows):
            key = tuple(_freeze(row[i]) for i in right_idx)
            if any(k is None for k in key):
                continue  # NULLs never join
            table.setdefault(key, []).append(j)

        right_keep = [i for i in range(len(other.schema)) if i not in right_drop]
        left_names = set(self.schema.names)
        out_cols = list(self.schema.columns)
        for i in right_keep:
            col = other.schema.columns[i]
            if col.name in left_names:
                col = col.renamed(col.name + suffix)
            out_cols.append(col)
        out_schema = Schema(out_cols)

        rows: list[Row] = []
        provs: list[ProvExpr] = []
        for i, lrow in enumerate(self._rows):
            key = tuple(_freeze(lrow[k]) for k in left_idx)
            if any(k is None for k in key):
                continue
            for j in table.get(key, ()):
                rrow = other._rows[j]
                rows.append(lrow + tuple(rrow[k] for k in right_keep))
                provs.append(times(self._prov[i], other._prov[j]))
        return self._derive(
            f"{self.name}⋈{other.name}", out_schema, rows, provs
        )

    def left_join(
        self,
        other: "Relation",
        on: Sequence[tuple[str, str]] | Sequence[str] | None = None,
        suffix: str = "_r",
    ) -> "Relation":
        """Left outer equi-join (unmatched left rows padded with NULLs)."""
        inner = self.join(other, on=on, suffix=suffix)
        n_right = len(inner.schema) - len(self.schema)
        # Recompute the matching to find unmatched left rows.
        if on is None:
            shared = [n for n in self.schema.names if n in other.schema]
            pairs = [(n, n) for n in shared]
        elif on and isinstance(on[0], str):
            pairs = [(n, n) for n in on]  # type: ignore[list-item]
        else:
            pairs = list(on)  # type: ignore[arg-type]
        left_idx = self.schema.positions([p[0] for p in pairs])
        right_idx = other.schema.positions([p[1] for p in pairs])
        keys = set()
        for row in other._rows:
            keys.add(tuple(_freeze(row[i]) for i in right_idx))
        rows = list(inner._rows)
        provs = list(inner._prov)
        for i, lrow in enumerate(self._rows):
            key = tuple(_freeze(lrow[k]) for k in left_idx)
            if any(k is None for k in key) or key not in keys:
                rows.append(lrow + (None,) * n_right)
                provs.append(self._prov[i])
        return self._derive(inner.name, inner.schema, rows, provs)

    def aggregate(
        self,
        group_by: Sequence[str],
        aggregations: Mapping[str, tuple[str, str]],
    ) -> "Relation":
        """γ — group and aggregate.

        ``aggregations`` maps output column name to ``(input column, agg)``
        where agg ∈ {count, sum, mean, min, max, first}.  Provenance of each
        output row is the sum of the group members' annotations.
        """
        group_idx = self.schema.positions(group_by)
        groups: dict[tuple, list[int]] = {}
        for i, row in enumerate(self._rows):
            key = tuple(_freeze(row[k]) for k in group_idx)
            groups.setdefault(key, []).append(i)

        out_cols = [self.schema[n] for n in group_by]
        agg_specs: list[tuple[str, int | None, str]] = []
        for out_name, (in_name, agg) in aggregations.items():
            if agg not in _AGGS:
                raise SchemaError(f"unknown aggregate {agg!r}")
            in_idx = None if agg == "count" and in_name == "*" else (
                self.schema.position(in_name)
            )
            dtype = "int" if agg == "count" else (
                "float" if agg in ("mean", "sum") else
                self.schema[in_name].dtype
            )
            out_cols.append(Column(out_name, dtype))
            agg_specs.append((out_name, in_idx, agg))

        rows: list[Row] = []
        provs: list[ProvExpr] = []
        for key, members in groups.items():
            first_row = self._rows[members[0]]
            out = [first_row[k] for k in group_idx]
            for _name, in_idx, agg in agg_specs:
                if agg == "count" and in_idx is None:
                    out.append(len(members))
                else:
                    vals = [
                        self._rows[m][in_idx]
                        for m in members
                        if self._rows[m][in_idx] is not None
                    ]
                    out.append(_AGGS[agg](vals))
            rows.append(tuple(out))
            provs.append(plus(*(self._prov[m] for m in members)))
        return self._derive(self.name, Schema(out_cols), rows, provs)

    def order_by(self, names: Sequence[str], descending: bool = False) -> "Relation":
        idx = self.schema.positions(names)
        order = sorted(
            range(len(self._rows)),
            key=lambda i: tuple(_sort_key(self._rows[i][k]) for k in idx),
            reverse=descending,
        )
        return self._derive(
            self.name,
            self.schema,
            [self._rows[i] for i in order],
            [self._prov[i] for i in order],
        )

    def limit(self, n: int) -> "Relation":
        return self._derive(self.name, self.schema, self._rows[:n], self._prov[:n])

    def sample(self, n: int, rng) -> "Relation":
        """Uniform sample without replacement (``rng``: numpy Generator)."""
        if n >= len(self._rows):
            return self
        idx = rng.choice(len(self._rows), size=n, replace=False)
        return self._derive(
            self.name,
            self.schema,
            [self._rows[i] for i in idx],
            [self._prov[i] for i in idx],
        )

    def map_column(self, name: str, fn: Callable[[Any], Any]) -> "Relation":
        """Replace one column's values with ``fn(value)`` (dtype becomes any)."""
        i = self.schema.position(name)
        rows = [row[:i] + (fn(row[i]),) + row[i + 1 :] for row in self._rows]
        cols = [
            Column(c.name, "any", c.semantic) if c.name == name else c
            for c in self.schema.columns
        ]
        return self._derive(self.name, Schema(cols), rows, self._prov)

    def with_provenance_root(self, source: str) -> "Relation":
        """Re-tag every row as a base tuple of ``source`` (ingestion reset)."""
        prov = [ProvToken(source, i) for i in range(len(self._rows))]
        return self._derive(self.name, self.schema, self._rows, prov)

    def without_provenance(self) -> "Relation":
        prov = [ProvOne() for _ in self._rows]
        return self._derive(self.name, self.schema, self._rows, prov)


_AGGS: dict[str, Callable[[list], Any]] = {
    "count": lambda vals: len(vals),
    "sum": lambda vals: float(sum(vals)) if vals else 0.0,
    "mean": lambda vals: float(sum(vals)) / len(vals) if vals else None,
    "min": lambda vals: min(vals) if vals else None,
    "max": lambda vals: max(vals) if vals else None,
    "first": lambda vals: vals[0] if vals else None,
}


def _freeze_row(row: Row) -> tuple:
    return tuple(_freeze(v) for v in row)


def _sort_key(value: Any):
    """Total order with NULLs first and mixed types segregated by type name."""
    if value is None:
        return (0, "", 0)
    if isinstance(value, bool):
        return (1, "bool", int(value))
    if isinstance(value, (int, float)):
        return (1, "num", value)
    return (1, type(value).__name__, str(value))


def _cell_str(value: Any) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def _infer_dtype(records: list[Mapping[str, Any]], name: str) -> str:
    kinds = set()
    for rec in records:
        v = rec.get(name)
        if v is None:
            continue
        if isinstance(v, bool):
            kinds.add("bool")
        elif isinstance(v, int):
            kinds.add("int")
        elif isinstance(v, float):
            kinds.add("float")
        elif isinstance(v, str):
            kinds.add("str")
        else:
            return "any"
    if not kinds:
        return "any"
    if kinds <= {"int"}:
        return "int"
    if kinds <= {"int", "float"}:
        return "float"
    if len(kinds) == 1:
        return kinds.pop()
    return "any"
