"""Schemas for the relational substrate.

A :class:`Schema` is an ordered collection of :class:`Column` objects. Columns
carry a name, a declared dtype and an optional *semantic tag* — a free-form
label ("temperature", "employee_id") that the discovery subsystem uses to
match attributes across datasets whose physical names differ.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Iterable, Iterator

from ..errors import SchemaError, TypeMismatchError, UnknownColumnError

#: dtypes understood by the substrate.  ``any`` disables checking and is used
#: for fused (multi-valued) cells produced by the fusion operators.
DTYPES = ("int", "float", "str", "bool", "any")

_PYTYPES = {
    "int": (int,),
    "float": (int, float),
    "str": (str,),
    "bool": (bool,),
}


@dataclass(frozen=True)
class Column:
    """A single attribute of a relation."""

    name: str
    dtype: str = "any"
    semantic: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.dtype not in DTYPES:
            raise SchemaError(
                f"unknown dtype {self.dtype!r}; expected one of {DTYPES}"
            )

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is valid for this column (None = NULL)."""
        if value is None or self.dtype == "any":
            return True
        pytypes = _PYTYPES[self.dtype]
        if self.dtype in ("int", "float") and isinstance(value, bool):
            # bool is a subclass of int; reject it for numeric columns.
            return False
        return isinstance(value, pytypes)

    def renamed(self, name: str) -> "Column":
        return replace(self, name=name)


class Schema:
    """An ordered, duplicate-free collection of columns."""

    __slots__ = ("_columns", "_index")

    def __init__(self, columns: Iterable[Column | tuple | str]):
        cols: list[Column] = []
        for c in columns:
            if isinstance(c, Column):
                cols.append(c)
            elif isinstance(c, str):
                cols.append(Column(c))
            elif isinstance(c, tuple):
                cols.append(Column(*c))
            else:
                raise SchemaError(f"cannot build a column from {c!r}")
        names = [c.name for c in cols]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise SchemaError(f"duplicate column names: {dupes}")
        self._columns: tuple[Column, ...] = tuple(cols)
        self._index: dict[str, int] = {c.name: i for i, c in enumerate(cols)}

    # -- basic container protocol ------------------------------------------
    @property
    def columns(self) -> tuple[Column, ...]:
        return self._columns

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self._columns)

    def __len__(self) -> int:
        return len(self._columns)

    def __iter__(self) -> Iterator[Column]:
        return iter(self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, name: str) -> Column:
        try:
            return self._columns[self._index[name]]
        except KeyError:
            raise UnknownColumnError(
                f"column {name!r} not in schema {list(self.names)}"
            ) from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._columns == other._columns

    def __hash__(self) -> int:
        return hash(self._columns)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{c.name}:{c.dtype}" + (f"[{c.semantic}]" if c.semantic else "")
            for c in self._columns
        )
        return f"Schema({parts})"

    # -- helpers ------------------------------------------------------------
    def position(self, name: str) -> int:
        """Index of ``name`` in the column order."""
        if name not in self._index:
            raise UnknownColumnError(
                f"column {name!r} not in schema {list(self.names)}"
            )
        return self._index[name]

    def positions(self, names: Iterable[str]) -> list[int]:
        return [self.position(n) for n in names]

    def project(self, names: Iterable[str]) -> "Schema":
        return Schema([self[n] for n in names])

    def rename(self, mapping: dict[str, str]) -> "Schema":
        for old in mapping:
            if old not in self:
                raise UnknownColumnError(f"cannot rename unknown column {old!r}")
        return Schema(
            [c.renamed(mapping.get(c.name, c.name)) for c in self._columns]
        )

    def concat(self, other: "Schema") -> "Schema":
        """Schema of a product/join; raises on name clashes."""
        clash = set(self.names) & set(other.names)
        if clash:
            raise SchemaError(
                f"column name clash when concatenating schemas: {sorted(clash)}"
            )
        return Schema(list(self._columns) + list(other._columns))

    def validate_row(self, row: tuple) -> None:
        """Check arity and dtypes of a row against this schema."""
        if len(row) != len(self._columns):
            raise SchemaError(
                f"row arity {len(row)} does not match schema arity "
                f"{len(self._columns)}"
            )
        for col, value in zip(self._columns, row):
            if not col.accepts(value):
                raise TypeMismatchError(
                    f"value {value!r} is not valid for column "
                    f"{col.name!r}:{col.dtype}"
                )

    def with_semantic(self, name: str, semantic: str) -> "Schema":
        """Return a copy with the semantic tag of one column replaced."""
        return Schema(
            [
                replace(c, semantic=semantic) if c.name == name else c
                for c in self._columns
            ]
        )
