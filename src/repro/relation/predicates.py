"""Structured selection predicates with a vectorized compile target.

An arbitrary Python callable handed to :meth:`RelationExpr.select` is a
black box: engines can only evaluate it row by row.  The predicate
classes here — :class:`Eq`, :class:`In`, :class:`Range` and the
conjunction :class:`And` — keep the selection's *structure* visible, so
the columnar engine can compile it to a numpy boolean mask over whole
column vectors instead of looping.

Every predicate is also a plain row callable (``pred(row_dict)``), which
makes the row-by-row path — the iteration engine, and the columnar
engine's fallback — the **bit-identity oracle** for the mask: for every
row, ``mask[i] == bool(pred(row_i))``.  Where vectorized arithmetic
cannot reproduce the row semantics exactly, :meth:`Predicate.mask`
returns ``None`` and the engine falls back to the loop:

* ``In`` membership tests match ``float('nan')`` by object identity
  (Python's ``in`` short-circuits on ``is``) while ``==`` never does, so
  NaN operands disable the mask;
* non-scalar operands (lists, arrays) would trigger numpy broadcasting
  instead of elementwise comparison and are likewise rejected.

``Range`` mirrors its row form comparison-for-comparison: a ``None``
cell never matches, and a NaN cell *passes* both bound checks (it is
neither below ``low`` nor above ``high`` under IEEE comparisons) on both
paths.

Predicates survive selection pushdown through column renames
structurally: :meth:`Predicate.rename` rewrites the referenced column
names and returns a predicate of the same shape (wrapping in a re-keying
lambda, as pushdown does for opaque callables, would destroy the
structure and with it the vectorization).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Mapping

import numpy as np

__all__ = ["Predicate", "Eq", "In", "Range", "And"]


def _scalar_operand(value: Any) -> bool:
    """True when comparing an object-array elementwise against ``value``
    is sound: plain scalars only — sequences/arrays would broadcast."""
    return value is None or isinstance(value, (int, float, str, bool))


def _bool_mask(result: Any, n: int) -> np.ndarray:
    """Coerce an elementwise comparison result to a boolean mask of
    length ``n`` (raises when a cell's comparison was not boolean —
    callers treat that as "cannot vectorize")."""
    mask = np.asarray(result, dtype=bool)
    if mask.shape != (n,):
        raise ValueError("comparison did not produce one bool per row")
    return mask


def _not_none_mask(arr: np.ndarray, n: int) -> np.ndarray:
    """Non-null mask via one C-level elementwise pass.  ``v != None``
    falls back to the identity comparison for every type that leaves
    ``__ne__`` unimplemented against None — i.e. exactly ``v is not
    None`` for scalar cells; a cell whose comparison misbehaves fails
    the bool coercion and the caller falls back to the row loop."""
    return _bool_mask(np.not_equal(arr, None), n)


class Predicate:
    """Base class: a row callable that may also compile to a numpy mask."""

    def __call__(self, row: Mapping[str, Any]) -> bool:
        raise NotImplementedError

    def referenced_columns(self) -> tuple[str, ...]:
        """The input columns the predicate reads (lets ``select`` restrict
        the row dict automatically, enabling pushdown past joins)."""
        raise NotImplementedError

    def rename(self, mapping: Mapping[str, str]) -> "Predicate":
        """A structurally identical predicate reading renamed columns."""
        raise NotImplementedError

    def mask(
        self, arrays: Mapping[str, np.ndarray], n: int
    ) -> np.ndarray | None:
        """Boolean keep-mask over ``n`` rows, or None when the vectorized
        form cannot reproduce the row semantics bit-for-bit."""
        return None


@dataclass(frozen=True)
class Eq(Predicate):
    """``row[column] == value`` (plain ``==`` on both paths)."""

    column: str
    value: Any

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] == self.value

    def referenced_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def rename(self, mapping: Mapping[str, str]) -> "Eq":
        return Eq(mapping.get(self.column, self.column), self.value)

    def mask(self, arrays, n):
        if not _scalar_operand(self.value):
            return None
        return _bool_mask(np.equal(arrays[self.column], self.value), n)


@dataclass(frozen=True)
class In(Predicate):
    """``row[column] in values`` (membership, identity-then-equality)."""

    column: str
    values: tuple

    def __post_init__(self):
        object.__setattr__(self, "values", tuple(self.values))

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return row[self.column] in self.values

    def referenced_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def rename(self, mapping: Mapping[str, str]) -> "In":
        return In(mapping.get(self.column, self.column), self.values)

    def mask(self, arrays, n):
        if not all(_scalar_operand(v) for v in self.values):
            return None
        if any(isinstance(v, float) and math.isnan(v) for v in self.values):
            return None  # ``in`` matches NaN by identity; ``==`` cannot
        arr = arrays[self.column]
        out = np.zeros(n, dtype=bool)
        for v in self.values:
            out |= _bool_mask(np.equal(arr, v), n)
        return out


@dataclass(frozen=True)
class Range(Predicate):
    """Inclusive bounds check; ``None`` bounds are open ends.

    A ``None`` cell never matches.  Both paths apply the *same* two
    comparisons (``v < low`` / ``v > high``, negated), so exotic
    orderings — NaN rejects every comparison and therefore passes —
    agree bit-for-bit."""

    column: str
    low: Any = None
    high: Any = None

    def __call__(self, row: Mapping[str, Any]) -> bool:
        v = row[self.column]
        if v is None:
            return False
        if self.low is not None and v < self.low:
            return False
        if self.high is not None and v > self.high:
            return False
        return True

    def referenced_columns(self) -> tuple[str, ...]:
        return (self.column,)

    def rename(self, mapping: Mapping[str, str]) -> "Range":
        return Range(
            mapping.get(self.column, self.column), self.low, self.high
        )

    def mask(self, arrays, n):
        for bound in (self.low, self.high):
            if bound is not None and not _scalar_operand(bound):
                return None
        arr = arrays[self.column]
        nn = _not_none_mask(arr, n)
        vals = arr[nn]
        m = np.ones(vals.size, dtype=bool)
        with np.errstate(invalid="ignore"):  # NaN passing bounds is by design
            if self.low is not None:
                m &= ~_bool_mask(np.less(vals, self.low), vals.size)
            if self.high is not None:
                m &= ~_bool_mask(np.greater(vals, self.high), vals.size)
        out = np.zeros(n, dtype=bool)
        out[nn] = m
        return out


class And(Predicate):
    """Conjunction: every member predicate must hold."""

    def __init__(self, *predicates: Predicate):
        self.predicates = tuple(predicates)

    def __call__(self, row: Mapping[str, Any]) -> bool:
        return all(p(row) for p in self.predicates)

    def referenced_columns(self) -> tuple[str, ...]:
        seen: list[str] = []
        for p in self.predicates:
            for c in p.referenced_columns():
                if c not in seen:
                    seen.append(c)
        return tuple(seen)

    def rename(self, mapping: Mapping[str, str]) -> "And":
        return And(*(p.rename(mapping) for p in self.predicates))

    def mask(self, arrays, n):
        out = np.ones(n, dtype=bool)
        for p in self.predicates:
            m = p.mask(arrays, n)
            if m is None:
                return None
            out &= m
        return out

    def __eq__(self, other):
        return isinstance(other, And) and self.predicates == other.predicates

    def __hash__(self):
        return hash((And, self.predicates))

    def __repr__(self):
        inner = ", ".join(repr(p) for p in self.predicates)
        return f"And({inner})"
