"""Memoized columnar view over a :class:`~repro.relation.relation.Relation`.

The ingest cold path (profiling, sketching, content hashing) and several
relational operators all need per-column data that the row-major tuple
storage keeps re-deriving: the value vector, one canonical ``repr`` string
per value, null counts, value frequencies, a separator-delimited canonical
byte buffer, and a numeric array.  Relations are immutable, so all of it
can be computed once and shared — a :class:`ColumnarView` is built lazily
on first use and cached on the relation (``Relation.columnar``).

For columns whose dtype guarantees that equal values share one ``repr``
(:data:`REPR_DEDUP_DTYPES`), everything derives from a **single counting
pass**: ``Counter(values)`` yields the null count and the distinct value
universe, ``repr`` runs once per *distinct* value, and the per-row repr
vector, the distinct token set for MinHash and the categorical frequency
table are all fanned out from that one table.  Float and ``any`` columns
fall back to per-value derivation (``0.0 == -0.0`` yet their reprs differ,
and containers are unhashable).

The canonical byte buffer of a column is exactly the byte stream the
scalar ``column_content_hash`` loop feeds BLAKE2b (``repr(value)`` UTF-8
encoded, each value followed by ``0x1f``), so digesting it in a single
C-level call yields a bit-identical hash.

Values in columns with a declared scalar dtype (int/float/str/bool) are
assumed to be plain scalars or ``None`` per schema validation; only those
columns get the fast paths — ``any``-typed columns (which may hold lists
or other containers) always take the row-wise reference implementations.
"""

from __future__ import annotations

import hashlib
import struct
from collections import Counter
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .relation import Relation

#: dtypes whose values are guaranteed hashable scalars (or None)
SCALAR_DTYPES = frozenset(("int", "float", "str", "bool"))

#: dtypes where equal values always share one ``repr`` (so per-column work
#: can run per *distinct* value and fan out through a dict).  ``float`` is
#: excluded: ``0.0 == -0.0`` yet their reprs differ, so value-keyed dedup
#: could corrupt the canonical stream.  The guarantee only holds for the
#: exact builtin types — an ``IntEnum`` equals its int but reprs
#: differently — so eligibility also requires an observed-type check
#: (:data:`_DEDUP_EXACT_TYPES`).
REPR_DEDUP_DTYPES = frozenset(("int", "str", "bool"))

#: per-dtype sets of *exact* runtime types under which ``repr``/``str``
#: shortcuts are sound; subclasses (IntEnum, str subtypes) compare equal
#: to builtins yet render differently, so observing any other type
#: disables every value-keyed shortcut for that column.  A ``float``
#: column may legitimately hold ints (str == repr for both).
_EXACT_TYPES = {
    "int": frozenset((int, type(None))),
    "str": frozenset((str, type(None))),
    "bool": frozenset((bool, type(None))),
    "float": frozenset((float, int, type(None))),
}

#: exact type set under which raw-bit-pattern dedup is sound for floats
_FLOAT_ONLY_TYPES = frozenset((float, type(None)))

#: columns shorter than this skip the counting pass (overhead beats reuse)
_COUNT_MIN_ROWS = 64

#: separator byte terminating each canonical value (matches the scalar
#: content-hash loop)
CANONICAL_SEP = "\x1f"

# -- repr-free canonical packing (the "oph" scheme's numeric tokens) -------
#
# Numeric values canonicalize to a fixed 9-byte row: one tag byte plus an
# 8-byte little-endian payload.  The encoding is a *total* function of the
# value (not of its Python type), so ``int 1``, ``float 1.0`` and ``-0.0``
# all pack identically — numerically equal values share one token, which is
# what join discovery wants — while NaN payload bits collapse to one
# canonical quiet NaN.  Rows hash directly through
# ``repro.sketches.minhash.hash_packed`` without ever building a string.

#: width of one packed canonical row (tag byte + 8-byte payload)
PACK_WIDTH = 9

_TAG_NULL = ord("n")
_TAG_BOOL = ord("b")
_TAG_INT = ord("i")
_TAG_FLOAT = ord("f")
_TAG_REPR = ord("r")  # ints beyond int64: 8-byte BLAKE2b of the repr

_NULL_ROW = b"n" + b"\x00" * 8
_NAN_ROW = b"f" + struct.pack("<Q", 0x7FF8000000000000)
_INT64_MIN, _INT64_MAX = -(1 << 63), (1 << 63) - 1


def pack_value(value: object) -> bytes:
    """Scalar reference canonicalization of one numeric/bool cell.

    * ``None`` → null row; ``bool`` → tag ``b`` + 0/1.
    * integral values (ints, and floats with integral value) in int64
      range → tag ``i`` + the exact int64 (normalizes ``-0.0`` → ``0``
      and makes ``1 == 1.0`` share a token).
    * other floats → tag ``f`` + the IEEE bits, with every NaN payload
      collapsed to one canonical quiet NaN.
    * ints beyond int64 → tag ``r`` + an 8-byte BLAKE2b of the repr.

    Must stay bit-identical to the vectorized matrix builder
    (:meth:`ColumnarView.packed_matrix`)."""
    if value is None:
        return _NULL_ROW
    t = type(value)
    if t is bool:
        return b"b\x01" + b"\x00" * 7 if value else b"b" + b"\x00" * 8
    if t is int:
        if _INT64_MIN <= value <= _INT64_MAX:
            return b"i" + struct.pack("<q", value)
        return b"r" + hashlib.blake2b(
            repr(value).encode(), digest_size=8
        ).digest()
    f = float(value)
    if f != f:
        return _NAN_ROW
    if f.is_integer() and -(2.0 ** 63) <= f < 2.0 ** 63:
        return b"i" + struct.pack("<q", int(f))
    return b"f" + struct.pack("<d", f)


def unpack_value(row: bytes) -> object:
    """Decode a packed row back to a display value (distinct-universe
    decoding for categorical summaries; ``r`` rows are not reversible)."""
    tag = row[0]
    if tag == _TAG_NULL:
        return None
    if tag == _TAG_BOOL:
        return bool(row[1])
    if tag == _TAG_INT:
        return struct.unpack_from("<q", row, 1)[0]
    if tag == _TAG_FLOAT:
        return struct.unpack_from("<d", row, 1)[0]
    raise ValueError(f"packed row with tag {chr(tag)!r} is not reversible")


class ColumnarView:
    """Per-column caches for one immutable relation (built lazily)."""

    __slots__ = (
        "_relation", "_values", "_reprs", "_nulls", "_non_null",
        "_counts", "_counts_any", "_repr_table", "_distinct", "_exact",
        "_types", "_utf8_ok", "_packed", "_packed_distinct", "_numeric",
        "oph_hashes", "retain_text",
    )

    def __init__(self, relation: "Relation"):
        self._relation = relation
        #: set by owners of a profiling pass (the metadata engine) so
        #: intermediate consumers like ``content_hash`` keep the text
        #: caches alive for the rest of the pass instead of releasing
        #: what they had to build
        self.retain_text = False
        self._values: dict[str, tuple] = {}
        self._reprs: dict[str, list[str]] = {}
        self._nulls: dict[str, int] = {}
        #: (non-null values, non-null reprs) per column; aliases the full
        #: vectors when the column has no nulls
        self._non_null: dict[str, tuple] = {}
        #: value -> occurrence count (None excluded), dedup dtypes only
        self._counts: dict[str, Mapping] = {}
        #: value -> repr (including None when present), dedup dtypes only
        self._repr_table: dict[str, dict] = {}
        #: distinct non-null reprs (the MinHash token universe)
        self._distinct: dict[str, set[str]] = {}
        self._exact: dict[str, bool] = {}
        #: observed runtime types per column (one C-level scan, cached)
        self._types: dict[str, frozenset] = {}
        #: ungated value counts for the "oph" profile path (may cover
        #: columns ``value_counts`` refuses; never fed back into the
        #: classic repr caches)
        self._counts_any: dict[str, Mapping | None] = {}
        #: join-validated "every non-null cell is a str" verdicts (the
        #: gate of the repr-free UTF-8 stream; accepts str subclasses,
        #: whose character content is their canonical form)
        self._utf8_ok: dict[str, bool] = {}
        #: non-null float64 vectors recycled from the packed builders so
        #: numeric summaries skip a second per-value pass
        self._numeric: dict[str, np.ndarray] = {}
        #: packed canonical (n, PACK_WIDTH) matrices, numeric/bool columns
        self._packed: dict[str, np.ndarray] = {}
        #: (distinct packed rows, counts) over non-null values
        self._packed_distinct: dict[str, tuple[np.ndarray, np.ndarray]] = {}
        #: repr-free column content hashes memoized by the profiler (the
        #: "oph" scheme computes them once for the table digest, then
        #: reuses them per column profile)
        self.oph_hashes: dict[str, str] = {}

    # -- raw vectors -------------------------------------------------------
    def materialize(self) -> None:
        """Build every column vector in one C-level transpose — cheaper
        than per-column row scans when a consumer (the table profiler or
        the relation content hash) is about to touch all of them anyway."""
        relation = self._relation
        if len(self._values) >= len(relation.schema):
            return
        if relation.rows:
            columns = zip(*relation.rows)
        else:
            columns = ((),) * len(relation.schema)
        for name, column in zip(relation.schema.names, columns):
            # keep already-built vectors (and their derived caches)
            self._values.setdefault(name, column)

    def values(self, name: str) -> tuple:
        """One column's values in row order, materialized once."""
        vals = self._values.get(name)
        if vals is None:
            i = self._relation.schema.position(name)
            vals = tuple([row[i] for row in self._relation.rows])
            self._values[name] = vals
        return vals

    # -- the single counting pass (dedup dtypes) ---------------------------
    def observed_types(self, name: str) -> frozenset:
        """The set of runtime types present in the column (one C-level
        scan, cached) — drives every exactness/dedup eligibility check."""
        types = self._types.get(name)
        if types is None:
            types = frozenset(map(type, self.values(name)))
            self._types[name] = types
        return types

    def values_exact(self, name: str) -> bool:
        """True when every cell is the exact builtin type the dtype
        promises (or None) — the precondition for every repr/str
        shortcut."""
        ok = self._exact.get(name)
        if ok is None:
            exact = _EXACT_TYPES.get(self._relation.schema[name].dtype)
            ok = exact is not None and self.observed_types(name) <= exact
            self._exact[name] = ok
        return ok

    def _dedupable(self, name: str) -> bool:
        return (
            self._relation.schema[name].dtype in REPR_DEDUP_DTYPES
            and len(self._relation.rows) >= _COUNT_MIN_ROWS
            and self.values_exact(name)
        )

    def value_counts(self, name: str) -> Mapping | None:
        """Occurrence count per distinct non-null value (one C-level
        ``Counter`` pass), or None when counting by value is unsound for
        the dtype (float/any) or the column is trivially small."""
        counts = self._counts.get(name)
        if counts is None:
            if not self._dedupable(name):
                return None
            counts = Counter(self.values(name))
            nulls = counts.pop(None, 0)
            self._counts[name] = counts
            self._nulls[name] = nulls
        return counts

    def value_counts_any(self, name: str) -> Mapping | None:
        """Occurrence counts without the dedup-soundness gate (the "oph"
        profile path counts raw values for any hashable column).  Shares
        an already-built :meth:`value_counts` result but caches its own —
        the classic repr caches never see counts for columns they would
        refuse.  Returns None only for unhashable cells."""
        sentinel = self._counts_any
        if name in sentinel:
            return sentinel[name]
        counts = self._counts.get(name)
        if counts is None:
            try:
                counts = Counter(self.values(name))
            except TypeError:
                sentinel[name] = None
                return None
            nulls = counts.pop(None, 0)
            self._nulls.setdefault(name, nulls)
        sentinel[name] = counts
        return counts

    def _table(self, name: str) -> dict:
        """``value -> repr`` over the distinct universe (dedup dtypes)."""
        table = self._repr_table.get(name)
        if table is None:
            counts = self.value_counts(name)
            table = {v: repr(v) for v in counts}
            self._distinct[name] = set(table.values())
            if self._nulls[name]:
                table[None] = "None"
            self._repr_table[name] = table
        return table

    # -- derived vectors ---------------------------------------------------
    def reprs(self, name: str) -> list[str]:
        """``repr`` of every value in row order (the canonical tokens).

        Dedup-dtype columns compute one repr per distinct value and fan it
        out through the table instead of calling ``repr`` per cell."""
        reprs = self._reprs.get(name)
        if reprs is None:
            values = self.values(name)
            if self._dedupable(name):
                reprs = list(map(self._table(name).__getitem__, values))
            elif self._float_dedupable(name):
                reprs = self._float_reprs(name)
            else:
                reprs = list(map(repr, values))
            self._reprs[name] = reprs
        return reprs

    def _float_dedupable(self, name: str) -> bool:
        """Float columns can't dedup by *value* (``0.0 == -0.0`` with
        different reprs) but can dedup by raw IEEE bit pattern — equal
        bits imply identical reprs.  Only sound when every cell is a real
        ``float`` (ints share bit patterns with equal floats yet repr
        differently), hence the observed-type guard."""
        return (
            self._relation.schema[name].dtype == "float"
            and len(self._relation.rows) >= _COUNT_MIN_ROWS
            and self.observed_types(name) <= _FLOAT_ONLY_TYPES
        )

    def _float_reprs(self, name: str) -> list[str]:
        """One ``repr`` per distinct bit pattern, fanned out via
        ``np.take`` — extends the dedup fast path to float columns."""
        values = self.values(name)
        n = len(values)
        nulls = self.null_count(name)
        if nulls:
            mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=n
            )
            arr = np.fromiter(
                (0.0 if v is None else v for v in values),
                dtype=np.float64, count=n,
            )
        else:
            mask = None
            arr = np.fromiter(values, dtype=np.float64, count=n)
        bits = arr.view(np.uint64)
        uniq, inverse = np.unique(bits, return_inverse=True)
        table = np.array(
            [repr(float(b)) for b in uniq.view(np.float64)], dtype=object
        )
        out = table[inverse]
        if mask is not None:
            out[mask] = "None"
        return out.tolist()

    def null_count(self, name: str) -> int:
        nulls = self._nulls.get(name)
        if nulls is None:
            values = self.values(name)
            if self._relation.schema[name].dtype in SCALAR_DTYPES:
                # tuple.count is one C pass — cheaper than forcing the
                # counting pass into existence just for the null tally
                nulls = values.count(None)
            else:
                # identity check, not __eq__: an ``any``-typed cell may
                # hold objects whose equality is non-boolean (arrays)
                nulls = sum(1 for v in values if v is None)
            self._nulls[name] = nulls
        return nulls

    def distinct_reprs(self, name: str) -> set[str]:
        """Distinct reprs of the non-null values — the MinHash token
        universe and the distinct-count numerator."""
        distinct = self._distinct.get(name)
        if distinct is None:
            if self._dedupable(name):
                self._table(name)  # populates the distinct set
                return self._distinct[name]
            _, non_null_reprs = self.non_null(name)
            distinct = set(non_null_reprs)
            self._distinct[name] = distinct
        return distinct

    def categorical_counts(self, name: str) -> Mapping[str, int] | None:
        """``str(value) -> count`` over non-null values, derived from the
        counting pass (dedup dtypes only; str(v) == repr(v) for int/bool
        and str(v) is v for str)."""
        counts = self.value_counts(name)
        if counts is None:
            return None
        if self._relation.schema[name].dtype == "str":
            return counts
        table = self._table(name)
        return {table[v]: c for v, c in counts.items()}

    def non_null(self, name: str) -> tuple[tuple, list[str]]:
        """(non-null values, their reprs), both in row order."""
        pair = self._non_null.get(name)
        if pair is None:
            values, reprs = self.values(name), self.reprs(name)
            if self.null_count(name) == 0:
                pair = (values, reprs)
            else:
                kept = [
                    (v, r) for v, r in zip(values, reprs) if v is not None
                ]
                pair = (
                    tuple(v for v, _ in kept),
                    [r for _, r in kept],
                )
            self._non_null[name] = pair
        return pair

    def release_text(self) -> None:
        """Drop the derived text caches (reprs, counts, distinct sets).

        They exist to be shared across the consumers of *one* profiling
        pass; once a dataset is registered they would otherwise stay
        pinned for the relation's lifetime (~tens of bytes per cell).
        The value vectors stay — they alias the row tuples' objects and
        keep ``column()``/``project()`` fast.  Everything released is
        rebuilt lazily if asked for again."""
        self._reprs.clear()
        self._non_null.clear()
        self._counts.clear()
        self._counts_any.clear()
        self._repr_table.clear()
        self._distinct.clear()
        self._packed.clear()
        self._packed_distinct.clear()
        self._numeric.clear()
        self.oph_hashes.clear()

    # -- derived buffers (computed on demand, not cached: single-use) ------
    def canonical_bytes(self, name: str) -> bytes:
        """The column's canonical byte buffer: ``repr`` of each value (nulls
        included), UTF-8, each terminated by the ``0x1f`` separator — the
        exact stream the scalar content-hash loop produces."""
        reprs = self.reprs(name)
        if not reprs:
            return b""
        return (CANONICAL_SEP.join(reprs) + CANONICAL_SEP).encode()

    def numeric_array(self, name: str) -> np.ndarray:
        """Non-null values as a float64 array (numeric columns only).
        Repr-free: reuses the vector the packed builders already cast
        (or the cached non-null pair) when present, but never forces the
        repr vector into existence just to drop nulls."""
        cached = self._numeric.get(name)
        if cached is not None:
            return cached
        if self.null_count(name) == 0:
            values = self.values(name)
        else:
            pair = self._non_null.get(name)
            values = (
                pair[0] if pair is not None
                else tuple(v for v in self.values(name) if v is not None)
            )
        return np.asarray(values, dtype=float)

    # -- packed canonical rows (the repr-free "oph" ingest path) -----------
    def packable(self, name: str) -> bool:
        """True when the column canonicalizes through the packed numeric
        encoding: a declared int/float/bool dtype holding only the exact
        builtin types (or None)."""
        return (
            self._relation.schema[name].dtype in ("int", "float", "bool")
            and self.values_exact(name)
        )

    def packed_matrix(self, name: str) -> np.ndarray:
        """The column as an (n, PACK_WIDTH) uint8 matrix of canonical
        packed rows (nulls included), bit-identical to
        ``np.frombuffer(b"".join(map(pack_value, values)))`` but built
        with vectorized casts for int/float/bool columns."""
        mat = self._packed.get(name)
        if mat is None:
            mat = self._build_packed(name)
            mat.setflags(write=False)
            self._packed[name] = mat
        return mat

    def _build_packed(self, name: str) -> np.ndarray:
        values = self.values(name)
        n = len(values)
        dtype = self._relation.schema[name].dtype
        nulls = self.null_count(name)
        if nulls:
            null_mask = np.fromiter(
                (v is None for v in values), dtype=bool, count=n
            )
        else:
            null_mask = None
        out = np.zeros((n, PACK_WIDTH), dtype=np.uint8)
        try:
            if dtype == "bool":
                out[:, 0] = _TAG_BOOL
                out[:, 1] = np.fromiter(
                    (bool(v) if v is not None else False for v in values),
                    dtype=np.uint8, count=n,
                ) if nulls else np.fromiter(
                    values, dtype=np.uint8, count=n
                )
            elif dtype == "int":
                # ints beyond int64 raise OverflowError -> scalar fallback
                ints = np.fromiter(
                    (0 if v is None else v for v in values),
                    dtype=np.int64, count=n,
                ) if nulls else np.fromiter(values, dtype=np.int64, count=n)
                out[:, 0] = _TAG_INT
                out[:, 1:] = ints.astype("<i8").view(np.uint8).reshape(n, 8)
                numeric = (
                    ints[~null_mask] if null_mask is not None else ints
                ).astype(np.float64)
                numeric.setflags(write=False)
                self._numeric[name] = numeric
            else:
                self._pack_floats(name, values, null_mask, out)
        except OverflowError:
            return np.frombuffer(
                b"".join(map(pack_value, values)), dtype=np.uint8
            ).reshape(n, PACK_WIDTH).copy()
        if null_mask is not None:
            out[null_mask] = np.frombuffer(_NULL_ROW, dtype=np.uint8)
        return out

    def _pack_floats(
        self, name: str, values: tuple, null_mask, out: np.ndarray
    ) -> None:
        n = len(values)
        if null_mask is not None:
            arr = np.fromiter(
                (0.0 if v is None else v for v in values),
                dtype=np.float64, count=n,
            )
        else:
            arr = np.fromiter(values, dtype=np.float64, count=n)
        finite = np.isfinite(arr)
        if np.abs(arr[finite]).max(initial=0.0) >= 2.0 ** 53 and any(
            type(v) is int for v in values
        ):
            # a float column may hold ints; the float64 cast above is
            # only exact within 2**53, so large ints force the scalar
            # packer.  The per-cell type scan runs only when a magnitude
            # actually trips the threshold (early-exits on the first int)
            raise OverflowError
        numeric = arr[~null_mask] if null_mask is not None else arr
        numeric.setflags(write=False)
        self._numeric[name] = numeric
        out[:, 0] = _TAG_FLOAT
        nan = np.isnan(arr)
        if nan.any():
            arr = arr.copy()
            arr[nan] = np.frombuffer(
                _NAN_ROW, dtype=np.float64, offset=1
            )[0]
        out[:, 1:] = arr.astype("<f8").view(np.uint8).reshape(n, 8)
        integral = (
            np.isfinite(arr)
            & (arr == np.trunc(arr))
            & (arr >= -(2.0 ** 63))
            & (arr < 2.0 ** 63)
        )
        if integral.any():
            out[integral, 0] = _TAG_INT
            out[integral, 1:] = (
                arr[integral].astype("<i8").view(np.uint8).reshape(-1, 8)
            )

    def packed_distinct(
        self, name: str
    ) -> tuple[np.ndarray, np.ndarray]:
        """(distinct packed rows over the non-null values as a (d,
        PACK_WIDTH) matrix, their occurrence counts) — the repr-free
        token universe, distinct-count numerator and frequency table in
        one ``np.unique`` pass."""
        pair = self._packed_distinct.get(name)
        if pair is None:
            mat = self.packed_matrix(name)
            if self.null_count(name):
                mat = mat[mat[:, 0] != _TAG_NULL]
            rows = np.ascontiguousarray(mat).view(
                np.dtype((np.void, PACK_WIDTH))
            ).ravel()
            uniq, counts = np.unique(rows, return_counts=True)
            pair = (
                uniq.view(np.uint8).reshape(-1, PACK_WIDTH),
                counts,
            )
            self._packed_distinct[name] = pair
        return pair

    def utf8_stream(self, name: str) -> tuple[np.ndarray, bytes] | None:
        """(per-cell lengths, concatenated UTF-8 payload) — the repr-free
        canonical stream of a str column (nulls carry length -1 and no
        payload bytes; lengths are in characters, which uniquely delimits
        a valid UTF-8 concatenation).

        Self-validating: the ``str.join`` IS the type check (it raises on
        any non-str cell in one C pass, far cheaper than a per-cell type
        scan), so the method returns None for columns without a sound
        UTF-8 stream and the verdict is cached for :meth:`utf8_able`.
        str *subclasses* pass — their character content is their
        canonical form under the packed/UTF-8 scheme."""
        if self._utf8_ok.get(name) is False:
            return None
        values = self.values(name)
        n = len(values)
        try:
            if self.null_count(name):
                payload = "".join(
                    v for v in values if v is not None
                ).encode()
                lens = np.fromiter(
                    (-1 if v is None else len(v) for v in values),
                    dtype=np.int64, count=n,
                )
            else:
                payload = "".join(values).encode()
                lens = np.fromiter(map(len, values), dtype=np.int64, count=n)
        except TypeError:
            self._utf8_ok[name] = False
            return None
        self._utf8_ok[name] = True
        return lens, payload

    def utf8_able(self, name: str) -> bool:
        """Whether the column canonicalizes through the UTF-8 stream —
        the branch gate shared by the columnar path and the scalar
        reference oracle (both must take the same branch for their
        outputs to stay bit-identical)."""
        ok = self._utf8_ok.get(name)
        if ok is None:
            ok = self.utf8_stream(name) is not None
        return ok

    def distinct_values(self, name: str) -> set:
        """Distinct non-null values (str columns under "oph": the
        repr-free MinHash token universe — the values *are* their own
        tokens)."""
        counts = self.value_counts_any(name)
        if counts is not None:
            return set(counts)
        values = self.values(name)
        distinct = set(values)
        distinct.discard(None)
        return distinct
