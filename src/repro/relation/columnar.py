"""Memoized columnar view over a :class:`~repro.relation.relation.Relation`.

The ingest cold path (profiling, sketching, content hashing) and several
relational operators all need per-column data that the row-major tuple
storage keeps re-deriving: the value vector, one canonical ``repr`` string
per value, null counts, value frequencies, a separator-delimited canonical
byte buffer, and a numeric array.  Relations are immutable, so all of it
can be computed once and shared — a :class:`ColumnarView` is built lazily
on first use and cached on the relation (``Relation.columnar``).

For columns whose dtype guarantees that equal values share one ``repr``
(:data:`REPR_DEDUP_DTYPES`), everything derives from a **single counting
pass**: ``Counter(values)`` yields the null count and the distinct value
universe, ``repr`` runs once per *distinct* value, and the per-row repr
vector, the distinct token set for MinHash and the categorical frequency
table are all fanned out from that one table.  Float and ``any`` columns
fall back to per-value derivation (``0.0 == -0.0`` yet their reprs differ,
and containers are unhashable).

The canonical byte buffer of a column is exactly the byte stream the
scalar ``column_content_hash`` loop feeds BLAKE2b (``repr(value)`` UTF-8
encoded, each value followed by ``0x1f``), so digesting it in a single
C-level call yields a bit-identical hash.

Values in columns with a declared scalar dtype (int/float/str/bool) are
assumed to be plain scalars or ``None`` per schema validation; only those
columns get the fast paths — ``any``-typed columns (which may hold lists
or other containers) always take the row-wise reference implementations.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Mapping

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .relation import Relation

#: dtypes whose values are guaranteed hashable scalars (or None)
SCALAR_DTYPES = frozenset(("int", "float", "str", "bool"))

#: dtypes where equal values always share one ``repr`` (so per-column work
#: can run per *distinct* value and fan out through a dict).  ``float`` is
#: excluded: ``0.0 == -0.0`` yet their reprs differ, so value-keyed dedup
#: could corrupt the canonical stream.  The guarantee only holds for the
#: exact builtin types — an ``IntEnum`` equals its int but reprs
#: differently — so eligibility also requires an observed-type check
#: (:data:`_DEDUP_EXACT_TYPES`).
REPR_DEDUP_DTYPES = frozenset(("int", "str", "bool"))

#: per-dtype sets of *exact* runtime types under which ``repr``/``str``
#: shortcuts are sound; subclasses (IntEnum, str subtypes) compare equal
#: to builtins yet render differently, so observing any other type
#: disables every value-keyed shortcut for that column.  A ``float``
#: column may legitimately hold ints (str == repr for both).
_EXACT_TYPES = {
    "int": frozenset((int, type(None))),
    "str": frozenset((str, type(None))),
    "bool": frozenset((bool, type(None))),
    "float": frozenset((float, int, type(None))),
}

#: columns shorter than this skip the counting pass (overhead beats reuse)
_COUNT_MIN_ROWS = 64

#: separator byte terminating each canonical value (matches the scalar
#: content-hash loop)
CANONICAL_SEP = "\x1f"


class ColumnarView:
    """Per-column caches for one immutable relation (built lazily)."""

    __slots__ = (
        "_relation", "_values", "_reprs", "_nulls", "_non_null",
        "_counts", "_repr_table", "_distinct", "_exact", "retain_text",
    )

    def __init__(self, relation: "Relation"):
        self._relation = relation
        #: set by owners of a profiling pass (the metadata engine) so
        #: intermediate consumers like ``content_hash`` keep the text
        #: caches alive for the rest of the pass instead of releasing
        #: what they had to build
        self.retain_text = False
        self._values: dict[str, tuple] = {}
        self._reprs: dict[str, list[str]] = {}
        self._nulls: dict[str, int] = {}
        #: (non-null values, non-null reprs) per column; aliases the full
        #: vectors when the column has no nulls
        self._non_null: dict[str, tuple] = {}
        #: value -> occurrence count (None excluded), dedup dtypes only
        self._counts: dict[str, Mapping] = {}
        #: value -> repr (including None when present), dedup dtypes only
        self._repr_table: dict[str, dict] = {}
        #: distinct non-null reprs (the MinHash token universe)
        self._distinct: dict[str, set[str]] = {}
        self._exact: dict[str, bool] = {}

    # -- raw vectors -------------------------------------------------------
    def materialize(self) -> None:
        """Build every column vector in one C-level transpose — cheaper
        than per-column row scans when a consumer (the table profiler or
        the relation content hash) is about to touch all of them anyway."""
        relation = self._relation
        if len(self._values) >= len(relation.schema):
            return
        if relation.rows:
            columns = zip(*relation.rows)
        else:
            columns = ((),) * len(relation.schema)
        for name, column in zip(relation.schema.names, columns):
            # keep already-built vectors (and their derived caches)
            self._values.setdefault(name, column)

    def values(self, name: str) -> tuple:
        """One column's values in row order, materialized once."""
        vals = self._values.get(name)
        if vals is None:
            i = self._relation.schema.position(name)
            vals = tuple([row[i] for row in self._relation.rows])
            self._values[name] = vals
        return vals

    # -- the single counting pass (dedup dtypes) ---------------------------
    def values_exact(self, name: str) -> bool:
        """True when every cell is the exact builtin type the dtype
        promises (or None) — the precondition for every repr/str
        shortcut (one C-level type scan, cached)."""
        ok = self._exact.get(name)
        if ok is None:
            exact = _EXACT_TYPES.get(self._relation.schema[name].dtype)
            ok = (
                exact is not None
                and set(map(type, self.values(name))) <= exact
            )
            self._exact[name] = ok
        return ok

    def _dedupable(self, name: str) -> bool:
        return (
            self._relation.schema[name].dtype in REPR_DEDUP_DTYPES
            and len(self._relation.rows) >= _COUNT_MIN_ROWS
            and self.values_exact(name)
        )

    def value_counts(self, name: str) -> Mapping | None:
        """Occurrence count per distinct non-null value (one C-level
        ``Counter`` pass), or None when counting by value is unsound for
        the dtype (float/any) or the column is trivially small."""
        counts = self._counts.get(name)
        if counts is None:
            if not self._dedupable(name):
                return None
            counts = Counter(self.values(name))
            nulls = counts.pop(None, 0)
            self._counts[name] = counts
            self._nulls[name] = nulls
        return counts

    def _table(self, name: str) -> dict:
        """``value -> repr`` over the distinct universe (dedup dtypes)."""
        table = self._repr_table.get(name)
        if table is None:
            counts = self.value_counts(name)
            table = {v: repr(v) for v in counts}
            self._distinct[name] = set(table.values())
            if self._nulls[name]:
                table[None] = "None"
            self._repr_table[name] = table
        return table

    # -- derived vectors ---------------------------------------------------
    def reprs(self, name: str) -> list[str]:
        """``repr`` of every value in row order (the canonical tokens).

        Dedup-dtype columns compute one repr per distinct value and fan it
        out through the table instead of calling ``repr`` per cell."""
        reprs = self._reprs.get(name)
        if reprs is None:
            values = self.values(name)
            if self._dedupable(name):
                reprs = list(map(self._table(name).__getitem__, values))
            else:
                reprs = list(map(repr, values))
            self._reprs[name] = reprs
        return reprs

    def null_count(self, name: str) -> int:
        nulls = self._nulls.get(name)
        if nulls is None:
            if self._dedupable(name):
                self.value_counts(name)  # populates the null count
                return self._nulls[name]
            values = self.values(name)
            if self._relation.schema[name].dtype in SCALAR_DTYPES:
                nulls = values.count(None)
            else:
                # identity check, not __eq__: an ``any``-typed cell may
                # hold objects whose equality is non-boolean (arrays)
                nulls = sum(1 for v in values if v is None)
            self._nulls[name] = nulls
        return nulls

    def distinct_reprs(self, name: str) -> set[str]:
        """Distinct reprs of the non-null values — the MinHash token
        universe and the distinct-count numerator."""
        distinct = self._distinct.get(name)
        if distinct is None:
            if self._dedupable(name):
                self._table(name)  # populates the distinct set
                return self._distinct[name]
            _, non_null_reprs = self.non_null(name)
            distinct = set(non_null_reprs)
            self._distinct[name] = distinct
        return distinct

    def categorical_counts(self, name: str) -> Mapping[str, int] | None:
        """``str(value) -> count`` over non-null values, derived from the
        counting pass (dedup dtypes only; str(v) == repr(v) for int/bool
        and str(v) is v for str)."""
        counts = self.value_counts(name)
        if counts is None:
            return None
        if self._relation.schema[name].dtype == "str":
            return counts
        table = self._table(name)
        return {table[v]: c for v, c in counts.items()}

    def non_null(self, name: str) -> tuple[tuple, list[str]]:
        """(non-null values, their reprs), both in row order."""
        pair = self._non_null.get(name)
        if pair is None:
            values, reprs = self.values(name), self.reprs(name)
            if self.null_count(name) == 0:
                pair = (values, reprs)
            else:
                kept = [
                    (v, r) for v, r in zip(values, reprs) if v is not None
                ]
                pair = (
                    tuple(v for v, _ in kept),
                    [r for _, r in kept],
                )
            self._non_null[name] = pair
        return pair

    def release_text(self) -> None:
        """Drop the derived text caches (reprs, counts, distinct sets).

        They exist to be shared across the consumers of *one* profiling
        pass; once a dataset is registered they would otherwise stay
        pinned for the relation's lifetime (~tens of bytes per cell).
        The value vectors stay — they alias the row tuples' objects and
        keep ``column()``/``project()`` fast.  Everything released is
        rebuilt lazily if asked for again."""
        self._reprs.clear()
        self._non_null.clear()
        self._counts.clear()
        self._repr_table.clear()
        self._distinct.clear()

    # -- derived buffers (computed on demand, not cached: single-use) ------
    def canonical_bytes(self, name: str) -> bytes:
        """The column's canonical byte buffer: ``repr`` of each value (nulls
        included), UTF-8, each terminated by the ``0x1f`` separator — the
        exact stream the scalar content-hash loop produces."""
        reprs = self.reprs(name)
        if not reprs:
            return b""
        return (CANONICAL_SEP.join(reprs) + CANONICAL_SEP).encode()

    def numeric_array(self, name: str) -> np.ndarray:
        """Non-null values as a float64 array (numeric columns only)."""
        values, _ = self.non_null(name)
        return np.asarray(values, dtype=float)
