"""Semiring provenance for relational operators.

The paper's revenue-sharing component (Section 3.2.3) proposes to "leverage
the vast research in provenance" (Green et al.'s provenance semirings) to
propagate the value of a mashup row back to the source datasets.  This module
implements exactly that machinery:

* every base tuple is tagged with a :class:`ProvToken` ``(source, row_id)``;
* relational operators combine annotations with ``+`` (alternative use, e.g.
  union / duplicate elimination) and ``*`` (joint use, e.g. join);
* :func:`evaluate` maps an annotation into any commutative semiring, and
  :func:`source_shares` evaluates the annotation in the "contribution"
  interpretation used by the revenue-sharing engine: each row's value is
  split equally among the joint factors of each derivation, and alternative
  derivations share proportionally.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping

from ..errors import ProvenanceError


class ProvExpr:
    """Base class of provenance annotations (a free semiring expression)."""

    __slots__ = ()

    def tokens(self) -> set["ProvToken"]:
        raise NotImplementedError

    def sources(self) -> set[str]:
        return {t.source for t in self.tokens()}


@dataclass(frozen=True)
class ProvToken(ProvExpr):
    """Annotation of a base tuple: dataset id + row position."""

    source: str
    row_id: int

    def tokens(self) -> set["ProvToken"]:
        return {self}

    def __repr__(self) -> str:
        return f"{self.source}#{self.row_id}"


@dataclass(frozen=True)
class ProvOne(ProvExpr):
    """Multiplicative identity (tuples introduced by the system itself)."""

    def tokens(self) -> set[ProvToken]:
        return set()

    def __repr__(self) -> str:
        return "1"


@dataclass(frozen=True)
class ProvTimes(ProvExpr):
    """Joint derivation: all children were needed (join, product)."""

    children: tuple[ProvExpr, ...]

    def tokens(self) -> set[ProvToken]:
        out: set[ProvToken] = set()
        for c in self.children:
            out |= c.tokens()
        return out

    def __repr__(self) -> str:
        return "(" + " * ".join(map(repr, self.children)) + ")"


@dataclass(frozen=True)
class ProvPlus(ProvExpr):
    """Alternative derivations: any child suffices (union, distinct)."""

    children: tuple[ProvExpr, ...]

    def tokens(self) -> set[ProvToken]:
        out: set[ProvToken] = set()
        for c in self.children:
            out |= c.tokens()
        return out

    def __repr__(self) -> str:
        return "(" + " + ".join(map(repr, self.children)) + ")"


def times(*exprs: ProvExpr) -> ProvExpr:
    """Smart constructor for products (flattens, drops identities)."""
    flat: list[ProvExpr] = []
    for e in exprs:
        if isinstance(e, ProvOne):
            continue
        if isinstance(e, ProvTimes):
            flat.extend(e.children)
        else:
            flat.append(e)
    if not flat:
        return ProvOne()
    if len(flat) == 1:
        return flat[0]
    return ProvTimes(tuple(flat))


def plus(*exprs: ProvExpr) -> ProvExpr:
    """Smart constructor for sums (flattens nested sums)."""
    flat: list[ProvExpr] = []
    for e in exprs:
        if isinstance(e, ProvPlus):
            flat.extend(e.children)
        else:
            flat.append(e)
    if not flat:
        raise ProvenanceError("empty provenance sum")
    if len(flat) == 1:
        return flat[0]
    return ProvPlus(tuple(flat))


def evaluate(
    expr: ProvExpr,
    assignment: Mapping[ProvToken, float] | Callable[[ProvToken], float],
    add: Callable[[float, float], float] = lambda a, b: a + b,
    mul: Callable[[float, float], float] = lambda a, b: a * b,
    one: float = 1.0,
    zero: float = 0.0,
) -> float:
    """Evaluate an annotation in a commutative semiring.

    ``assignment`` maps base tokens to semiring values.  The default
    semiring is (R, +, *), i.e. counting provenance when tokens map to 1.
    """
    lookup = assignment if callable(assignment) else assignment.__getitem__

    def rec(e: ProvExpr) -> float:
        if isinstance(e, ProvToken):
            return lookup(e)
        if isinstance(e, ProvOne):
            return one
        if isinstance(e, ProvTimes):
            acc = one
            for c in e.children:
                acc = mul(acc, rec(c))
            return acc
        if isinstance(e, ProvPlus):
            acc = zero
            for c in e.children:
                acc = add(acc, rec(c))
            return acc
        raise ProvenanceError(f"unknown provenance node {e!r}")

    return rec(expr)


def boolean_sources(expr: ProvExpr) -> set[str]:
    """Which-provenance: the set of datasets that influenced a tuple."""
    return expr.sources()


def derivation_count(expr: ProvExpr) -> int:
    """How many distinct derivations produce the tuple (counting semiring)."""
    return int(evaluate(expr, lambda _t: 1.0))


def token_shares(expr: ProvExpr) -> dict[ProvToken, float]:
    """Split a unit of value over base tokens.

    Each product node splits its share equally among its factors; each sum
    node splits equally among its alternative derivations.  The shares of
    all tokens in the result sum to 1 (unless the expression is ``ProvOne``,
    in which case the dict is empty and the value stays with the system).
    """
    shares: dict[ProvToken, float] = {}

    def rec(e: ProvExpr, weight: float) -> None:
        if isinstance(e, ProvToken):
            shares[e] = shares.get(e, 0.0) + weight
        elif isinstance(e, ProvOne):
            pass
        elif isinstance(e, ProvTimes):
            if e.children:
                w = weight / len(e.children)
                for c in e.children:
                    rec(c, w)
        elif isinstance(e, ProvPlus):
            if e.children:
                w = weight / len(e.children)
                for c in e.children:
                    rec(c, w)
        else:
            raise ProvenanceError(f"unknown provenance node {e!r}")

    rec(expr, 1.0)
    return shares


def source_shares(exprs: Iterable[ProvExpr]) -> dict[str, float]:
    """Aggregate :func:`token_shares` over many rows, grouped by dataset.

    The result sums to the number of expressions that carried at least one
    token (rows made purely by the system contribute nothing).
    """
    out: dict[str, float] = {}
    for e in exprs:
        for token, share in token_shares(e).items():
            out[token.source] = out.get(token.source, 0.0) + share
    return out
