"""Lazy relational algebra: immutable expression trees over relations.

The eager :class:`~repro.relation.relation.Relation` operators materialize
every intermediate result — an N-way mashup join builds N-1 full wide
relations before the final projection throws most of their columns away.
This module (shaped after ``lsst.daf.relation``) makes the algebra lazy:

* a **tree** of frozen dataclass nodes describes the computation —
  :class:`LeafRelation` wraps a materialized relation, the unary ops
  :class:`Project` / :class:`Select` / :class:`Distinct` / :class:`Rename` /
  :class:`Label` / :class:`Extend` and the binary op :class:`Join` compose
  it;
* trees are built through factory methods on :class:`RelationExpr`
  (``leaf.project(...).join(other_leaf, on=...)``), mirroring the eager
  operator signatures one-for-one;
* nothing executes until the tree is handed to a
  :class:`~repro.relation.engines.Processor` (or :meth:`RelationExpr.collect`
  is called), which runs it on a chosen engine.  All engines are
  **bit-identical** on rows, row order, schema, relation name and
  provenance expressions, so callers may treat engine choice as a pure
  performance knob.

Nodes are immutable and hashable (conditions permitting: a ``where`` value
or an ``extend`` callable hashes by its own rules).  The one mutability
exception, again following ``lsst.daf.relation``, is the **payload** slot:
a processor may attach the materialized :class:`Relation` to the root node
it executed, so repeated ``collect`` calls — or copies of a cached plan
sharing one tree — reuse the result instead of recomputing it.

Schema, relation-name propagation and validation errors are derived at
construction time and mirror the eager operators exactly: building
``leaf.project(["ghost"])`` raises the same
:class:`~repro.errors.UnknownColumnError` that
``relation.project(["ghost"])`` does, just earlier.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Any, Callable, Sequence

from ..errors import SchemaError
from .relation import Relation
from .schema import Column, Schema


class RelationExpr:
    """Base class of all expression-tree nodes.

    Subclasses are frozen dataclasses; build them through the factory
    methods here rather than the constructors so `on`-clause resolution
    and name normalization happen in one place.
    """

    # -- tree structure ----------------------------------------------------
    @property
    def schema(self) -> Schema:
        raise NotImplementedError

    @property
    def name(self) -> str:
        """The relation name the tree's result will carry."""
        raise NotImplementedError

    @property
    def columns(self) -> tuple[str, ...]:
        return self.schema.names

    def children(self) -> tuple["RelationExpr", ...]:
        return ()

    def leaves(self) -> tuple["LeafRelation", ...]:
        """All leaf nodes, left-to-right (duplicates preserved)."""
        if isinstance(self, LeafRelation):
            return (self,)
        out: list[LeafRelation] = []
        for child in self.children():
            out.extend(child.leaves())
        return tuple(out)

    def depth(self) -> int:
        kids = self.children()
        return 1 + max((k.depth() for k in kids), default=0)

    # -- payload (the one sanctioned mutability, as in lsst.daf.relation) --
    @property
    def payload(self) -> Relation | None:
        """The materialized result a processor attached to this node, if
        any.  Engines are bit-identical, so a payload computed by one
        engine is valid for all of them."""
        return self.__dict__.get("_payload")

    def attach_payload(self, relation: Relation) -> None:
        """Memoize a materialized result on this node (bypasses the frozen
        dataclass guard on purpose — the payload is a cache, not state)."""
        object.__setattr__(self, "_payload", relation)

    # -- factory methods (mirror the eager Relation operators) -------------
    def project(self, names: Sequence[str]) -> "Project":
        """π — keep the given columns."""
        return Project(self, tuple(names))

    def select(
        self,
        predicate: Callable[[dict[str, Any]], bool],
        columns: Sequence[str] | None = None,
    ) -> "Select":
        """σ — keep rows for which ``predicate(row_as_dict)`` is truthy.

        ``columns`` optionally restricts the dict handed to the predicate
        (and lets engines push the selection past joins).  Structured
        predicates (:mod:`repro.relation.predicates`) declare their inputs
        themselves, so the restriction is derived when omitted."""
        if columns is None:
            referenced = getattr(predicate, "referenced_columns", None)
            if callable(referenced):
                columns = referenced()
        return Select(
            self, (), predicate,
            None if columns is None else tuple(columns),
        )

    def where(self, **conditions: Any) -> "Select":
        """σ with equality conditions given as keyword arguments."""
        return Select(self, tuple(conditions.items()), None, None)

    def distinct(self) -> "Distinct":
        return Distinct(self)

    def rename(self, mapping: dict[str, str]) -> "Rename":
        return Rename(self, tuple(mapping.items()))

    def relabel(self, name: str) -> "Label":
        """Change the relation name the result will carry (the lazy
        counterpart of ``Relation.renamed``)."""
        return Label(self, name)

    def extend(
        self,
        column: Column | str,
        fn: Callable[[dict[str, Any]], Any],
        columns: Sequence[str] | None = None,
    ) -> "Extend":
        """Append a computed column; ``columns`` optionally restricts the
        row dict handed to ``fn`` to the inputs it actually reads."""
        col = column if isinstance(column, Column) else Column(column)
        return Extend(
            self, col, fn, None if columns is None else tuple(columns)
        )

    def join(
        self,
        other: "RelationExpr",
        on: Sequence[tuple[str, str]] | Sequence[str] | None = None,
        suffix: str = "_r",
        keep_right: bool = False,
    ) -> "Join":
        """Equi-join; ``on`` is resolved exactly like the eager operator
        (pairs, shared names, or None for a natural join)."""
        if on is None:
            shared = [n for n in self.schema.names if n in other.schema]
            if not shared:
                raise SchemaError(
                    f"natural join of {self.name!r} and {other.name!r}: "
                    "no shared column names"
                )
            pairs = tuple((n, n) for n in shared)
        elif on and isinstance(on[0], str):
            pairs = tuple((n, n) for n in on)  # type: ignore[misc]
        else:
            pairs = tuple(tuple(p) for p in on)  # type: ignore[misc]
        return Join(self, other, pairs, suffix, keep_right)

    # -- execution ---------------------------------------------------------
    def collect(self, engine=None) -> Relation:
        """Execute the tree and return the materialized relation.

        ``engine`` is an engine name (``"iteration"`` / ``"columnar"``), an
        :class:`~repro.relation.engines.Engine`, or None for the default.
        The result is memoized on this node's payload slot."""
        from .engines import Processor

        return Processor(engine).execute(self)

    def count(self, engine=None) -> int:
        """Row count of the tree's result, without materializing rows on
        engines that can avoid it."""
        from .engines import Processor

        return Processor(engine).count(self)


@dataclass(frozen=True, eq=False)
class LeafRelation(RelationExpr):
    """A materialized relation at the bottom of a tree.

    Equality/hash are identity-based: ``Relation.__eq__`` is bag equality
    (ignoring name and provenance), which is too coarse to identify a leaf
    inside an expression tree.
    """

    relation: Relation

    @property
    def schema(self) -> Schema:
        return self.relation.schema

    @property
    def name(self) -> str:
        return self.relation.name

    def __repr__(self) -> str:
        return f"LeafRelation({self.relation!r})"


@dataclass(frozen=True)
class Project(RelationExpr):
    """π — keep ``names``, in order (duplicates preserved)."""

    target: RelationExpr
    names: tuple[str, ...]

    def __post_init__(self):
        self.schema  # validate column names at construction

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @cached_property
    def schema(self) -> Schema:
        return self.target.schema.project(self.names)

    @property
    def name(self) -> str:
        return self.target.name


@dataclass(frozen=True)
class Select(RelationExpr):
    """σ — either equality ``conditions`` or a row ``predicate``.

    ``input_columns`` (predicate selects only) restricts the row dict
    handed to the predicate; None means the full row.
    """

    target: RelationExpr
    conditions: tuple[tuple[str, Any], ...]
    predicate: Callable[[dict[str, Any]], bool] | None = None
    #: named ``input_columns`` (not ``columns``: that is the schema-names
    #: accessor every node shares) — the inputs the predicate reads
    input_columns: tuple[str, ...] | None = None

    def __post_init__(self):
        schema = self.target.schema
        for name, _value in self.conditions:
            schema.position(name)  # raises UnknownColumnError, like where()
        if self.input_columns is not None:
            schema.positions(self.input_columns)

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @property
    def schema(self) -> Schema:
        return self.target.schema

    @property
    def name(self) -> str:
        return self.target.name


@dataclass(frozen=True)
class Distinct(RelationExpr):
    """δ — duplicate elimination (provenance of duplicates is summed)."""

    target: RelationExpr

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @property
    def schema(self) -> Schema:
        return self.target.schema

    @property
    def name(self) -> str:
        return self.target.name


@dataclass(frozen=True)
class Rename(RelationExpr):
    """ρ — rename columns via an (old, new) mapping."""

    target: RelationExpr
    mapping: tuple[tuple[str, str], ...]

    def __post_init__(self):
        self.schema  # validate at construction

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @cached_property
    def schema(self) -> Schema:
        return self.target.schema.rename(dict(self.mapping))

    @property
    def name(self) -> str:
        return self.target.name


@dataclass(frozen=True)
class Label(RelationExpr):
    """Marker node: change the relation *name* the result will carry."""

    target: RelationExpr
    label: str

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @property
    def schema(self) -> Schema:
        return self.target.schema

    @property
    def name(self) -> str:
        return self.label


@dataclass(frozen=True)
class Extend(RelationExpr):
    """Append a computed column (provenance is unchanged).

    ``input_columns`` restricts the row dict handed to ``fn`` to the
    named inputs; None passes the full row dict.
    """

    target: RelationExpr
    column: Column
    fn: Callable[[dict[str, Any]], Any]
    input_columns: tuple[str, ...] | None = None

    def __post_init__(self):
        if self.column.name in self.target.schema:
            raise SchemaError(f"column {self.column.name!r} already exists")
        if self.input_columns is not None:
            self.target.schema.positions(self.input_columns)
        self.schema  # build + validate

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.target,)

    @cached_property
    def schema(self) -> Schema:
        return Schema(list(self.target.schema.columns) + [self.column])

    @property
    def name(self) -> str:
        return self.target.name


@dataclass(frozen=True)
class Join(RelationExpr):
    """⋈ — hash equi-join on (left, right) column ``pairs``.

    Output columns and name match the eager operator: left columns, then
    the kept right columns (all of them under ``keep_right``, otherwise the
    non-key ones), clashing right names suffixed; NULL keys never join.
    """

    left: RelationExpr
    right: RelationExpr
    pairs: tuple[tuple[str, str], ...]
    suffix: str = "_r"
    keep_right: bool = False

    def __post_init__(self):
        self.schema  # resolves both sides' key positions: validates

    def children(self) -> tuple[RelationExpr, ...]:
        return (self.left, self.right)

    def right_kept(self) -> list[int]:
        """Positions of the right-side columns kept in the output."""
        right_schema = self.right.schema
        right_idx = right_schema.positions([p[1] for p in self.pairs])
        drop = set() if self.keep_right else set(right_idx)
        return [i for i in range(len(right_schema)) if i not in drop]

    @cached_property
    def schema(self) -> Schema:
        left_schema = self.left.schema
        left_schema.positions([p[0] for p in self.pairs])  # validate left
        left_names = set(left_schema.names)
        out_cols = list(left_schema.columns)
        for i in self.right_kept():
            col = self.right.schema.columns[i]
            if col.name in left_names:
                col = col.renamed(col.name + self.suffix)
            out_cols.append(col)
        return Schema(out_cols)

    @property
    def name(self) -> str:
        return f"{self.left.name}⋈{self.right.name}"

    def right_output_names(self) -> dict[str, str]:
        """Output column name -> right-side source column name (for
        selection pushdown through the join)."""
        left_names = set(self.left.schema.names)
        out: dict[str, str] = {}
        for i in self.right_kept():
            col = self.right.schema.columns[i]
            out_name = (
                col.name + self.suffix if col.name in left_names else col.name
            )
            out[out_name] = col.name
        return out
