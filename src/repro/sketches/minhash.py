"""MinHash signatures for set-overlap estimation.

The metadata engine summarizes every column with a MinHash signature (the
paper's "signatures of its contents", Section 5.1); the index builder then
estimates Jaccard similarity between columns from the signatures alone to
propose join candidates without scanning raw data.

Hashing is based on BLAKE2b so signatures are deterministic across processes
(Python's builtin ``hash`` is salted per-process and unsuitable).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

import numpy as np

#: modulus for universal hashing; small enough that a*h+b fits in int64
_PRIME = (1 << 31) - 1

#: process-wide token-hash memo: corpora share vocabularies heavily, so the
#: BLAKE2b digest of a token is computed once and reused across every column
#: and dataset registered in this process.  Bounded so adversarially unique
#: corpora cannot grow it without limit (entries are never evicted; once the
#: cap is hit new tokens are hashed without being remembered).
_TOKEN_CACHE: dict[str, int] = {}
_TOKEN_CACHE_CAP = 1 << 20


def _hash_token(token: str) -> int:
    """BLAKE2b-derived hash of one canonical token string, memoized."""
    h = _TOKEN_CACHE.get(token)
    if h is None:
        digest = hashlib.blake2b(token.encode(), digest_size=8).digest()
        h = int.from_bytes(digest, "big") % _PRIME
        if len(_TOKEN_CACHE) < _TOKEN_CACHE_CAP:
            _TOKEN_CACHE[token] = h
    return h


def stable_hash(value: object) -> int:
    """Deterministic hash of a value's canonical string form, in [0, 2^31)."""
    return _hash_token(repr(value))


class MinHash:
    """A fixed-width MinHash signature over a set of values."""

    __slots__ = ("num_perm", "_a", "_b", "signature", "count")

    def __init__(self, num_perm: int = 64, seed: int = 7):
        if num_perm < 1:
            raise ValueError("num_perm must be >= 1")
        self.num_perm = num_perm
        rng = np.random.default_rng(seed)
        self._a = rng.integers(1, _PRIME, size=num_perm, dtype=np.int64)
        self._b = rng.integers(0, _PRIME, size=num_perm, dtype=np.int64)
        self.signature = np.full(num_perm, _PRIME, dtype=np.int64)
        self.count = 0

    def update(self, value: object) -> None:
        self.update_many([value])

    def update_many(self, values: Iterable[object]) -> None:
        # canonicalize once, then deduplicate: repeated values cannot change
        # a min, and distinct tokens hit the process-wide BLAKE2b memo, so
        # bulk registration pays one digest per *new* token ever seen
        tokens = [repr(v) for v in values]
        if not tokens:
            return
        distinct = set(tokens)
        hashes = np.fromiter(
            (_hash_token(t) for t in distinct),
            dtype=np.int64,
            count=len(distinct),
        )
        # (k, n) matrix of universal hashes; min over values per permutation.
        hashed = (self._a[:, None] * hashes[None, :] + self._b[:, None]) % _PRIME
        np.minimum(self.signature, hashed.min(axis=1), out=self.signature)
        self.count += len(tokens)

    @classmethod
    def of(
        cls, values: Iterable[object], num_perm: int = 64, seed: int = 7
    ) -> "MinHash":
        mh = cls(num_perm=num_perm, seed=seed)
        mh.update_many(values)
        return mh

    def jaccard(self, other: "MinHash") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_perm != other.num_perm:
            raise ValueError("signatures have different widths")
        if self.count == 0 and other.count == 0:
            return 1.0
        if self.count == 0 or other.count == 0:
            return 0.0
        return float(np.mean(self.signature == other.signature))

    def merge(self, other: "MinHash") -> "MinHash":
        """Signature of the union of both underlying sets."""
        if self.num_perm != other.num_perm:
            raise ValueError("signatures have different widths")
        merged = MinHash.__new__(MinHash)
        merged.num_perm = self.num_perm
        merged._a, merged._b = self._a, self._b
        merged.signature = np.minimum(self.signature, other.signature)
        merged.count = self.count + other.count
        return merged

    def digest(self) -> tuple[int, ...]:
        return tuple(int(v) for v in self.signature)


def containment(small: set, big: set) -> float:
    """Exact containment |small ∩ big| / |small| (used as ground truth)."""
    if not small:
        return 0.0
    return len(small & big) / len(small)


def jaccard_exact(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
