"""MinHash signatures for set-overlap estimation.

The metadata engine summarizes every column with a MinHash signature (the
paper's "signatures of its contents", Section 5.1); the index builder then
estimates Jaccard similarity between columns from the signatures alone to
propose join candidates without scanning raw data.

Token hashing is a 64-bit FNV-1a fold finalized with a splitmix64-style
mixer, reduced into ``[0, 2**31 - 1)``.  The scheme is deterministic across
processes (Python's builtin ``hash`` is salted per-process and unsuitable)
and — unlike a per-token cryptographic digest — has two interchangeable,
bit-identical implementations:

* :func:`_hash_token` — the scalar reference, memoized process-wide;
* :func:`_hash_token_batch` — a vectorized numpy fold over one packed byte
  matrix (``np.frombuffer`` reinterpretation of the concatenated token
  buffer), which is what makes bulk column profiling a handful of C-level
  array operations instead of a Python loop per token.

:func:`hash_tokens` picks between them by batch size; columnar and scalar
profiling paths therefore produce identical signatures by construction
(property-tested in ``tests/test_columnar_profiling.py``).
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

import numpy as np

#: modulus for universal hashing; small enough that a*h+b fits in int64
_PRIME = (1 << 31) - 1

_M64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MIX_1 = 0xFF51AFD7ED558CCD
_MIX_2 = 0xC4CEB9FE1A85EC53

#: process-wide token-hash memo: corpora share vocabularies heavily, so the
#: hash of a token is computed once and reused across every column and
#: dataset registered in this process.  Bounded so adversarially unique
#: corpora cannot grow it without limit (entries are never evicted; once the
#: cap is hit new tokens are hashed without being remembered).
_TOKEN_CACHE: dict[str, int] = {}
_TOKEN_CACHE_CAP = 1 << 20

#: batches at least this large take the vectorized path
_VECTORIZE_MIN = 24
#: tokens longer than this (bytes) force the scalar path — the padded byte
#: matrix is dense, so one huge token would inflate it for the whole batch
_VECTORIZE_MAX_TOKEN = 512
#: batches above this size skip the memo entirely: huge distinct sets are
#: key-like (mostly one-shot), and probing/populating a million-entry dict
#: costs more than re-running the vectorized fold on a repeat
_MEMO_MAX_BATCH = 4096
#: the dense (n, max_len) byte matrix is processed at most this many
#: tokens at a time, bounding transient memory on huge distinct sets
_BATCH_CHUNK = 1 << 16


def _hash_token_raw(token: str) -> int:
    """The scalar hash computation itself (no memo): FNV-1a over the
    UTF-8 bytes, splitmix64-style finalizer, mod ``_PRIME``.  Must stay
    bit-identical to :func:`_hash_token_batch`."""
    x = _FNV_OFFSET
    for byte in token.encode():
        x = ((x ^ byte) * _FNV_PRIME) & _M64
    x = ((x ^ (x >> 33)) * _MIX_1) & _M64
    x = ((x ^ (x >> 33)) * _MIX_2) & _M64
    x ^= x >> 33
    return x % _PRIME


def _hash_token(token: str) -> int:
    """Scalar reference hash of one token string, memoized."""
    h = _TOKEN_CACHE.get(token)
    if h is None:
        h = _hash_token_raw(token)
        if len(_TOKEN_CACHE) < _TOKEN_CACHE_CAP:
            _TOKEN_CACHE[token] = h
    return h


def _hash_token_batch(tokens: Sequence[str]) -> np.ndarray:
    """Vectorized token hashing: bit-identical to ``map(_hash_token, ...)``.

    Tokens are packed into one (n, max_len) byte matrix — built with a
    single ``np.frombuffer`` reinterpretation of the concatenated buffer —
    and the FNV-1a fold runs position-by-position across the whole batch,
    so the per-token work is C-level regardless of batch size.
    """
    n = len(tokens)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n > _BATCH_CHUNK:
        # per-token hashes are independent: chunking bounds the dense
        # matrix without changing any value
        return np.concatenate([
            _hash_token_batch(tokens[lo:lo + _BATCH_CHUNK])
            for lo in range(0, n, _BATCH_CHUNK)
        ])
    if max(map(len, tokens)) > _VECTORIZE_MAX_TOKEN:
        # the fallback deliberately bypasses the memo: callers routed a
        # large one-shot batch here precisely to keep it out of the cache
        return np.fromiter(
            map(_hash_token_raw, tokens), dtype=np.int64, count=n
        )
    joined = "\x1f".join(tokens)
    data = joined.encode()
    if len(data) == len(joined):
        # pure-ASCII batch (the common case for canonical reprs): byte
        # lengths equal character lengths, so one encode covers everything
        # and the separators are simply ignored by the fold mask below.
        lens = np.fromiter(map(len, tokens), dtype=np.int64, count=n)
        flat = np.frombuffer(data + b"\x1f", dtype=np.uint8)
        pad = 1  # each row also holds its trailing separator byte
    else:
        enc = [t.encode() for t in tokens]
        lens = np.fromiter(map(len, enc), dtype=np.int64, count=n)
        flat = np.frombuffer(b"".join(enc), dtype=np.uint8)
        pad = 0
    max_len = int(lens.max()) if n else 0
    if max_len > _VECTORIZE_MAX_TOKEN:
        # multibyte characters can push byte lengths past the cap even
        # when character lengths sat below it
        return np.fromiter(
            map(_hash_token_raw, tokens), dtype=np.int64, count=n
        )
    cols = np.arange(max_len + pad)
    fill_mask = cols[None, :] < (lens + pad)[:, None]
    arr = np.zeros((n, max_len + pad), dtype=np.uint8)
    arr[fill_mask] = flat  # row-major fill order == concatenation order
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    fnv_prime = np.uint64(_FNV_PRIME)
    for i in range(max_len):
        m = cols[i] < lens
        h[m] = (h[m] ^ arr[m, i].astype(np.uint64)) * fnv_prime
    thirty_three = np.uint64(33)
    h = (h ^ (h >> thirty_three)) * np.uint64(_MIX_1)
    h = (h ^ (h >> thirty_three)) * np.uint64(_MIX_2)
    h ^= h >> thirty_three
    return (h % np.uint64(_PRIME)).astype(np.int64)


def hash_tokens(tokens: Sequence[str]) -> np.ndarray:
    """Per-token hashes in ``[0, _PRIME)`` as an int64 array.

    Small batches go through the memoized scalar reference; large batches
    consult the memo in bulk and fall through to the vectorized fold on any
    miss (then remember the batch, bounded by the cache cap).  Both routes
    return bit-identical values.
    """
    n = len(tokens)
    if n < _VECTORIZE_MIN:
        return np.fromiter(map(_hash_token, tokens), dtype=np.int64, count=n)
    if n > _MEMO_MAX_BATCH:
        return _hash_token_batch(tokens)
    cached = list(map(_TOKEN_CACHE.get, tokens))
    if None not in cached:
        return np.asarray(cached, dtype=np.int64)
    # hash only the misses and scatter them back: on shared-vocabulary
    # corpora a batch typically carries a handful of first-sight tokens
    # among mostly memoized ones
    miss_idx = [i for i, h in enumerate(cached) if h is None]
    miss_hashes = _hash_token_batch([tokens[i] for i in miss_idx])
    for i, h in zip(miss_idx, miss_hashes.tolist()):
        cached[i] = h
    if len(_TOKEN_CACHE) + len(miss_idx) <= _TOKEN_CACHE_CAP:
        _TOKEN_CACHE.update((tokens[i], cached[i]) for i in miss_idx)
    return np.asarray(cached, dtype=np.int64)


def stable_hash(value: object) -> int:
    """Deterministic hash of a value's canonical string form, in [0, 2^31)."""
    return _hash_token(repr(value))


#: (num_perm, seed) -> shared immutable permutation coefficient arrays;
#: profiling sketches one column per MinHash, so re-deriving the same
#: coefficients from a fresh generator per column was measurable overhead
_PERM_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _permutations(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    key = (num_perm, seed)
    ab = _PERM_CACHE.get(key)
    if ab is None:
        rng = np.random.default_rng(seed)
        a = rng.integers(1, _PRIME, size=num_perm, dtype=np.int64)
        b = rng.integers(0, _PRIME, size=num_perm, dtype=np.int64)
        a.setflags(write=False)
        b.setflags(write=False)
        ab = _PERM_CACHE[key] = (a, b)
    return ab


class MinHash:
    """A fixed-width MinHash signature over a set of values."""

    __slots__ = ("num_perm", "seed", "_a", "_b", "signature", "count")

    def __init__(self, num_perm: int = 64, seed: int = 7):
        if num_perm < 1:
            raise ValueError("num_perm must be >= 1")
        self.num_perm = num_perm
        self.seed = seed
        self._a, self._b = _permutations(num_perm, seed)
        self.signature = np.full(num_perm, _PRIME, dtype=np.int64)
        #: distinct tokens folded in (per update call; duplicate tokens never
        #: inflate it, so ``count == 0`` means "no value ever inserted" and
        #: the emptiness semantics of :meth:`jaccard` are exact)
        self.count = 0

    def update(self, value: object) -> None:
        self.update_many([value])

    def update_many(self, values: Iterable[object]) -> None:
        """Fold values in by their canonical (``repr``) token strings."""
        tokens = set(map(repr, values))
        if tokens:
            self._fold(hash_tokens(list(tokens)))
            self.count += len(tokens)

    def update_tokens(
        self, tokens: Iterable[str], vectorize: bool = True
    ) -> None:
        """Fold pre-canonicalized token strings (the profiler's bulk entry
        point — its columnar view already holds one ``repr`` per value).

        ``vectorize=False`` forces the scalar reference hash for every
        token; the default picks per batch.  Both produce identical
        signatures (see module docstring).
        """
        distinct = (
            tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        )
        if not distinct:
            return
        batch = list(distinct)
        if vectorize:
            hashes = hash_tokens(batch)
        else:
            hashes = np.fromiter(
                map(_hash_token, batch), dtype=np.int64, count=len(batch)
            )
        self._fold(hashes)
        self.count += len(batch)

    #: token-axis chunk width of the universal-hash fold: keeps the
    #: (num_perm, chunk) temporaries cache-resident and reused instead of
    #: allocating one num_perm×n matrix per operation on wide token sets
    _FOLD_CHUNK = 4096

    def _fold(self, hashes: np.ndarray) -> None:
        # (k, n) matrix of universal hashes; min over values per permutation,
        # computed chunk-wise into preallocated buffers (a*h+b < 2**62
        # always fits int64).
        a_col = self._a[:, None]
        b_col = self._b[:, None]
        chunk = self._FOLD_CHUNK
        buf = np.empty((self.num_perm, min(chunk, len(hashes))), np.int64)
        for lo in range(0, len(hashes), chunk):
            part = hashes[lo:lo + chunk]
            view = buf[:, : len(part)]
            np.multiply(a_col, part[None, :], out=view)
            view += b_col
            np.mod(view, _PRIME, out=view)
            np.minimum(self.signature, view.min(axis=1), out=self.signature)

    @classmethod
    def of(
        cls, values: Iterable[object], num_perm: int = 64, seed: int = 7
    ) -> "MinHash":
        mh = cls(num_perm=num_perm, seed=seed)
        mh.update_many(values)
        return mh

    @classmethod
    def of_tokens(
        cls, tokens: Iterable[str], num_perm: int = 64, seed: int = 7,
        vectorize: bool = True,
    ) -> "MinHash":
        mh = cls(num_perm=num_perm, seed=seed)
        mh.update_tokens(tokens, vectorize=vectorize)
        return mh

    def jaccard(self, other: "MinHash") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_perm != other.num_perm:
            raise ValueError("signatures have different widths")
        if self.count == 0 and other.count == 0:
            return 1.0
        if self.count == 0 or other.count == 0:
            return 0.0
        return float(np.mean(self.signature == other.signature))

    def merge(self, other: "MinHash") -> "MinHash":
        """Signature of the union of both underlying sets (``count`` becomes
        an upper bound on the union's distinct insertions)."""
        if self.num_perm != other.num_perm:
            raise ValueError("signatures have different widths")
        merged = MinHash.__new__(MinHash)
        merged.num_perm = self.num_perm
        merged.seed = self.seed
        merged._a, merged._b = self._a, self._b
        merged.signature = np.minimum(self.signature, other.signature)
        merged.count = self.count + other.count
        return merged

    def digest(self) -> tuple[int, ...]:
        return tuple(int(v) for v in self.signature)

    #: serialized header: num_perm, seed, count (little-endian, fixed width)
    _HEADER = struct.Struct("<iiq")

    def to_bytes(self) -> bytes:
        """Round-trippable serialization: header (num_perm, seed, count)
        followed by the signature as little-endian int64 — the durable
        store's column-signature payload."""
        header = self._HEADER.pack(self.num_perm, self.seed, self.count)
        return header + self.signature.astype("<i8").tobytes()

    @classmethod
    def from_bytes(cls, data: bytes) -> "MinHash":
        """Rebuild a signature serialized by :meth:`to_bytes`, bit-identical:
        permutation coefficients are re-derived from (num_perm, seed) via
        the shared cache, the signature vector is restored verbatim."""
        num_perm, seed, count = cls._HEADER.unpack_from(data)
        expected = cls._HEADER.size + 8 * num_perm
        if len(data) != expected:
            raise ValueError(
                f"corrupt MinHash payload: {len(data)} bytes, "
                f"expected {expected}"
            )
        mh = cls(num_perm=num_perm, seed=seed)
        mh.signature = np.frombuffer(
            data, dtype="<i8", offset=cls._HEADER.size
        ).astype(np.int64)
        mh.count = count
        return mh


def containment(small: set, big: set) -> float:
    """Exact containment |small ∩ big| / |small| (used as ground truth)."""
    if not small:
        return 0.0
    return len(small & big) / len(small)


def jaccard_exact(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
