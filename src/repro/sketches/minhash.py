"""MinHash signatures for set-overlap estimation.

The metadata engine summarizes every column with a MinHash signature (the
paper's "signatures of its contents", Section 5.1); the index builder then
estimates Jaccard similarity between columns from the signatures alone to
propose join candidates without scanning raw data.

Token hashing is a 64-bit FNV-1a fold finalized with a splitmix64-style
mixer, reduced into ``[0, 2**31 - 1)``.  The scheme is deterministic across
processes (Python's builtin ``hash`` is salted per-process and unsuitable)
and — unlike a per-token cryptographic digest — has two interchangeable,
bit-identical implementations:

* :func:`_hash_token` — the scalar reference, memoized process-wide;
* :func:`_hash_token_batch` — a vectorized numpy fold over one packed byte
  matrix (``np.frombuffer`` reinterpretation of the concatenated token
  buffer), which is what makes bulk column profiling a handful of C-level
  array operations instead of a Python loop per token.

:func:`hash_tokens` picks between them by batch size; columnar and scalar
profiling paths therefore produce identical signatures by construction
(property-tested in ``tests/test_columnar_profiling.py``).

Two sketch *schemes* share that token-hash layer:

* ``"classic"`` — the k-permutation fold: every token hash goes through
  ``num_perm`` universal hashes ``(a_i * h + b_i) mod P`` and the signature
  is the per-permutation minimum.  Accurate, well-understood, and kept as
  the property-tested oracle.
* ``"oph"`` — one-permutation hashing with rotation densification: each
  token is hashed *once*, bucketed into ``num_perm`` bins by its high bits
  (``(h * num_perm) // P``), and the signature is the per-bin minimum;
  empty bins borrow from the nearest filled bin to their left (circular),
  offset by a rotation constant per step so borrowed slots still compare
  meaningfully across signatures.  ~``num_perm``× fewer hash applications
  per token, same LSH banding compatibility, unbiased Jaccard estimates
  (Shrivastava & Li style densification).

Both schemes serialize through :meth:`MinHash.to_bytes` with a scheme tag
(legacy tag-less payloads deserialize as ``"classic"``), and mixing schemes
or seeds in :meth:`MinHash.jaccard`/:meth:`MinHash.merge` raises a typed
:class:`~repro.errors.InvalidRequestError` instead of silently producing
garbage estimates.
"""

from __future__ import annotations

import struct
from typing import Iterable, Sequence

import numpy as np

from ..errors import InvalidRequestError

#: modulus for universal hashing; small enough that a*h+b fits in int64.
#: A Mersenne prime (2^31 - 1), so ``x mod _PRIME`` reduces to shifts and
#: masks — see :meth:`MinHash._fold_classic`.
_PRIME = (1 << 31) - 1

_M64 = (1 << 64) - 1
_FNV_OFFSET = 0xCBF29CE484222325
_FNV_PRIME = 0x100000001B3
_MIX_1 = 0xFF51AFD7ED558CCD
_MIX_2 = 0xC4CEB9FE1A85EC53

#: rotation constant for OPH densification: empty bin at distance d from
#: its donor takes ``(donor + d * _ROT) mod _PRIME`` so two signatures
#: agree on a borrowed slot only when they agree on donor *and* distance
_ROT = 1481765933

#: process-wide token-hash memo: corpora share vocabularies heavily, so the
#: hash of a token is computed once and reused across every column and
#: dataset registered in this process.  Bounded so adversarially unique
#: corpora cannot grow it without limit (entries are never evicted; once the
#: cap is hit new tokens are hashed without being remembered).
_TOKEN_CACHE: dict[str, int] = {}
_TOKEN_CACHE_CAP = 1 << 20

#: batches at least this large take the vectorized path
_VECTORIZE_MIN = 24
#: tokens longer than this (bytes) force the scalar path — the padded byte
#: matrix is dense, so one huge token would inflate it for the whole batch
_VECTORIZE_MAX_TOKEN = 512
#: batches above this size skip the memo entirely: huge distinct sets are
#: key-like (mostly one-shot), and probing/populating a million-entry dict
#: costs more than re-running the vectorized fold on a repeat
_MEMO_MAX_BATCH = 4096
#: the dense (n, max_len) byte matrix is processed at most this many
#: tokens at a time, bounding transient memory on huge distinct sets
_BATCH_CHUNK = 1 << 16


def _hash_bytes_raw(data: bytes) -> int:
    """FNV-1a over raw bytes, splitmix64-style finalizer, mod ``_PRIME``.

    The scalar reference for every hashing path in this module: string
    tokens hash their UTF-8 bytes through it, packed numeric values their
    fixed-width canonical encoding (see :func:`hash_packed`)."""
    x = _FNV_OFFSET
    for byte in data:
        x = ((x ^ byte) * _FNV_PRIME) & _M64
    x = ((x ^ (x >> 33)) * _MIX_1) & _M64
    x = ((x ^ (x >> 33)) * _MIX_2) & _M64
    x ^= x >> 33
    return x % _PRIME


def _hash_token_raw(token: str) -> int:
    """The scalar hash computation itself (no memo).  Must stay
    bit-identical to :func:`_hash_token_batch`."""
    return _hash_bytes_raw(token.encode())


def _hash_token(token: str) -> int:
    """Scalar reference hash of one token string, memoized."""
    h = _TOKEN_CACHE.get(token)
    if h is None:
        h = _hash_token_raw(token)
        if len(_TOKEN_CACHE) < _TOKEN_CACHE_CAP:
            _TOKEN_CACHE[token] = h
    return h


def _finalize_mod(h: np.ndarray) -> np.ndarray:
    """Shared vectorized finalizer: splitmix64-style mix of a uint64 batch,
    reduced mod ``_PRIME`` into int64."""
    thirty_three = np.uint64(33)
    h = (h ^ (h >> thirty_three)) * np.uint64(_MIX_1)
    h = (h ^ (h >> thirty_three)) * np.uint64(_MIX_2)
    h ^= h >> thirty_three
    return (h % np.uint64(_PRIME)).astype(np.int64)


def _hash_token_batch(tokens: Sequence[str]) -> np.ndarray:
    """Vectorized token hashing: bit-identical to ``map(_hash_token, ...)``.

    Tokens are packed into one (n, max_len) byte matrix — built with a
    single ``np.frombuffer`` reinterpretation of the concatenated buffer —
    and the FNV-1a fold runs position-by-position across the whole batch.
    Rows are processed in descending-length order so each position folds a
    contiguous *slice* (the rows still alive at that position) instead of a
    boolean-masked gather/scatter pair — the masked version paid two fancy
    index operations per byte position, a fixed per-column cost that
    dominated wide-corpus ingest.
    """
    n = len(tokens)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    if n > _BATCH_CHUNK:
        # per-token hashes are independent: chunking bounds the dense
        # matrix without changing any value
        return np.concatenate([
            _hash_token_batch(tokens[lo:lo + _BATCH_CHUNK])
            for lo in range(0, n, _BATCH_CHUNK)
        ])
    if max(map(len, tokens)) > _VECTORIZE_MAX_TOKEN:
        # the fallback deliberately bypasses the memo: callers routed a
        # large one-shot batch here precisely to keep it out of the cache
        return np.fromiter(
            map(_hash_token_raw, tokens), dtype=np.int64, count=n
        )
    joined = "\x1f".join(tokens)
    data = joined.encode()
    if len(data) == len(joined):
        # pure-ASCII batch (the common case for canonical reprs): byte
        # lengths equal character lengths, so one encode covers everything
        # and the separators are simply ignored by the fold below.
        lens = np.fromiter(map(len, tokens), dtype=np.int64, count=n)
        flat = np.frombuffer(data + b"\x1f", dtype=np.uint8)
        pad = 1  # each row also holds its trailing separator byte
    else:
        enc = [t.encode() for t in tokens]
        lens = np.fromiter(map(len, enc), dtype=np.int64, count=n)
        flat = np.frombuffer(b"".join(enc), dtype=np.uint8)
        pad = 0
    max_len = int(lens.max()) if n else 0
    if max_len > _VECTORIZE_MAX_TOKEN:
        # multibyte characters can push byte lengths past the cap even
        # when character lengths sat below it
        return np.fromiter(
            map(_hash_token_raw, tokens), dtype=np.int64, count=n
        )
    cols = np.arange(max_len + pad)
    fill_mask = cols[None, :] < (lens + pad)[:, None]
    arr = np.zeros((n, max_len + pad), dtype=np.uint8)
    arr[fill_mask] = flat  # row-major fill order == concatenation order
    min_len = int(lens.min())
    if min_len == max_len:
        # uniform-length batch (ids, fixed-format codes): no reordering,
        # every position folds the full column
        order = None
        srt = arr
        alive = None
    else:
        order = np.argsort(-lens, kind="stable")
        srt = arr[order]
        neg_lens = -lens[order]
        # alive[i] = how many rows still have a byte at position i; rows
        # are length-descending so they form a prefix
        alive = np.searchsorted(neg_lens, -np.arange(max_len), side="left")
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    fnv_prime = np.uint64(_FNV_PRIME)
    for i in range(max_len):
        k = n if alive is None else int(alive[i])
        hk = h[:k]
        np.bitwise_xor(hk, srt[:k, i].astype(np.uint64), out=hk)
        np.multiply(hk, fnv_prime, out=hk)
    res = _finalize_mod(h)
    if order is None:
        return res
    out = np.empty(n, dtype=np.int64)
    out[order] = res
    return out


def hash_tokens(tokens: Sequence[str]) -> np.ndarray:
    """Per-token hashes in ``[0, _PRIME)`` as an int64 array.

    Small batches go through the memoized scalar reference; large batches
    consult the memo in bulk and fall through to the vectorized fold on any
    miss (then remember the batch, bounded by the cache cap).  Both routes
    return bit-identical values.
    """
    n = len(tokens)
    if n < _VECTORIZE_MIN:
        return np.fromiter(map(_hash_token, tokens), dtype=np.int64, count=n)
    if n > _MEMO_MAX_BATCH:
        return _hash_token_batch(tokens)
    cached = list(map(_TOKEN_CACHE.get, tokens))
    if None not in cached:
        return np.asarray(cached, dtype=np.int64)
    miss_idx = [i for i, h in enumerate(cached) if h is None]
    if len(miss_idx) == n:
        # cold batch (first sight of the whole vocabulary): skip the
        # scatter-back entirely and bulk-populate the memo
        hashes = _hash_token_batch(tokens)
        if len(_TOKEN_CACHE) + n <= _TOKEN_CACHE_CAP:
            _TOKEN_CACHE.update(zip(tokens, hashes.tolist()))
        return hashes
    # hash only the misses and scatter them back: on shared-vocabulary
    # corpora a batch typically carries a handful of first-sight tokens
    # among mostly memoized ones
    miss_hashes = _hash_token_batch([tokens[i] for i in miss_idx])
    for i, h in zip(miss_idx, miss_hashes.tolist()):
        cached[i] = h
    if len(_TOKEN_CACHE) + len(miss_idx) <= _TOKEN_CACHE_CAP:
        _TOKEN_CACHE.update((tokens[i], cached[i]) for i in miss_idx)
    return np.asarray(cached, dtype=np.int64)


def hash_packed(matrix: np.ndarray) -> np.ndarray:
    """Vectorized hash of fixed-width byte rows: row ``i`` of the
    ``(n, width)`` uint8 matrix hashes exactly like
    ``_hash_bytes_raw(matrix[i].tobytes())``.

    This is the repr-free numeric path: canonical struct-packed values
    (see ``repro.relation.columnar.pack_value``) hash without ever
    materializing a Python string.
    """
    if matrix.ndim != 2:
        raise ValueError("hash_packed expects an (n, width) byte matrix")
    n, width = matrix.shape
    h = np.full(n, _FNV_OFFSET, dtype=np.uint64)
    fnv_prime = np.uint64(_FNV_PRIME)
    for i in range(width):
        np.bitwise_xor(h, matrix[:, i].astype(np.uint64), out=h)
        np.multiply(h, fnv_prime, out=h)
    return _finalize_mod(h)


def stable_hash(value: object) -> int:
    """Deterministic hash of a value's canonical string form, in [0, 2^31)."""
    return _hash_token(repr(value))


#: (num_perm, seed) -> shared immutable permutation coefficient arrays;
#: profiling sketches one column per MinHash, so re-deriving the same
#: coefficients from a fresh generator per column was measurable overhead
_PERM_CACHE: dict[tuple[int, int], tuple[np.ndarray, np.ndarray]] = {}


def _permutations(num_perm: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    key = (num_perm, seed)
    ab = _PERM_CACHE.get(key)
    if ab is None:
        rng = np.random.default_rng(seed)
        a = rng.integers(1, _PRIME, size=num_perm, dtype=np.int64)
        b = rng.integers(0, _PRIME, size=num_perm, dtype=np.int64)
        a.setflags(write=False)
        b.setflags(write=False)
        ab = _PERM_CACHE[key] = (a, b)
    return ab


def _seed_offset(seed: int) -> int:
    """Seed-derived additive offset for the OPH scheme, in ``[0, _PRIME)``.

    OPH hashes each token once with the unseeded shared token hash; the
    seed enters as a mod-``_PRIME`` translation (a bijection on the hash
    universe), so different seeds yield independent-looking bin layouts
    while the token-hash memo stays shared across all seeds."""
    x = (seed * 0x9E3779B97F4A7C15) & _M64
    x = ((x ^ (x >> 30)) * 0xBF58476D1CE4E5B9) & _M64
    x = ((x ^ (x >> 27)) * 0x94D049BB133111EB) & _M64
    x ^= x >> 31
    return x % _PRIME


_SCHEMES = ("classic", "oph")
_SCHEME_CODES = {"classic": 0, "oph": 1}
_SCHEME_NAMES = {code: name for name, code in _SCHEME_CODES.items()}


class MinHash:
    """A fixed-width MinHash signature over a set of values.

    ``scheme`` selects the sketching algorithm (see module docstring):
    ``"classic"`` folds every token through ``num_perm`` universal hashes;
    ``"oph"`` buckets single-hashed tokens into ``num_perm`` bins and
    densifies empty bins by rotation.  ``signature`` is always the dense
    ``num_perm``-wide vector LSH banding and Jaccard estimation consume;
    for OPH the raw per-bin minima live in ``_bins`` (the mergeable,
    serialized state) and ``signature`` is their densified view.
    """

    __slots__ = (
        "num_perm", "seed", "scheme", "_a", "_b", "_bins",
        "signature", "count",
    )

    def __init__(
        self, num_perm: int = 64, seed: int = 7, scheme: str = "classic"
    ):
        if num_perm < 1:
            raise ValueError("num_perm must be >= 1")
        if scheme not in _SCHEMES:
            raise ValueError(
                f"unknown MinHash scheme {scheme!r} (expected one of "
                f"{', '.join(_SCHEMES)})"
            )
        self.num_perm = num_perm
        self.seed = seed
        self.scheme = scheme
        if scheme == "classic":
            self._a, self._b = _permutations(num_perm, seed)
            self._bins = None
        else:
            self._a = self._b = None
            self._bins = np.full(num_perm, _PRIME, dtype=np.int64)
        self.signature = np.full(num_perm, _PRIME, dtype=np.int64)
        #: distinct tokens folded in (per update call; duplicate tokens never
        #: inflate it, so ``count == 0`` means "no value ever inserted" and
        #: the emptiness semantics of :meth:`jaccard` are exact)
        self.count = 0

    def update(self, value: object) -> None:
        self.update_many([value])

    def update_many(self, values: Iterable[object]) -> None:
        """Fold values in by their canonical (``repr``) token strings."""
        tokens = set(map(repr, values))
        if tokens:
            self._fold(hash_tokens(list(tokens)))
            self.count += len(tokens)

    def update_tokens(
        self, tokens: Iterable[str], vectorize: bool = True
    ) -> None:
        """Fold pre-canonicalized token strings (the profiler's bulk entry
        point — its columnar view already holds one ``repr`` per value).

        ``vectorize=False`` forces the scalar reference hash for every
        token; the default picks per batch.  Both produce identical
        signatures (see module docstring).
        """
        distinct = (
            tokens if isinstance(tokens, (set, frozenset)) else set(tokens)
        )
        if not distinct:
            return
        batch = list(distinct)
        if vectorize:
            hashes = hash_tokens(batch)
        else:
            hashes = np.fromiter(
                map(_hash_token, batch), dtype=np.int64, count=len(batch)
            )
        self._fold(hashes)
        self.count += len(batch)

    def update_hashes(self, hashes: np.ndarray, distinct: int) -> None:
        """Fold precomputed *distinct* token hashes (values in
        ``[0, _PRIME)``) and account ``distinct`` insertions.  The
        profiler's packed-numeric path hashes canonical byte rows via
        :func:`hash_packed` and lands here without any string detour."""
        if len(hashes):
            self._fold(np.asarray(hashes, dtype=np.int64))
            self.count += distinct

    #: token-axis chunk width of the universal-hash fold: keeps the
    #: (num_perm, chunk) temporaries cache-resident on wide token sets
    _FOLD_CHUNK = 4096

    def _fold(self, hashes: np.ndarray) -> None:
        if self.scheme == "classic":
            self._fold_classic(hashes)
        else:
            self._fold_oph(hashes)

    def _fold_classic(self, hashes: np.ndarray) -> None:
        # (k, n) matrix of universal hashes; min over values per
        # permutation (a*h+b < 2**62 always fits int64).  The reduction
        # mod the Mersenne prime 2^31-1 uses two shift/mask folds plus a
        # conditional subtract instead of int64 division — bit-identical
        # to np.mod and several times cheaper, which matters because this
        # matrix is the single hottest allocation of classic ingest.
        a_col = self._a[:, None]
        b_col = self._b[:, None]
        for lo in range(0, len(hashes), self._FOLD_CHUNK):
            part = hashes[lo:lo + self._FOLD_CHUNK]
            view = a_col * part[None, :]
            view += b_col
            hi = view >> 31
            np.bitwise_and(view, _PRIME, out=view)
            view += hi
            np.right_shift(view, 31, out=hi)
            np.bitwise_and(view, _PRIME, out=view)
            view += hi
            # after two folds values sit in [0, _PRIME + 1]
            np.subtract(view, _PRIME, out=view, where=view >= _PRIME)
            np.minimum(self.signature, view.min(axis=1), out=self.signature)

    def _fold_oph(self, hashes: np.ndarray) -> None:
        # one-permutation fold: seed-translate, sort, bucket by high bits.
        # The bin index (h * num_perm) // _PRIME is monotone in h, so after
        # sorting, the first occurrence of each bin value *is* that bin's
        # minimum — no scatter-minimum pass needed.
        offset = _seed_offset(self.seed)
        if offset:
            hashes = hashes + offset
            np.subtract(hashes, _PRIME, out=hashes, where=hashes >= _PRIME)
        s = np.sort(hashes)
        bins = (s * self.num_perm) // _PRIME
        first = np.empty(len(s), dtype=bool)
        first[0] = True
        np.not_equal(bins[1:], bins[:-1], out=first[1:])
        idx = bins[first]
        np.minimum.at(self._bins, idx, s[first])
        self._densify()

    def _densify(self) -> None:
        """Recompute the dense ``signature`` from the raw per-bin minima:
        every empty bin borrows from the nearest filled bin to its left
        (circular), offset by ``distance * _ROT`` mod ``_PRIME``.  Pure and
        deterministic, so densified signatures replay bit-identically from
        the serialized raw bins."""
        bins = self._bins
        empty = bins == _PRIME
        if not empty.any():
            self.signature = bins.copy()
            return
        if empty.all():
            self.signature = bins.copy()  # still the virgin sentinel vector
            return
        k = self.num_perm
        idx = np.arange(k)
        src = np.where(empty, -1, idx)
        np.maximum.accumulate(src, out=src)
        last = int(src[-1])  # index of the last filled bin
        wrapped = src < 0
        donor = np.where(wrapped, last, src)
        dist = idx - donor
        dist[wrapped] += k
        sig = bins.copy()
        sig[empty] = (bins[donor[empty]] + dist[empty] * _ROT) % _PRIME
        self.signature = sig

    @classmethod
    def of(
        cls, values: Iterable[object], num_perm: int = 64, seed: int = 7,
        scheme: str = "classic",
    ) -> "MinHash":
        mh = cls(num_perm=num_perm, seed=seed, scheme=scheme)
        mh.update_many(values)
        return mh

    @classmethod
    def of_tokens(
        cls, tokens: Iterable[str], num_perm: int = 64, seed: int = 7,
        vectorize: bool = True, scheme: str = "classic",
    ) -> "MinHash":
        mh = cls(num_perm=num_perm, seed=seed, scheme=scheme)
        mh.update_tokens(tokens, vectorize=vectorize)
        return mh

    def _check_comparable(self, other: "MinHash", op: str) -> None:
        if self.num_perm != other.num_perm:
            raise ValueError("signatures have different widths")
        if self.seed != other.seed:
            raise InvalidRequestError(
                f"cannot {op} MinHash signatures with different seeds "
                f"({self.seed} vs {other.seed}): estimates would be garbage"
            )
        if self.scheme != other.scheme:
            raise InvalidRequestError(
                f"cannot {op} MinHash signatures with different schemes "
                f"({self.scheme!r} vs {other.scheme!r}): estimates would "
                f"be garbage"
            )

    def jaccard(self, other: "MinHash") -> float:
        """Estimated Jaccard similarity with another signature."""
        self._check_comparable(other, "compare")
        if self.count == 0 and other.count == 0:
            return 1.0
        if self.count == 0 or other.count == 0:
            return 0.0
        return float(np.mean(self.signature == other.signature))

    def merge(self, other: "MinHash") -> "MinHash":
        """Signature of the union of both underlying sets (``count`` becomes
        an upper bound on the union's distinct insertions)."""
        self._check_comparable(other, "merge")
        merged = MinHash.__new__(MinHash)
        merged.num_perm = self.num_perm
        merged.seed = self.seed
        merged.scheme = self.scheme
        merged._a, merged._b = self._a, self._b
        merged.count = self.count + other.count
        if self.scheme == "classic":
            merged._bins = None
            merged.signature = np.minimum(self.signature, other.signature)
        else:
            # union minima live in the raw bins; densify the merged state
            # rather than mixing borrowed (densified) slots
            merged._bins = np.minimum(self._bins, other._bins)
            merged._densify()
        return merged

    def digest(self) -> tuple[int, ...]:
        return tuple(int(v) for v in self.signature)

    #: serialized header: num_perm, seed, count (little-endian, fixed
    #: width), followed by one scheme-tag byte since schema v2
    _HEADER = struct.Struct("<iiq")

    def to_bytes(self) -> bytes:
        """Round-trippable serialization: header (num_perm, seed, count),
        one scheme-tag byte, then the scheme's *raw state* as little-endian
        int64 — the classic signature vector, or OPH's per-bin minima (the
        densified view is recomputed on load, so merged/updated replays
        stay bit-identical)."""
        header = self._HEADER.pack(self.num_perm, self.seed, self.count)
        state = self.signature if self.scheme == "classic" else self._bins
        return (
            header
            + bytes([_SCHEME_CODES[self.scheme]])
            + state.astype("<i8").tobytes()
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "MinHash":
        """Rebuild a signature serialized by :meth:`to_bytes`, bit-identical.

        Payloads written before the scheme tag existed (header + state,
        no tag byte) deserialize as ``"classic"`` — classic stores replay
        unchanged across the upgrade."""
        num_perm, seed, count = cls._HEADER.unpack_from(data)
        legacy = cls._HEADER.size + 8 * num_perm
        tagged = legacy + 1
        if len(data) == legacy:
            scheme, offset = "classic", cls._HEADER.size
        elif len(data) == tagged:
            code = data[cls._HEADER.size]
            scheme = _SCHEME_NAMES.get(code)
            if scheme is None:
                raise ValueError(f"unknown MinHash scheme tag {code}")
            offset = cls._HEADER.size + 1
        else:
            raise ValueError(
                f"corrupt MinHash payload: {len(data)} bytes, "
                f"expected {legacy} or {tagged}"
            )
        mh = cls(num_perm=num_perm, seed=seed, scheme=scheme)
        state = np.frombuffer(data, dtype="<i8", offset=offset).astype(
            np.int64
        )
        if scheme == "classic":
            mh.signature = state
        else:
            mh._bins = state
            mh._densify()
        mh.count = count
        return mh


def containment(small: set, big: set) -> float:
    """Exact containment |small ∩ big| / |small| (used as ground truth)."""
    if not small:
        return 0.0
    return len(small & big) / len(small)


def jaccard_exact(a: set, b: set) -> float:
    if not a and not b:
        return 1.0
    return len(a & b) / len(a | b)
