"""Data sketches: MinHash signatures, LSH indexes, column summaries."""

from .histograms import CategoricalSummary, NumericSummary
from .lsh import LSHIndex
from .minhash import (
    MinHash,
    containment,
    hash_tokens,
    jaccard_exact,
    stable_hash,
)

__all__ = [
    "MinHash",
    "LSHIndex",
    "NumericSummary",
    "CategoricalSummary",
    "stable_hash",
    "hash_tokens",
    "containment",
    "jaccard_exact",
]
