"""Locality-sensitive hashing index over MinHash signatures.

Used by the index builder to find all column pairs whose estimated Jaccard
similarity exceeds a threshold without comparing every pair — the classic
banding construction: signatures are cut into ``bands`` bands of ``rows``
rows; two signatures collide if any band matches exactly.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Hashable, Iterable

from ..errors import InvalidRequestError
from .minhash import MinHash


class LSHIndex:
    """Banded LSH index mapping keys to MinHash signatures.

    Banding consumes the dense ``signature`` vector only, so classic and
    OPH signatures index identically — but one index must hold one scheme
    (and one seed): the first signature added pins both, and adding or
    querying with a mismatched signature raises a typed
    :class:`~repro.errors.InvalidRequestError` instead of silently
    bucketing incomparable minima."""

    def __init__(self, num_perm: int = 64, bands: int = 16):
        if num_perm % bands != 0:
            raise ValueError(
                f"num_perm ({num_perm}) must be divisible by bands ({bands})"
            )
        self.num_perm = num_perm
        self.bands = bands
        self.rows = num_perm // bands
        self._buckets: list[dict[tuple, list[Hashable]]] = [
            defaultdict(list) for _ in range(bands)
        ]
        self._signatures: dict[Hashable, MinHash] = {}
        #: (scheme, seed) pinned by the first signature added
        self._family: tuple[str, int] | None = None

    def __len__(self) -> int:
        return len(self._signatures)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._signatures

    def _check_family(self, signature: MinHash, pin: bool) -> None:
        if signature.num_perm != self.num_perm:
            raise ValueError("signature width does not match index")
        family = (signature.scheme, signature.seed)
        if self._family is None:
            if pin:
                self._family = family
        elif family != self._family:
            raise InvalidRequestError(
                f"signature scheme/seed {family} does not match the "
                f"index's {self._family}: mixed sketch families cannot "
                f"share LSH bands"
            )

    def add(self, key: Hashable, signature: MinHash) -> None:
        self._check_family(signature, pin=True)
        if key in self._signatures:
            raise KeyError(f"key {key!r} already indexed")
        self._signatures[key] = signature
        for band, bucket in enumerate(self._buckets):
            lo = band * self.rows
            band_key = tuple(signature.signature[lo : lo + self.rows])
            bucket[band_key].append(key)

    def remove(self, key: Hashable) -> None:
        """Drop a key from every band bucket (incremental index maintenance)."""
        try:
            signature = self._signatures.pop(key)
        except KeyError:
            raise KeyError(f"key {key!r} is not indexed") from None
        for band, bucket in enumerate(self._buckets):
            lo = band * self.rows
            band_key = tuple(signature.signature[lo : lo + self.rows])
            keys = bucket[band_key]
            keys.remove(key)
            if not keys:
                del bucket[band_key]

    def candidates(self, signature: MinHash) -> set[Hashable]:
        """Raw colliding keys for ``signature``, without similarity scoring.

        With ``bands == num_perm`` (one row per band) this is *exact-recall*:
        every indexed signature sharing at least one minimum with the query —
        i.e. every pair with estimated Jaccard > 0 — collides.
        """
        self._check_family(signature, pin=False)
        out: set[Hashable] = set()
        for band, bucket in enumerate(self._buckets):
            lo = band * self.rows
            band_key = tuple(signature.signature[lo : lo + self.rows])
            out.update(bucket.get(band_key, ()))
        return out

    def query(self, signature: MinHash, min_jaccard: float = 0.0) -> list[tuple[Hashable, float]]:
        """Candidate keys colliding with ``signature``, with their estimated
        Jaccard similarity, filtered by ``min_jaccard`` and sorted best-first.
        """
        scored = []
        for key in self.candidates(signature):
            sim = signature.jaccard(self._signatures[key])
            if sim >= min_jaccard:
                scored.append((key, sim))
        scored.sort(key=lambda kv: (-kv[1], str(kv[0])))
        return scored

    def similar_pairs(self, min_jaccard: float = 0.5) -> list[tuple[Hashable, Hashable, float]]:
        """All indexed pairs whose estimated similarity >= threshold."""
        seen: set[frozenset] = set()
        out = []
        for bucket in self._buckets:
            for keys in bucket.values():
                for i, a in enumerate(keys):
                    for b in keys[i + 1 :]:
                        pair = frozenset((a, b))
                        if pair in seen:
                            continue
                        seen.add(pair)
                        sim = self._signatures[a].jaccard(self._signatures[b])
                        if sim >= min_jaccard:
                            out.append((a, b, sim))
        out.sort(key=lambda t: (-t[2], str(t[0]), str(t[1])))
        return out

    def keys(self) -> Iterable[Hashable]:
        return self._signatures.keys()
