"""Statistical summaries of columns (the profiler's numeric/categorical view).

Besides MinHash signatures, the metadata engine records per-column summary
statistics in each context snapshot: numeric columns get moments, range and
equi-width histograms; categorical columns get cardinality and heavy hitters.
These feed both discovery ranking and the intrinsic-property constraints in
WTP functions (e.g. "few missing values").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import nsmallest
from typing import Mapping, Sequence

import numpy as np


@dataclass(frozen=True)
class NumericSummary:
    """Moments, range and an equi-width histogram of a numeric column."""

    count: int
    nulls: int
    minimum: float
    maximum: float
    mean: float
    std: float
    bin_edges: tuple[float, ...]
    bin_counts: tuple[int, ...]

    @classmethod
    def of(cls, values: Sequence, bins: int = 10) -> "NumericSummary":
        nulls = sum(1 for v in values if v is None)
        data = np.array([float(v) for v in values if v is not None], dtype=float)
        return cls.of_array(data, nulls, bins=bins)

    @classmethod
    def of_array(
        cls, data: np.ndarray, nulls: int, bins: int = 10
    ) -> "NumericSummary":
        """Summary from an already-materialized float array of the non-null
        values (the columnar profiler's entry point); :meth:`of` delegates
        here, so both paths produce bit-identical summaries."""
        if data.size == 0:
            return cls(0, nulls, float("nan"), float("nan"), float("nan"),
                       float("nan"), (), ())
        finite_mask = np.isfinite(data)
        if finite_mask.all():
            counts, edges = np.histogram(data, bins=bins)
            valid = data
        else:
            # NaN/inf cells must not crash profiling (the packed
            # canonicalization admits them): histogram over the finite
            # values only, range/moments over everything but NaN
            finite = data[finite_mask]
            counts, edges = (
                np.histogram(finite, bins=bins) if finite.size
                else ((), ())
            )
            valid = data[~np.isnan(data)]
        if valid.size:
            minimum, maximum = float(valid.min()), float(valid.max())
            # inf - inf -> nan, huge**2 -> inf: degrade, don't warn
            with np.errstate(invalid="ignore", over="ignore"):
                mean, std = float(valid.mean()), float(valid.std())
        else:
            minimum = maximum = mean = std = float("nan")
        return cls(
            count=int(data.size),
            nulls=nulls,
            minimum=minimum,
            maximum=maximum,
            mean=mean,
            std=std,
            bin_edges=tuple(float(e) for e in edges),
            bin_counts=tuple(int(c) for c in counts),
        )

    def to_dict(self) -> dict:
        """JSON-ready payload (floats round-trip exactly, NaN included)."""
        return {
            "count": self.count,
            "nulls": self.nulls,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "mean": self.mean,
            "std": self.std,
            "bin_edges": list(self.bin_edges),
            "bin_counts": list(self.bin_counts),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "NumericSummary":
        return cls(
            count=int(data["count"]),
            nulls=int(data["nulls"]),
            minimum=float(data["minimum"]),
            maximum=float(data["maximum"]),
            mean=float(data["mean"]),
            std=float(data["std"]),
            bin_edges=tuple(float(e) for e in data["bin_edges"]),
            bin_counts=tuple(int(c) for c in data["bin_counts"]),
        )

    def overlap(self, other: "NumericSummary") -> float:
        """Fraction of this column's range covered by the other's range."""
        if self.count == 0 or other.count == 0:
            return 0.0
        width = self.maximum - self.minimum
        if width == 0:
            inside = other.minimum <= self.minimum <= other.maximum
            return 1.0 if inside else 0.0
        lo = max(self.minimum, other.minimum)
        hi = min(self.maximum, other.maximum)
        if hi <= lo:
            return 0.0
        return (hi - lo) / width


@dataclass(frozen=True)
class CategoricalSummary:
    """Cardinality and heavy hitters of a categorical column."""

    count: int
    nulls: int
    distinct: int
    top: tuple[tuple[str, int], ...] = field(default=())

    @classmethod
    def of(cls, values: Sequence, top_k: int = 10) -> "CategoricalSummary":
        """Value-at-a-time reference implementation (the scalar profiling
        oracle); the columnar path builds a ``Counter`` over cached
        canonical strings and goes through :meth:`of_counts`, which is
        property-tested to produce identical summaries."""
        nulls = 0
        freq: dict[str, int] = {}
        for v in values:
            if v is None:
                nulls += 1
                continue
            key = str(v)
            freq[key] = freq.get(key, 0) + 1
        top = tuple(
            sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
        )
        return cls(
            count=len(values) - nulls,
            nulls=nulls,
            distinct=len(freq),
            top=top,
        )

    @classmethod
    def of_counts(
        cls, freq: Mapping[str, int], nulls: int, top_k: int = 10
    ) -> "CategoricalSummary":
        """Summary from precomputed value counts (the columnar profiler's
        entry point).  Identical output to :meth:`of` on the same counts;
        the heavy-hitter selection avoids sorting the full distinct set —
        a count threshold from ``np.partition`` narrows the sort to
        potential top-k members, and all-tied tails fall back to a
        key-order ``nsmallest``."""
        n = len(freq)
        count = sum(freq.values())
        if n <= max(32, 4 * top_k):
            top = tuple(
                sorted(freq.items(), key=lambda kv: (-kv[1], kv[0]))[:top_k]
            )
            return cls(count=count, nulls=nulls, distinct=n, top=top)
        if count == n:
            # all values unique (e.g. a key column): ties everywhere, the
            # heavy hitters are simply the top_k smallest keys
            top = tuple((k, 1) for k in nsmallest(top_k, freq.keys()))
            return cls(count=count, nulls=nulls, distinct=n, top=top)
        counts = np.fromiter(freq.values(), dtype=np.int64, count=n)
        # the top_k-th largest count: anything below it cannot place
        thresh = int(np.partition(counts, n - top_k)[n - top_k])
        above = [kv for kv in freq.items() if kv[1] > thresh]
        above.sort(key=lambda kv: (-kv[1], kv[0]))
        remaining = top_k - len(above)
        at = nsmallest(
            remaining, (k for k, v in freq.items() if v == thresh)
        )
        top = tuple(above + [(k, thresh) for k in at])
        return cls(count=count, nulls=nulls, distinct=n, top=top)

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "nulls": self.nulls,
            "distinct": self.distinct,
            "top": [[k, v] for k, v in self.top],
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "CategoricalSummary":
        return cls(
            count=int(data["count"]),
            nulls=int(data["nulls"]),
            distinct=int(data["distinct"]),
            top=tuple((str(k), int(v)) for k, v in data["top"]),
        )

    @property
    def null_fraction(self) -> float:
        total = self.count + self.nulls
        return self.nulls / total if total else 0.0
