"""The (least) core: an alternative coalition-stable revenue allocation.

Section 8.2 cites work suggesting "a different metric, the core, which is
also apt for coalitional games".  The least core minimizes the worst
coalition's incentive to defect:

    minimize  e
    s.t.      sum_i x_i = v(N)
              sum_{i in S} x_i >= v(S) - e   for every S ⊂ N, S ≠ ∅

solved as a linear program (scipy linprog, HiGHS).  Feasible only for small
player counts (2^n constraints) — exactly the regime revenue allocation over
mashup-contributing datasets lives in.
"""

from __future__ import annotations

import itertools

import numpy as np
from scipy.optimize import linprog

from ..errors import ValuationError
from .game import CoalitionGame


def least_core(
    game: CoalitionGame, max_players: int = 12
) -> tuple[dict[str, float], float]:
    """Return (allocation, e*) where e* is the least-core excess."""
    n = game.n
    if n > max_players:
        raise ValuationError(
            f"least core over {n} players needs 2^{n} constraints"
        )
    players = list(game.players)
    index = {p: i for i, p in enumerate(players)}
    grand_value = game.value(game.grand_coalition)

    # variables: x_0..x_{n-1}, e  -> minimize e
    c = np.zeros(n + 1)
    c[-1] = 1.0

    a_ub, b_ub = [], []
    for size in range(1, n):
        for subset in itertools.combinations(players, size):
            # -sum_{i in S} x_i - e <= -v(S)
            row = np.zeros(n + 1)
            for p in subset:
                row[index[p]] = -1.0
            row[-1] = -1.0
            a_ub.append(row)
            b_ub.append(-game.value(frozenset(subset)))

    a_eq = [np.ones(n + 1)]
    a_eq[0][-1] = 0.0
    b_eq = [grand_value]

    bounds = [(None, None)] * n + [(0.0, None)]
    result = linprog(
        c,
        A_ub=np.array(a_ub) if a_ub else None,
        b_ub=np.array(b_ub) if b_ub else None,
        A_eq=np.array(a_eq),
        b_eq=np.array(b_eq),
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise ValuationError(f"least-core LP failed: {result.message}")
    allocation = {p: float(result.x[index[p]]) for p in players}
    return allocation, float(result.x[-1])


def in_core(
    game: CoalitionGame,
    allocation: dict[str, float],
    tolerance: float = 1e-9,
) -> bool:
    """Check core membership: efficient + no coalition can do better alone."""
    if set(allocation) != set(game.players):
        raise ValuationError("allocation must cover exactly the players")
    total = sum(allocation.values())
    if abs(total - game.value(game.grand_coalition)) > tolerance:
        return False
    players = list(game.players)
    for size in range(1, len(players)):
        for subset in itertools.combinations(players, size):
            payoff = sum(allocation[p] for p in subset)
            if payoff < game.value(frozenset(subset)) - tolerance:
                return False
    return True
