"""The (least) core: an alternative coalition-stable revenue allocation.

Section 8.2 cites work suggesting "a different metric, the core, which is
also apt for coalitional games".  The least core minimizes the worst
coalition's incentive to defect:

    minimize  e
    s.t.      sum_i x_i = v(N)
              sum_{i in S} x_i >= v(S) - e   for every S ⊂ N, S ≠ ∅

solved as a linear program (scipy linprog, HiGHS).  Feasible only for small
player counts (2^n constraints) — exactly the regime revenue allocation over
mashup-contributing datasets lives in.  All 2^n - 2 proper-coalition values
are gathered in one :meth:`~repro.valuation.game.CoalitionGame.value_batch`
call and the constraint matrix is assembled from the same membership matrix,
so vectorized games pay a single characteristic-function invocation.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import linprog

from ..errors import ValuationError
from .game import CoalitionGame, mask_membership


def _proper_coalitions(n: int) -> np.ndarray:
    """(2^n - 2, n) bool membership of every S with 0 < |S| < n,
    size-major: all singletons first, then pairs, and so on, ascending
    bitmask (player 0 = bit 0) within each size."""
    masks = np.arange(1, (1 << n) - 1, dtype=np.uint64)
    membership = mask_membership(masks, n)
    sizes = membership.sum(axis=1)
    # stable sort by size keeps a deterministic, size-major constraint order
    return membership[np.argsort(sizes, kind="stable")]


def least_core(
    game: CoalitionGame, max_players: int = 12
) -> tuple[dict[str, float], float]:
    """Return (allocation, e*) where e* is the least-core excess."""
    n = game.n
    if n > max_players:
        raise ValuationError(
            f"least core over {n} players needs 2^{n} constraints"
        )
    players = list(game.players)
    grand_value = game.value(game.grand_coalition)

    # variables: x_0..x_{n-1}, e  -> minimize e
    c = np.zeros(n + 1)
    c[-1] = 1.0

    if n > 1:
        membership = _proper_coalitions(n)
        coalition_values = game.value_batch(membership)
        # -sum_{i in S} x_i - e <= -v(S), one row per proper coalition
        a_ub = np.hstack(
            [
                -membership.astype(float),
                -np.ones((membership.shape[0], 1)),
            ]
        )
        b_ub = -coalition_values
    else:
        a_ub = b_ub = None

    a_eq = np.ones((1, n + 1))
    a_eq[0, -1] = 0.0
    b_eq = np.array([grand_value])

    bounds = [(None, None)] * n + [(0.0, None)]
    result = linprog(
        c,
        A_ub=a_ub,
        b_ub=b_ub,
        A_eq=a_eq,
        b_eq=b_eq,
        bounds=bounds,
        method="highs",
    )
    if not result.success:
        raise ValuationError(f"least-core LP failed: {result.message}")
    allocation = {p: float(result.x[i]) for i, p in enumerate(players)}
    return allocation, float(result.x[-1])


def in_core(
    game: CoalitionGame,
    allocation: dict[str, float],
    tolerance: float = 1e-9,
) -> bool:
    """Check core membership: efficient + no coalition can do better alone."""
    if set(allocation) != set(game.players):
        raise ValuationError("allocation must cover exactly the players")
    total = sum(allocation.values())
    if abs(total - game.value(game.grand_coalition)) > tolerance:
        return False
    n = game.n
    if n == 1:
        return True
    x = np.array([allocation[p] for p in game.players])
    # enumerate coalitions in mask chunks: memory stays bounded for any n,
    # and a violation found in an early chunk skips the rest — important
    # both for scalar games (each coalition may re-run a buyer task) and
    # for the sheer 2^n row count at large n
    chunk = 1 << 16
    for start in range(1, (1 << n) - 1, chunk):
        masks = np.arange(
            start, min(start + chunk, (1 << n) - 1), dtype=np.uint64
        )
        membership = mask_membership(masks, n)
        payoffs = membership.astype(float) @ x
        if game.vectorized:
            coalition_values = game.value_batch(membership)
            if not np.all(payoffs >= coalition_values - tolerance):
                return False
        else:
            # scalar characteristic functions can be expensive (a
            # WTP-backed game re-runs a buyer task per coalition):
            # stop at the first violation
            for row, payoff in zip(membership, payoffs):
                if payoff < game.value_batch(row[None, :])[0] - tolerance:
                    return False
    return True
