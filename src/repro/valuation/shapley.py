"""Shapley-value estimators for revenue allocation.

"Within this framework, the Shapley value has been used to allocate revenue
to each row individually...  We are investigating alternative approaches
that are more computationally efficient and maintain the good properties
conferred by the Shapley value" (Section 3.2.3).  This module provides the
exact value and the standard efficient approximations the paper's citations
use (permutation Monte Carlo, and Ghorbani & Zou's truncated Monte Carlo);
benchmark E3 compares their cost/error trade-offs.

Every estimator has two execution paths selected by ``batched``:

* ``batched=True`` (default) generates all sampled permutations as NumPy
  index matrices and evaluates prefix coalitions through
  :meth:`~repro.valuation.game.CoalitionGame.value_batch` — for games with
  a vectorized ``batch_fn`` the whole estimator collapses into a handful of
  array operations (benchmark E19 measures the speedup);
* ``batched=False`` is the original scalar permutation loop, kept as the
  reference implementation the vectorized path must match: both paths draw
  the same permutations from the same seed, so allocations agree to
  floating-point accumulation order (≪ 1e-6).
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..errors import ValuationError
from .game import CoalitionGame, mask_membership


# ---------------------------------------------------------------------------
# exact Shapley
# ---------------------------------------------------------------------------
def exact_shapley(
    game: CoalitionGame, max_players: int = 16, batched: bool = True
) -> dict[str, float]:
    """Exact Shapley value by subset enumeration — O(2^n · n).

    Refuses games beyond ``max_players`` (the "practical" requirement of
    Section 3.1: market designs must be computationally efficient).  The
    batched path enumerates all 2^n coalitions as one membership matrix,
    evaluates them in a single :meth:`CoalitionGame.value_batch` call, and
    combines marginals by vectorized bitmask arithmetic.
    """
    n = game.n
    if n > max_players:
        raise ValuationError(
            f"exact Shapley over {n} players needs 2^{n} evaluations; "
            f"use monte_carlo_shapley instead"
        )
    if not batched:
        return _exact_shapley_scalar(game)

    masks = np.arange(1 << n, dtype=np.uint64)
    membership = mask_membership(masks, n)
    values = game.value_batch(membership)
    sizes = membership.sum(axis=1)
    # w[s] = s! (n-s-1)! / n! for coalitions S (excluding the new player)
    weights = np.array(
        [
            math.factorial(s) * math.factorial(n - s - 1) / math.factorial(n)
            for s in range(n)
        ]
    )
    shapley = np.zeros(n)
    for i in range(n):
        without = ~membership[:, i]
        base = masks[without]
        with_i = base | np.uint64(1 << i)
        marginals = values[with_i] - values[base]
        shapley[i] = float(np.sum(weights[sizes[base]] * marginals))
    return {p: float(shapley[i]) for i, p in enumerate(game.players)}


def _exact_shapley_scalar(game: CoalitionGame) -> dict[str, float]:
    """Reference implementation: per-subset scalar evaluation."""
    n = game.n
    players = game.players
    shapley = {p: 0.0 for p in players}
    others = {p: [q for q in players if q != p] for p in players}
    weights = [
        math.factorial(s) * math.factorial(n - s - 1) / math.factorial(n)
        for s in range(n)
    ]
    for p in players:
        for size in range(n):
            for subset in itertools.combinations(others[p], size):
                s = frozenset(subset)
                marginal = game.value(s | {p}) - game.value(s)
                shapley[p] += weights[size] * marginal
    return shapley


# ---------------------------------------------------------------------------
# permutation sampling
# ---------------------------------------------------------------------------
def _sample_permutations(
    n: int, n_permutations: int, seed: int
) -> np.ndarray:
    """(m, n) index matrix drawn exactly as the scalar loop draws orders.

    One :meth:`numpy.random.Generator.permutation` call per row keeps the
    random stream identical to the scalar path, so both paths visit the
    same prefix coalitions for the same seed.
    """
    rng = np.random.default_rng(seed)
    return np.stack(
        [rng.permutation(n) for _ in range(n_permutations)]
    ).astype(np.intp)


def _prefix_membership(perms: np.ndarray, n: int) -> np.ndarray:
    """(m, n, n) bool: entry [j, i, p] — is player p in perm j's prefix i?"""
    m = perms.shape[0]
    ranks = np.empty((m, n), dtype=np.intp)
    ranks[np.arange(m)[:, None], perms] = np.arange(n)[None, :]
    return ranks[:, None, :] <= np.arange(n)[None, :, None]


#: cap on the boolean prefix tensor one Monte Carlo chunk materializes
#: (chunk · n · n entries); 2^24 bools ≈ 16 MB keeps memory flat even for
#: thousand-player games while still batching hundreds of coalitions per
#: ``value_batch`` call
_MC_CHUNK_CELLS = 1 << 24


def monte_carlo_shapley(
    game: CoalitionGame,
    n_permutations: int = 200,
    seed: int = 0,
    batched: bool = True,
) -> dict[str, float]:
    """Permutation-sampling estimator: unbiased, O(n) evals per permutation.

    The batched path materializes the prefix coalitions of the sampled
    permutations as ``(chunk·n, n)`` membership matrices — chunked so
    memory stays ~constant at large player counts (exactly the regime
    ``exact_shapley`` hands off to this estimator) — evaluates each chunk
    in one ``value_batch`` call, and telescopes marginals with a weighted
    bincount.
    """
    if n_permutations < 1:
        raise ValuationError("need at least one permutation")
    if not batched:
        return _monte_carlo_shapley_scalar(game, n_permutations, seed)
    n = game.n
    perms = _sample_permutations(n, n_permutations, seed)
    empty = game.value_batch(np.zeros((1, n), dtype=bool))[0]
    chunk = max(1, _MC_CHUNK_CELLS // (n * n))
    totals = np.zeros(n)
    for start in range(0, n_permutations, chunk):
        block = perms[start:start + chunk]
        m = block.shape[0]
        prefixes = _prefix_membership(block, n)
        values = game.value_batch(
            prefixes.reshape(m * n, n)
        ).reshape(m, n)
        previous = np.concatenate(
            [np.full((m, 1), empty), values[:, :-1]], axis=1
        )
        marginals = values - previous
        totals += np.bincount(
            block.ravel(), weights=marginals.ravel(), minlength=n
        )
    return {
        p: float(totals[i]) / n_permutations
        for i, p in enumerate(game.players)
    }


def _monte_carlo_shapley_scalar(
    game: CoalitionGame, n_permutations: int, seed: int
) -> dict[str, float]:
    """Reference implementation: one coalition evaluation at a time."""
    rng = np.random.default_rng(seed)
    players = list(game.players)
    totals = {p: 0.0 for p in players}
    for _ in range(n_permutations):
        order = list(rng.permutation(players))
        prefix: set[str] = set()
        prev = game.value(frozenset())
        for p in order:
            prefix.add(p)
            current = game.value(frozenset(prefix))
            totals[p] += current - prev
            prev = current
    return {p: t / n_permutations for p, t in totals.items()}


def truncated_monte_carlo_shapley(
    game: CoalitionGame,
    n_permutations: int = 200,
    truncation_tolerance: float = 0.01,
    seed: int = 0,
    batched: bool = True,
) -> dict[str, float]:
    """Ghorbani & Zou's TMC-Shapley: stop scanning a permutation once the
    running coalition's value is within ``truncation_tolerance`` of v(N) —
    the remaining players' marginals are set to zero for that permutation.

    The batched path advances all permutations one prefix *position* at a
    time: position ``i`` is evaluated in one ``value_batch`` call covering
    only the permutations still active (not yet truncated), preserving the
    scalar path's evaluation-saving semantics while vectorizing each step.
    """
    if n_permutations < 1:
        raise ValuationError("need at least one permutation")
    if not batched:
        return _truncated_monte_carlo_scalar(
            game, n_permutations, truncation_tolerance, seed
        )
    n = game.n
    full_value = game.value(game.grand_coalition)
    threshold = truncation_tolerance * max(abs(full_value), 1e-12)
    perms = _sample_permutations(n, n_permutations, seed)
    empty = game.value_batch(np.zeros((1, n), dtype=bool))[0]

    totals = np.zeros(n)
    previous = np.full(n_permutations, empty)
    members = np.zeros((n_permutations, n), dtype=bool)
    active = np.ones(n_permutations, dtype=bool)
    for i in range(n):
        active &= np.abs(full_value - previous) > threshold
        if not active.any():
            break
        rows = np.flatnonzero(active)
        members[rows, perms[rows, i]] = True
        current = game.value_batch(members[rows])
        marginals = current - previous[rows]
        np.add.at(totals, perms[rows, i], marginals)
        previous[rows] = current
    return {
        p: float(totals[i]) / n_permutations
        for i, p in enumerate(game.players)
    }


def _truncated_monte_carlo_scalar(
    game: CoalitionGame,
    n_permutations: int,
    truncation_tolerance: float,
    seed: int,
) -> dict[str, float]:
    """Reference implementation: scalar permutation scan with truncation."""
    rng = np.random.default_rng(seed)
    players = list(game.players)
    full_value = game.value(game.grand_coalition)
    threshold = truncation_tolerance * max(abs(full_value), 1e-12)
    totals = {p: 0.0 for p in players}
    for _ in range(n_permutations):
        order = list(rng.permutation(players))
        prefix: set[str] = set()
        prev = game.value(frozenset())
        for p in order:
            if abs(full_value - prev) <= threshold:
                break  # truncate: remaining marginals ≈ 0
            prefix.add(p)
            current = game.value(frozenset(prefix))
            totals[p] += current - prev
            prev = current
    return {p: t / n_permutations for p, t in totals.items()}


def shapley_error(
    estimate: dict[str, float], exact: dict[str, float]
) -> float:
    """Mean absolute error between two allocations over shared players."""
    keys = set(estimate) & set(exact)
    if not keys:
        raise ValuationError("allocations share no players")
    return sum(abs(estimate[k] - exact[k]) for k in keys) / len(keys)


def leave_one_out(game: CoalitionGame) -> dict[str, float]:
    """LOO values: v(N) - v(N \\ {i}).  Cheap (n+1 evals) but ignores
    synergies — the classic baseline the Shapley literature improves on.
    All n+1 coalitions go through one ``value_batch`` call."""
    n = game.n
    membership = np.ones((n + 1, n), dtype=bool)
    np.fill_diagonal(membership[1:], False)
    values = game.value_batch(membership)
    full = values[0]
    return {
        p: float(full - values[i + 1]) for i, p in enumerate(game.players)
    }
