"""Shapley-value estimators for revenue allocation.

"Within this framework, the Shapley value has been used to allocate revenue
to each row individually...  We are investigating alternative approaches
that are more computationally efficient and maintain the good properties
conferred by the Shapley value" (Section 3.2.3).  This module provides the
exact value and the standard efficient approximations the paper's citations
use (permutation Monte Carlo, and Ghorbani & Zou's truncated Monte Carlo);
benchmark E3 compares their cost/error trade-offs.
"""

from __future__ import annotations

import itertools
import math

import numpy as np

from ..errors import ValuationError
from .game import CoalitionGame


def exact_shapley(game: CoalitionGame, max_players: int = 16) -> dict[str, float]:
    """Exact Shapley value by subset enumeration — O(2^n · n).

    Refuses games beyond ``max_players`` (the "practical" requirement of
    Section 3.1: market designs must be computationally efficient).
    """
    n = game.n
    if n > max_players:
        raise ValuationError(
            f"exact Shapley over {n} players needs 2^{n} evaluations; "
            f"use monte_carlo_shapley instead"
        )
    players = game.players
    shapley = {p: 0.0 for p in players}
    others = {
        p: [q for q in players if q != p] for p in players
    }
    # precompute weights |S|! (n-|S|-1)! / n!
    weights = [
        math.factorial(s) * math.factorial(n - s - 1) / math.factorial(n)
        for s in range(n)
    ]
    for p in players:
        for size in range(n):
            for subset in itertools.combinations(others[p], size):
                s = frozenset(subset)
                marginal = game.value(s | {p}) - game.value(s)
                shapley[p] += weights[size] * marginal
    return shapley


def monte_carlo_shapley(
    game: CoalitionGame,
    n_permutations: int = 200,
    seed: int = 0,
) -> dict[str, float]:
    """Permutation-sampling estimator: unbiased, O(n) evals per permutation."""
    if n_permutations < 1:
        raise ValuationError("need at least one permutation")
    rng = np.random.default_rng(seed)
    players = list(game.players)
    totals = {p: 0.0 for p in players}
    for _ in range(n_permutations):
        order = list(rng.permutation(players))
        prefix: set[str] = set()
        prev = game.value(frozenset())
        for p in order:
            prefix.add(p)
            current = game.value(frozenset(prefix))
            totals[p] += current - prev
            prev = current
    return {p: t / n_permutations for p, t in totals.items()}


def truncated_monte_carlo_shapley(
    game: CoalitionGame,
    n_permutations: int = 200,
    truncation_tolerance: float = 0.01,
    seed: int = 0,
) -> dict[str, float]:
    """Ghorbani & Zou's TMC-Shapley: stop scanning a permutation once the
    running coalition's value is within ``truncation_tolerance`` of v(N) —
    the remaining players' marginals are set to zero for that permutation.
    """
    if n_permutations < 1:
        raise ValuationError("need at least one permutation")
    rng = np.random.default_rng(seed)
    players = list(game.players)
    full_value = game.value(game.grand_coalition)
    threshold = truncation_tolerance * max(abs(full_value), 1e-12)
    totals = {p: 0.0 for p in players}
    for _ in range(n_permutations):
        order = list(rng.permutation(players))
        prefix: set[str] = set()
        prev = game.value(frozenset())
        for p in order:
            if abs(full_value - prev) <= threshold:
                break  # truncate: remaining marginals ≈ 0
            prefix.add(p)
            current = game.value(frozenset(prefix))
            totals[p] += current - prev
            prev = current
    return {p: t / n_permutations for p, t in totals.items()}


def shapley_error(
    estimate: dict[str, float], exact: dict[str, float]
) -> float:
    """Mean absolute error between two allocations over shared players."""
    keys = set(estimate) & set(exact)
    if not keys:
        raise ValuationError("allocations share no players")
    return sum(abs(estimate[k] - exact[k]) for k in keys) / len(keys)


def leave_one_out(game: CoalitionGame) -> dict[str, float]:
    """LOO values: v(N) - v(N \\ {i}).  Cheap (n+1 evals) but ignores
    synergies — the classic baseline the Shapley literature improves on."""
    grand = game.grand_coalition
    full = game.value(grand)
    return {p: full - game.value(grand - {p}) for p in game.players}
