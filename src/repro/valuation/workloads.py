"""Synthetic coalition-game workloads shared by benchmarks and tests.

Benchmark E3 (estimator cost/error), benchmark E19 (vectorized engine vs
scalar reference), and the equivalence tests all exercise the same
*capped-additive* game: player weights drawn uniformly, coalition value
``min(sum of member weights, cap)``.  Additive below the cap (so exact
allocations are predictable) yet pure synergy at it (so leave-one-out
misallocates and truncation bites) — defining it once here keeps every
consumer measuring the same characteristic function.
"""

from __future__ import annotations

import numpy as np

from .game import CoalitionGame


def capped_additive_game(
    n: int,
    seed: int = 0,
    cap_fraction: float = 0.6,
    vectorized: bool = True,
) -> CoalitionGame:
    """E3-style capped-additive game over ``n`` players.

    ``vectorized=False`` omits the batch characteristic function, yielding
    a game whose every coalition costs a Python call — the workload for
    measuring what batching buys.
    """
    rng = np.random.default_rng(seed)
    weights = rng.uniform(0.2, 1.0, size=n)
    cap = cap_fraction * float(weights.sum())
    players = [f"p{i}" for i in range(n)]
    index = {p: i for i, p in enumerate(players)}

    def value(coalition) -> float:
        return min(sum(weights[index[p]] for p in coalition), cap)

    def value_batch(members: np.ndarray) -> np.ndarray:
        return np.minimum(members.astype(float) @ weights, cap)

    return CoalitionGame.of(
        players, value, value_batch if vectorized else None
    )
