"""Cooperative-game abstraction for revenue allocation.

Section 3.2.3 models revenue allocation "as if each row in m was an agent
cooperating together with all other rows to form m"; prior work applies the
Shapley value to "the involved datasets participat[ing] in a coalition".
:class:`CoalitionGame` is that abstraction: a player set (datasets, rows,
sellers) plus a characteristic function v(S), memoized because v is usually
expensive (it re-runs a WTP task on a sub-mashup).

Evaluation accounting
---------------------
``evaluations`` counts *distinct coalitions whose value was computed by the
characteristic function*, no matter which entry point asked for it.  Both
the scalar :meth:`CoalitionGame.value` path and the vectorized
:meth:`CoalitionGame.value_batch` path share one cache, keyed by the
coalition's packed membership bitmask, so interleaving them can never
double-count: a coalition first seen by ``value`` is a cache hit inside a
later ``value_batch`` (and vice versa), and duplicates *within* one batch
are deduplicated before the characteristic function runs.  Cache hits never
increment ``evaluations``.

Vectorized games supply ``batch_fn``, a function from a boolean membership
matrix of shape ``(B, n)`` (row ``b`` marks the members of coalition ``b``
in player order) to a float vector of shape ``(B,)``.  When only one of
``value_fn`` / ``batch_fn`` is given, the other is derived from it.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Iterable, Sequence

import numpy as np

from ..errors import ValuationError

Coalition = FrozenSet[str]

#: A vectorized characteristic function: (B, n) bool membership -> (B,) float.
BatchValueFn = Callable[[np.ndarray], np.ndarray]


def mask_membership(masks: np.ndarray, n: int) -> np.ndarray:
    """Boolean membership matrix for bitmask-encoded coalitions.

    Row b of the result marks the members of ``masks[b]``, with player i at
    bit i — the single source of truth for the bit order every bitmask
    enumeration (exact Shapley, least core) must share so their
    ``value_batch`` cache keys line up.
    """
    bits = np.arange(n, dtype=masks.dtype)
    return ((masks[:, None] >> bits[None, :]) & 1).astype(bool)


class CoalitionGame:
    """Players + memoized characteristic function (scalar and batched)."""

    def __init__(
        self,
        players: tuple[str, ...],
        value_fn: Callable[[Coalition], float] | None,
        batch_fn: BatchValueFn | None = None,
    ):
        if value_fn is None and batch_fn is None:
            raise ValuationError("a game needs value_fn or batch_fn")
        self.players = tuple(players)
        self._index = {p: i for i, p in enumerate(self.players)}
        self._value_fn = value_fn
        self._batch_fn = batch_fn
        # one cache for both paths: packed membership bitmask -> value
        self._cache: dict[bytes, float] = {}
        self.evaluations = 0

    @classmethod
    def of(
        cls,
        players: Sequence[str],
        value_fn: Callable[[Coalition], float] | None = None,
        batch_fn: BatchValueFn | None = None,
    ) -> "CoalitionGame":
        players = tuple(players)
        if len(set(players)) != len(players):
            raise ValuationError("duplicate player names")
        if not players:
            raise ValuationError("a game needs at least one player")
        return cls(players, value_fn, batch_fn)

    @property
    def n(self) -> int:
        return len(self.players)

    @property
    def grand_coalition(self) -> Coalition:
        return frozenset(self.players)

    @property
    def vectorized(self) -> bool:
        """Whether a batched characteristic function is available — batch
        evaluation is then one array call instead of a per-coalition loop."""
        return self._batch_fn is not None

    # ------------------------------------------------------------------
    # membership encoding
    # ------------------------------------------------------------------
    def membership(
        self, coalitions: Iterable[Iterable[str]]
    ) -> np.ndarray:
        """Boolean membership matrix (B, n) for name-based coalitions."""
        rows = []
        for coalition in coalitions:
            row = np.zeros(self.n, dtype=bool)
            for p in coalition:
                idx = self._index.get(p)
                if idx is None:
                    raise ValuationError(f"unknown players {[p]}")
                row[idx] = True
            rows.append(row)
        if not rows:
            return np.zeros((0, self.n), dtype=bool)
        return np.stack(rows)

    def _key_of(self, members: np.ndarray) -> bytes:
        return np.packbits(members).tobytes()

    def _coalition_of(self, members: np.ndarray) -> Coalition:
        return frozenset(
            self.players[i] for i in np.flatnonzero(members)
        )

    # ------------------------------------------------------------------
    # scalar path
    # ------------------------------------------------------------------
    def value(self, coalition: Iterable[str]) -> float:
        key_set = frozenset(coalition)
        unknown = key_set - set(self.players)
        if unknown:
            raise ValuationError(f"unknown players {sorted(unknown)}")
        members = np.zeros(self.n, dtype=bool)
        for p in key_set:
            members[self._index[p]] = True
        key = self._key_of(members)
        if key not in self._cache:
            self._cache[key] = float(self._evaluate_one(key_set, members))
            self.evaluations += 1
        return self._cache[key]

    def _evaluate_one(self, coalition: Coalition, members: np.ndarray) -> float:
        if self._value_fn is not None:
            return self._value_fn(coalition)
        return float(
            np.asarray(self._batch_fn(members[None, :]), dtype=float)[0]
        )

    def marginal(self, player: str, coalition: Iterable[str]) -> float:
        base = frozenset(coalition) - {player}
        return self.value(base | {player}) - self.value(base)

    # ------------------------------------------------------------------
    # batched path
    # ------------------------------------------------------------------
    def value_batch(self, coalitions) -> np.ndarray:
        """Values of many coalitions in one call — shape ``(B,)``.

        ``coalitions`` is either a boolean membership matrix ``(B, n)``
        (columns in player order) or an iterable of name-iterables.  Each
        *distinct* uncached coalition is evaluated exactly once — via
        ``batch_fn`` in a single vectorized call when available, otherwise
        by looping the scalar characteristic function — and recorded in the
        shared cache, so ``evaluations`` grows by the number of genuinely
        new coalitions only.
        """
        if isinstance(coalitions, np.ndarray):
            members = np.asarray(coalitions, dtype=bool)
            if members.ndim != 2 or members.shape[1] != self.n:
                raise ValuationError(
                    f"membership matrix must be (B, {self.n}); "
                    f"got {members.shape}"
                )
        else:
            members = self.membership(coalitions)
        if members.shape[0] == 0:
            return np.zeros(0, dtype=float)

        packed = np.packbits(members, axis=1)
        keys = [row.tobytes() for row in packed]
        out = np.empty(len(keys), dtype=float)

        # dedupe within the batch and against the shared cache
        missing: dict[bytes, int] = {}
        for i, key in enumerate(keys):
            cached = self._cache.get(key)
            if cached is None and key not in missing:
                missing[key] = i

        if missing:
            rows = np.fromiter(missing.values(), dtype=np.intp)
            new_members = members[rows]
            if self._batch_fn is not None:
                values = np.asarray(
                    self._batch_fn(new_members), dtype=float
                ).reshape(-1)
                if values.shape[0] != rows.shape[0]:
                    raise ValuationError(
                        "batch_fn returned "
                        f"{values.shape[0]} values for {rows.shape[0]} "
                        "coalitions"
                    )
            else:
                values = np.array(
                    [
                        self._value_fn(self._coalition_of(row))
                        for row in new_members
                    ],
                    dtype=float,
                )
            for key, value in zip(missing, values):
                self._cache[key] = float(value)
            self.evaluations += len(missing)

        for i, key in enumerate(keys):
            out[i] = self._cache[key]
        return out


def efficiency_gap(game: CoalitionGame, allocation: dict[str, float]) -> float:
    """|sum(allocation) - v(N)| — zero for efficient allocations."""
    return abs(sum(allocation.values()) - game.value(game.grand_coalition))


def normalize_to_total(
    allocation: dict[str, float], total: float
) -> dict[str, float]:
    """Rescale non-negative parts of an allocation to sum to ``total``.

    Used by the revenue engine: Shapley shares of *utility* become shares of
    *money*.  Negative shares (players that hurt the coalition) are floored
    at zero before rescaling — sellers never owe money for contributing.
    """
    clipped = {k: max(0.0, v) for k, v in allocation.items()}
    s = sum(clipped.values())
    if s <= 0:
        n = len(clipped)
        return {k: total / n for k in clipped}
    return {k: total * v / s for k, v in clipped.items()}
