"""Cooperative-game abstraction for revenue allocation.

Section 3.2.3 models revenue allocation "as if each row in m was an agent
cooperating together with all other rows to form m"; prior work applies the
Shapley value to "the involved datasets participat[ing] in a coalition".
:class:`CoalitionGame` is that abstraction: a player set (datasets, rows,
sellers) plus a characteristic function v(S), memoized because v is usually
expensive (it re-runs a WTP task on a sub-mashup).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, Sequence

from ..errors import ValuationError

Coalition = FrozenSet[str]


@dataclass
class CoalitionGame:
    """Players + memoized characteristic function."""

    players: tuple[str, ...]
    _value_fn: Callable[[Coalition], float]
    _cache: dict[Coalition, float] = field(default_factory=dict)
    evaluations: int = 0

    @classmethod
    def of(
        cls, players: Sequence[str], value_fn: Callable[[Coalition], float]
    ) -> "CoalitionGame":
        players = tuple(players)
        if len(set(players)) != len(players):
            raise ValuationError("duplicate player names")
        if not players:
            raise ValuationError("a game needs at least one player")
        return cls(players, value_fn)

    @property
    def n(self) -> int:
        return len(self.players)

    @property
    def grand_coalition(self) -> Coalition:
        return frozenset(self.players)

    def value(self, coalition: Iterable[str]) -> float:
        key = frozenset(coalition)
        unknown = key - set(self.players)
        if unknown:
            raise ValuationError(f"unknown players {sorted(unknown)}")
        if key not in self._cache:
            self._cache[key] = float(self._value_fn(key))
            self.evaluations += 1
        return self._cache[key]

    def marginal(self, player: str, coalition: Iterable[str]) -> float:
        base = frozenset(coalition) - {player}
        return self.value(base | {player}) - self.value(base)


def efficiency_gap(game: CoalitionGame, allocation: dict[str, float]) -> float:
    """|sum(allocation) - v(N)| — zero for efficient allocations."""
    return abs(sum(allocation.values()) - game.value(game.grand_coalition))


def normalize_to_total(
    allocation: dict[str, float], total: float
) -> dict[str, float]:
    """Rescale non-negative parts of an allocation to sum to ``total``.

    Used by the revenue engine: Shapley shares of *utility* become shares of
    *money*.  Negative shares (players that hurt the coalition) are floored
    at zero before rescaling — sellers never owe money for contributing.
    """
    clipped = {k: max(0.0, v) for k, v in allocation.items()}
    s = sum(clipped.values())
    if s <= 0:
        n = len(clipped)
        return {k: total / n for k in clipped}
    return {k: total * v / s for k, v in clipped.items()}
