"""Exact, efficient Shapley values for KNN utility (Jia et al., VLDB 2019).

Section 8.2 cites "efficient task-specific data valuation for nearest
neighbor algorithms": when the buyer's task is a K-NN classifier and players
are individual training points, the Shapley value of every point can be
computed *exactly* in O(n log n) per test point via a backward recurrence —
no 2^n enumeration.  This is the paper's flagship example of a
"computationally efficient alternative that maintains the good properties
of the Shapley value", and benchmark E3 compares it against the generic
estimators.

For a single test point (x, y), sort training points by distance; with
1-based rank i over n points:

    s_(n) = 1[y_(n) = y] / n
    s_(i) = s_(i+1) + (1[y_(i) = y] - 1[y_(i+1) = y]) / K * min(K, i) / i

The default ``batched=True`` path computes the full (test × train) distance
matrix, sorts all rows at once, and unrolls the recurrence into a reversed
cumulative sum — no per-test-point Python loop at all.  ``batched=False``
keeps the original per-point loop as the reference implementation (E19
measures the gap).
"""

from __future__ import annotations

import numpy as np

from ..errors import ValuationError


def _validate(x_train, y_train, x_test, y_test, k):
    n = x_train.shape[0]
    if n == 0 or x_test.shape[0] == 0:
        raise ValuationError("need non-empty train and test sets")
    if k < 1:
        raise ValuationError("k must be >= 1")
    if y_train.shape[0] != n or y_test.shape[0] != x_test.shape[0]:
        raise ValuationError("label vectors misaligned with features")


def _distance_matrix(x_train: np.ndarray, x_test: np.ndarray) -> np.ndarray:
    """(T, n) Euclidean distances, elementwise-identical to the per-row
    ``np.linalg.norm(x_train - x, axis=1)`` of the scalar path (so stable
    argsort tie-breaks agree between both implementations)."""
    return np.linalg.norm(
        x_train[None, :, :] - x_test[:, None, :], axis=2
    )


def knn_shapley(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    k: int = 5,
    batched: bool = True,
) -> np.ndarray:
    """Per-training-point Shapley values of mean KNN test accuracy."""
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_test = np.asarray(x_test, dtype=float)
    y_test = np.asarray(y_test)
    _validate(x_train, y_train, x_test, y_test, k)
    if not batched:
        return _knn_shapley_scalar(x_train, y_train, x_test, y_test, k)

    n = x_train.shape[0]
    dist = _distance_matrix(x_train, x_test)  # (T, n)
    order = np.argsort(dist, axis=1, kind="stable")
    match = (y_train[order] == y_test[:, None]).astype(float)  # (T, n)

    # recurrence: s_i = s_{i+1} + (match_i - match_{i+1})/k * min(k, i+1)/(i+1)
    # (0-based rank i); closed form = tail + reversed cumsum of the deltas
    tail = match[:, -1:] / n  # s_{n-1} for every test point
    s = np.repeat(tail, n, axis=1)
    if n > 1:
        ranks = np.arange(1, n, dtype=float)  # 1-based ranks 1..n-1
        coef = np.minimum(k, ranks) / ranks
        deltas = (match[:, :-1] - match[:, 1:]) / k * coef[None, :]
        s[:, :-1] += np.cumsum(deltas[:, ::-1], axis=1)[:, ::-1]

    values = np.zeros(n)
    np.add.at(values, order.ravel(), s.ravel())
    return values / x_test.shape[0]


def _knn_shapley_scalar(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    k: int,
) -> np.ndarray:
    """Reference implementation: one test point at a time."""
    n = x_train.shape[0]
    values = np.zeros(n)
    for x, y in zip(x_test, y_test):
        dist = np.linalg.norm(x_train - x, axis=1)
        order = np.argsort(dist, kind="stable")  # ascending distance
        match = (y_train[order] == y).astype(float)
        s = np.zeros(n)
        s[n - 1] = match[n - 1] / n
        for i in range(n - 2, -1, -1):  # i is 0-based rank
            rank = i + 1  # 1-based
            s[i] = s[i + 1] + (match[i] - match[i + 1]) / k * min(k, rank) / rank
        values[order] += s
    return values / x_test.shape[0]


def knn_utility(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    k: int = 5,
) -> float:
    """Mean probability-of-correct of the soft K-NN the recurrence values:
    utility = mean over test points of (#matching labels in K nearest)/K.
    The Shapley values above sum to exactly this (efficiency axiom)."""
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_test = np.asarray(x_test, dtype=float)
    y_test = np.asarray(y_test)
    if x_train.shape[0] == 0 or x_test.shape[0] == 0:
        raise ValuationError("need non-empty train and test sets")
    kk = min(k, x_train.shape[0])
    dist = _distance_matrix(x_train, x_test)
    # kind="stable" keeps tie-breaking identical to the scalar argsort
    order = np.argsort(dist, axis=1, kind="stable")[:, :kk]
    hits = y_train[order] == y_test[:, None]
    return float(hits.mean(axis=1).mean())
