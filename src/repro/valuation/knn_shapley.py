"""Exact, efficient Shapley values for KNN utility (Jia et al., VLDB 2019).

Section 8.2 cites "efficient task-specific data valuation for nearest
neighbor algorithms": when the buyer's task is a K-NN classifier and players
are individual training points, the Shapley value of every point can be
computed *exactly* in O(n log n) per test point via a backward recurrence —
no 2^n enumeration.  This is the paper's flagship example of a
"computationally efficient alternative that maintains the good properties
of the Shapley value", and benchmark E3 compares it against the generic
estimators.

For a single test point (x, y), sort training points by distance; with
1-based rank i over n points:

    s_(n) = 1[y_(n) = y] / n
    s_(i) = s_(i+1) + (1[y_(i) = y] - 1[y_(i+1) = y]) / K * min(K, i) / i
"""

from __future__ import annotations

import numpy as np

from ..errors import ValuationError


def knn_shapley(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    k: int = 5,
) -> np.ndarray:
    """Per-training-point Shapley values of mean KNN test accuracy."""
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    x_test = np.asarray(x_test, dtype=float)
    y_test = np.asarray(y_test)
    n = x_train.shape[0]
    if n == 0 or x_test.shape[0] == 0:
        raise ValuationError("need non-empty train and test sets")
    if k < 1:
        raise ValuationError("k must be >= 1")
    if y_train.shape[0] != n or y_test.shape[0] != x_test.shape[0]:
        raise ValuationError("label vectors misaligned with features")

    values = np.zeros(n)
    for x, y in zip(x_test, y_test):
        dist = np.linalg.norm(x_train - x, axis=1)
        order = np.argsort(dist, kind="stable")  # ascending distance
        match = (y_train[order] == y).astype(float)
        s = np.zeros(n)
        s[n - 1] = match[n - 1] / n
        for i in range(n - 2, -1, -1):  # i is 0-based rank
            rank = i + 1  # 1-based
            s[i] = s[i + 1] + (match[i] - match[i + 1]) / k * min(k, rank) / rank
        values[order] += s
    return values / x_test.shape[0]


def knn_utility(
    x_train: np.ndarray,
    y_train: np.ndarray,
    x_test: np.ndarray,
    y_test: np.ndarray,
    k: int = 5,
) -> float:
    """Mean probability-of-correct of the soft K-NN the recurrence values:
    utility = mean over test points of (#matching labels in K nearest)/K.
    The Shapley values above sum to exactly this (efficiency axiom)."""
    x_train = np.asarray(x_train, dtype=float)
    y_train = np.asarray(y_train)
    total = 0.0
    for x, y in zip(np.asarray(x_test, dtype=float), np.asarray(y_test)):
        dist = np.linalg.norm(x_train - x, axis=1)
        order = np.argsort(dist, kind="stable")[: min(k, len(dist))]
        total += float(np.mean(y_train[order] == y))
    return total / len(x_test)
