"""Revenue allocation: coalition games, Shapley estimators, the core."""

from .core import in_core, least_core
from .game import CoalitionGame, efficiency_gap, normalize_to_total
from .knn_shapley import knn_shapley, knn_utility
from .shapley import (
    exact_shapley,
    leave_one_out,
    monte_carlo_shapley,
    shapley_error,
    truncated_monte_carlo_shapley,
)

__all__ = [
    "CoalitionGame",
    "efficiency_gap",
    "normalize_to_total",
    "exact_shapley",
    "monte_carlo_shapley",
    "truncated_monte_carlo_shapley",
    "leave_one_out",
    "shapley_error",
    "least_core",
    "in_core",
    "knn_shapley",
    "knn_utility",
]
