"""Integration: DoD engine, mapping-function synthesis, prep transforms."""

from .dod import (
    DoDEngine,
    MashupRequest,
    PlanCacheStats,
    PlannerStats,
    TransformHint,
)
from .plan import JoinStep, Mashup, MashupPlan, TransformStep, qualified
from .synthesis import (
    KNOWN_CONVERSIONS,
    AffineMap,
    DictionaryMap,
    MappingFunction,
    describe_affine,
    fit_affine,
    fit_dictionary,
    synthesize_mapping,
)
from .transforms import downsample_mean, interpolate_to_grid, pivot

__all__ = [
    "DoDEngine",
    "MashupRequest",
    "PlanCacheStats",
    "PlannerStats",
    "TransformHint",
    "Mashup",
    "MashupPlan",
    "JoinStep",
    "TransformStep",
    "qualified",
    "AffineMap",
    "DictionaryMap",
    "MappingFunction",
    "fit_affine",
    "fit_dictionary",
    "synthesize_mapping",
    "describe_affine",
    "KNOWN_CONVERSIONS",
    "interpolate_to_grid",
    "downsample_mean",
    "pivot",
]
