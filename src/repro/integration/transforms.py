"""Data preparation transforms used while assembling mashups.

Section 5 lists "other preparation tasks such as value interpolation to join
on different time granularities", and Section 3.2.2.1 mentions "pivoting,
aggregates" as transformation needs expressible in WTP functions.
"""

from __future__ import annotations

import numpy as np

from ..errors import IntegrationError
from ..relation import Column, Relation, Schema


def interpolate_to_grid(
    relation: Relation,
    time_column: str,
    value_column: str,
    step: int,
) -> Relation:
    """Resample a (time, value) relation onto a regular grid of ``step``.

    Linear interpolation between observed points; the output covers the
    observed time span.  This is what lets a 5-minute sensor feed join with
    an hourly city dataset.
    """
    if step <= 0:
        raise IntegrationError("interpolation step must be positive")
    t_pos = relation.schema.position(time_column)
    v_pos = relation.schema.position(value_column)
    points = sorted(
        (row[t_pos], row[v_pos])
        for row in relation.rows
        if row[t_pos] is not None and row[v_pos] is not None
    )
    if len(points) < 2:
        raise IntegrationError(
            "need at least 2 observations to interpolate"
        )
    times = np.array([p[0] for p in points], dtype=float)
    values = np.array([p[1] for p in points], dtype=float)
    if len(np.unique(times)) != len(times):
        raise IntegrationError("duplicate timestamps; aggregate first")
    start = int(np.ceil(times[0] / step) * step)
    grid = np.arange(start, times[-1] + 1, step)
    interpolated = np.interp(grid, times, values)
    return Relation(
        relation.name + "_interp",
        Schema([
            Column(time_column, "int", relation.schema[time_column].semantic),
            Column(value_column, "float"),
        ]),
        [(int(t), float(v)) for t, v in zip(grid, interpolated)],
    )


def downsample_mean(
    relation: Relation,
    time_column: str,
    value_column: str,
    step: int,
) -> Relation:
    """Aggregate observations into buckets of ``step`` with mean values."""
    if step <= 0:
        raise IntegrationError("downsampling step must be positive")
    bucketed = relation.extend(
        Column("_bucket", "int"),
        lambda row: (row[time_column] // step) * step,
    )
    out = bucketed.aggregate(["_bucket"], {value_column + "_mean": (value_column, "mean")})
    return out.rename({"_bucket": time_column,
                       value_column + "_mean": value_column}).renamed(
        relation.name + "_down"
    )


def pivot(
    relation: Relation,
    index_column: str,
    pivot_column: str,
    value_column: str,
) -> Relation:
    """Spread ``pivot_column``'s values into columns (first value wins)."""
    idx_pos = relation.schema.position(index_column)
    piv_pos = relation.schema.position(pivot_column)
    val_pos = relation.schema.position(value_column)
    categories = sorted(
        {str(row[piv_pos]) for row in relation.rows if row[piv_pos] is not None}
    )
    if not categories:
        raise IntegrationError("pivot column has no non-null values")
    table: dict[object, dict[str, object]] = {}
    order: list[object] = []
    for row in relation.rows:
        key = row[idx_pos]
        if key not in table:
            table[key] = {}
            order.append(key)
        cat = str(row[piv_pos])
        table[key].setdefault(cat, row[val_pos])
    cols = [relation.schema[index_column]] + [
        Column(c, "any") for c in categories
    ]
    rows = [
        tuple([key] + [table[key].get(c) for c in categories])
        for key in order
    ]
    return Relation(relation.name + "_pivot", Schema(cols), rows)
