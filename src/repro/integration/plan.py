"""Mashup plans: inspectable, executable recipes for combining datasets.

A mashup "is a combination of datasets using relational, non-relational, and
fusion operations" (Section 1).  A :class:`MashupPlan` is the transparent
record of that combination — Section 4.4 requires that "buyers may request
transparent access to the mashup building process to understand the original
datasets that contribute to the mashup", which is exactly ``plan.describe()``.

Execution is **lazy**: :meth:`MashupPlan.build_tree` resolves dataset names
through a caller-supplied resolver, renames every incoming column to a
qualified ``dataset__column`` form (so arbitrary join trees never clash),
and assembles joins, synthesized transforms and the final
projection/rename into an immutable expression tree — nothing touches the
rows until the tree is collected (:meth:`MashupPlan.run`, or
``Mashup.relation`` on first access).  Provenance flows through untouched,
which is what lets the revenue-sharing engine split the sale price over
contributing datasets afterwards.  The eager :meth:`MashupPlan.execute` is
kept as a deprecation shim over the iteration engine.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Callable

from ..errors import IntegrationError, ReproDeprecationWarning
from .synthesis import MappingFunction
from ..relation import Column, Relation, RelationExpr


def qualified(dataset: str, column: str) -> str:
    return f"{dataset}__{column}"


def _qualify(relation: Relation) -> RelationExpr:
    mapping = {n: qualified(relation.name, n) for n in relation.columns}
    return relation.lazy().rename(mapping)


@dataclass(frozen=True)
class JoinStep:
    """Join the running mashup with ``dataset`` on qualified columns.

    ``left_on``/``right_on`` carry the primary column pair; composite-key
    joins add further pairs through ``extra_on``.  :attr:`pairs` exposes the
    full equi-join predicate.
    """

    dataset: str
    left_on: str  # qualified column already present in the running mashup
    right_on: str  # qualified column of the incoming dataset
    score: float = 1.0
    #: additional (left, right) qualified column pairs of a composite key
    extra_on: tuple[tuple[str, str], ...] = ()
    #: estimated matching rows of ``dataset`` per running-mashup row (the
    #: cost model's per-step blow-up factor), or None when unknown
    fanout: float | None = None

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        return ((self.left_on, self.right_on), *self.extra_on)

    def describe(self) -> str:
        predicate = " and ".join(f"{lc} = {rc}" for lc, rc in self.pairs)
        return (
            f"join {self.dataset} on {predicate} "
            f"(confidence {self.score:.2f})"
        )


@dataclass(frozen=True)
class TransformStep:
    """Derive a new column by applying a synthesized mapping function."""

    source_column: str  # qualified
    output_column: str  # final (requested) name
    mapping: MappingFunction

    def describe(self) -> str:
        return (
            f"derive {self.output_column} from {self.source_column} via "
            f"{self.mapping.describe()}"
        )


@dataclass
class MashupPlan:
    """Base dataset + joins + transforms + final projection."""

    base: str
    joins: list[JoinStep] = field(default_factory=list)
    transforms: list[TransformStep] = field(default_factory=list)
    #: requested attribute name -> qualified column it comes from;
    #: transformed attributes map to their own name (already final).
    output: dict[str, str] = field(default_factory=dict)

    def sources(self) -> list[str]:
        """All datasets the plan reads, in join order."""
        return [self.base] + [j.dataset for j in self.joins]

    def describe(self) -> str:
        lines = [f"base: {self.base}"]
        lines += [step.describe() for step in self.joins]
        lines += [step.describe() for step in self.transforms]
        out = ", ".join(
            f"{attr}<-{src}" for attr, src in sorted(self.output.items())
        )
        lines.append(f"project: {out}")
        return "\n".join(lines)

    def build_tree(self, resolver: Callable[[str], Relation],
                   name: str = "mashup") -> RelationExpr:
        """Assemble the plan into a lazy expression tree (nothing runs).

        ``resolver`` maps dataset name -> Relation.  Plan-consistency
        errors (missing join columns, transform sources, output columns)
        are raised here, at tree-construction time, exactly as the eager
        executor raised them."""
        tree = _qualify(resolver(self.base))
        for step in self.joins:
            right = _qualify(resolver(step.dataset))
            for left_col, right_col in step.pairs:
                if left_col not in tree.schema:
                    raise IntegrationError(
                        f"join column {left_col!r} missing from running "
                        f"mashup (plan is inconsistent)"
                    )
                if right_col not in right.schema:
                    raise IntegrationError(
                        f"join column {right_col!r} missing from dataset "
                        f"{step.dataset!r}"
                    )
            tree = tree.join(right, on=list(step.pairs), keep_right=True)
        for step in self.transforms:
            if step.source_column not in tree.schema:
                raise IntegrationError(
                    f"transform source {step.source_column!r} missing"
                )
            src = step.source_column
            mapping = step.mapping
            tree = tree.extend(
                Column(step.output_column, "any"),
                lambda row, _src=src, _m=mapping: (
                    None if row[_src] is None else _m.apply(row[_src])
                ),
                columns=(src,),
            )
        # final projection: rename qualified columns to requested names
        missing = [
            src for src in self.output.values() if src not in tree.schema
        ]
        if missing:
            raise IntegrationError(
                f"plan output references missing columns: {missing}"
            )
        projected = tree.project(list(self.output.values()))
        rename = {
            src: attr
            for attr, src in self.output.items()
            if src != attr
        }
        return projected.rename(rename).relabel(name)

    def run(self, resolver: Callable[[str], Relation],
            name: str = "mashup", engine=None) -> Relation:
        """Build the plan's tree and collect it on ``engine`` (an engine
        name, instance, or None for the default)."""
        return self.build_tree(resolver, name).collect(engine)

    def execute(self, resolver: Callable[[str], Relation],
                name: str = "mashup") -> Relation:
        """Deprecated eager executor: use :meth:`build_tree` /
        :meth:`run` (the tree API) instead."""
        warnings.warn(
            "MashupPlan.execute is deprecated: build a lazy tree with "
            "build_tree() and collect it (or call run()) instead",
            ReproDeprecationWarning,
            stacklevel=2,
        )
        return self.run(resolver, name, engine="iteration")


class Mashup:
    """A mashup: the plan, its (lazily evaluated) result, and match data.

    The result is carried as an unevaluated expression tree; the first
    access to :attr:`relation` collects it (memoized — also shared with
    plan-cache copies holding the same tree).  Constructing a mashup from
    an already-materialized ``relation`` still works: it becomes a leaf
    tree with the relation pre-attached.
    """

    def __init__(
        self,
        plan: MashupPlan,
        relation: Relation | None = None,
        matched: dict[str, tuple[str, str, float]] | None = None,
        missing: tuple[str, ...] = (),
        tree: RelationExpr | None = None,
        engine=None,
    ):
        if tree is None:
            if relation is None:
                raise IntegrationError(
                    "a Mashup needs a result tree (or a materialized "
                    "relation)"
                )
            tree = relation.lazy()
        self.plan = plan
        #: the unevaluated result (collected on first ``relation`` access)
        self.tree = tree
        #: requested attribute -> (dataset, column, score) it was matched to
        self.matched: dict[str, tuple[str, str, float]] = dict(matched or {})
        #: requested attributes nobody could supply (negotiation targets)
        self.missing = tuple(missing)
        self.engine = engine
        self._relation = relation

    @property
    def relation(self) -> Relation:
        """The materialized result (collected on first access)."""
        rel = self._relation
        if rel is None:
            rel = self._relation = self.collect()
        return rel

    @property
    def materialized(self) -> bool:
        """True once the result tree has been collected."""
        return self._relation is not None

    def collect(self, engine=None) -> Relation:
        """Materialize the result tree (``engine`` overrides the default;
        engines are bit-identical, so the memoized result is shared)."""
        rel = self.tree.collect(engine if engine is not None else self.engine)
        if self._relation is None:
            self._relation = rel
        return rel

    @property
    def coverage(self) -> float:
        total = len(self.matched) + len(self.missing)
        return len(self.matched) / total if total else 0.0

    def sources(self) -> list[str]:
        return self.plan.sources()

    def __repr__(self) -> str:
        state = "materialized" if self.materialized else "lazy"
        return (
            f"Mashup(base={self.plan.base!r}, sources={self.sources()}, "
            f"{state})"
        )
