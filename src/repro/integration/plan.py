"""Mashup plans: inspectable, executable recipes for combining datasets.

A mashup "is a combination of datasets using relational, non-relational, and
fusion operations" (Section 1).  A :class:`MashupPlan` is the transparent
record of that combination — Section 4.4 requires that "buyers may request
transparent access to the mashup building process to understand the original
datasets that contribute to the mashup", which is exactly ``plan.describe()``.

Execution resolves dataset names through a caller-supplied resolver, renames
every incoming column to a qualified ``dataset__column`` form (so arbitrary
join trees never clash), applies joins and synthesized transforms, and
finally projects/renames to the buyer's requested attribute names.
Provenance flows through untouched, which is what lets the revenue-sharing
engine split the sale price over contributing datasets afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import IntegrationError
from .synthesis import MappingFunction
from ..relation import Column, Relation


def qualified(dataset: str, column: str) -> str:
    return f"{dataset}__{column}"


def _qualify(relation: Relation) -> Relation:
    mapping = {n: qualified(relation.name, n) for n in relation.columns}
    return relation.rename(mapping)


@dataclass(frozen=True)
class JoinStep:
    """Join the running mashup with ``dataset`` on qualified columns.

    ``left_on``/``right_on`` carry the primary column pair; composite-key
    joins add further pairs through ``extra_on``.  :attr:`pairs` exposes the
    full equi-join predicate.
    """

    dataset: str
    left_on: str  # qualified column already present in the running mashup
    right_on: str  # qualified column of the incoming dataset
    score: float = 1.0
    #: additional (left, right) qualified column pairs of a composite key
    extra_on: tuple[tuple[str, str], ...] = ()

    @property
    def pairs(self) -> tuple[tuple[str, str], ...]:
        return ((self.left_on, self.right_on), *self.extra_on)

    def describe(self) -> str:
        predicate = " and ".join(f"{lc} = {rc}" for lc, rc in self.pairs)
        return (
            f"join {self.dataset} on {predicate} "
            f"(confidence {self.score:.2f})"
        )


@dataclass(frozen=True)
class TransformStep:
    """Derive a new column by applying a synthesized mapping function."""

    source_column: str  # qualified
    output_column: str  # final (requested) name
    mapping: MappingFunction

    def describe(self) -> str:
        return (
            f"derive {self.output_column} from {self.source_column} via "
            f"{self.mapping.describe()}"
        )


@dataclass
class MashupPlan:
    """Base dataset + joins + transforms + final projection."""

    base: str
    joins: list[JoinStep] = field(default_factory=list)
    transforms: list[TransformStep] = field(default_factory=list)
    #: requested attribute name -> qualified column it comes from;
    #: transformed attributes map to their own name (already final).
    output: dict[str, str] = field(default_factory=dict)

    def sources(self) -> list[str]:
        """All datasets the plan reads, in join order."""
        return [self.base] + [j.dataset for j in self.joins]

    def describe(self) -> str:
        lines = [f"base: {self.base}"]
        lines += [step.describe() for step in self.joins]
        lines += [step.describe() for step in self.transforms]
        out = ", ".join(
            f"{attr}<-{src}" for attr, src in sorted(self.output.items())
        )
        lines.append(f"project: {out}")
        return "\n".join(lines)

    def execute(self, resolver: Callable[[str], Relation],
                name: str = "mashup") -> Relation:
        """Run the plan.  ``resolver`` maps dataset name -> Relation."""
        rel = _qualify(resolver(self.base))
        for step in self.joins:
            right = _qualify(resolver(step.dataset))
            for left_col, right_col in step.pairs:
                if left_col not in rel.schema:
                    raise IntegrationError(
                        f"join column {left_col!r} missing from running "
                        f"mashup (plan is inconsistent)"
                    )
                if right_col not in right.schema:
                    raise IntegrationError(
                        f"join column {right_col!r} missing from dataset "
                        f"{step.dataset!r}"
                    )
            rel = rel.join(right, on=list(step.pairs), keep_right=True)
        for step in self.transforms:
            if step.source_column not in rel.schema:
                raise IntegrationError(
                    f"transform source {step.source_column!r} missing"
                )
            src = step.source_column
            mapping = step.mapping
            rel = rel.extend(
                Column(step.output_column, "any"),
                lambda row, _src=src, _m=mapping: (
                    None if row[_src] is None else _m.apply(row[_src])
                ),
            )
        # final projection: rename qualified columns to requested names
        missing = [
            src for src in self.output.values() if src not in rel.schema
        ]
        if missing:
            raise IntegrationError(
                f"plan output references missing columns: {missing}"
            )
        projected = rel.project(list(self.output.values()))
        rename = {
            src: attr
            for attr, src in self.output.items()
            if src != attr
        }
        return projected.rename(rename).renamed(name)


@dataclass
class Mashup:
    """A materialized mashup: the plan, its result, and match metadata."""

    plan: MashupPlan
    relation: Relation
    #: requested attribute -> (dataset, column, score) it was matched to
    matched: dict[str, tuple[str, str, float]]
    #: requested attributes nobody could supply (negotiation targets)
    missing: tuple[str, ...] = ()

    @property
    def coverage(self) -> float:
        total = len(self.matched) + len(self.missing)
        return len(self.matched) / total if total else 0.0

    def sources(self) -> list[str]:
        return self.plan.sources()
