"""Program synthesis of attribute mapping functions.

The paper's introductory example: seller 2 shares ``f(d)`` where ``f`` may be
"a transformation from Celsius to Fahrenheit" (invertible) or "a mapping of
employees to IDs" (invertible only via a mapping table).  The arbiter "needs
to find an inverse mapping function f' that would transform f(d) into d if
such a function exists, or otherwise find a mapping table" (Section 1).

Given aligned example pairs (x, y) the synthesizer searches a small grammar:

* affine maps ``y = a*x + b`` (covers all unit conversions), invertible
  whenever ``a != 0``;
* dictionary maps (explicit lookup tables), invertible iff bijective.

Synthesized maps are verified against *all* examples, not just fitted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..errors import SynthesisError

#: named affine conversions recognized by :func:`describe_affine`
KNOWN_CONVERSIONS = {
    (1.8, 32.0): "celsius_to_fahrenheit",
    (0.5555555555555556, -17.77777777777778): "fahrenheit_to_celsius",
    (1000.0, 0.0): "kilo_to_base",
    (0.001, 0.0): "base_to_kilo",
    (1.609344, 0.0): "miles_to_km",
    (2.20462, 0.0): "kg_to_lb",
}


@dataclass(frozen=True)
class AffineMap:
    """y = a*x + b over numeric values."""

    a: float
    b: float

    def apply(self, x: float) -> float:
        return self.a * x + self.b

    @property
    def is_invertible(self) -> bool:
        return self.a != 0.0

    def inverse(self) -> "AffineMap":
        if not self.is_invertible:
            raise SynthesisError("affine map with a=0 is not invertible")
        return AffineMap(1.0 / self.a, -self.b / self.a)

    def describe(self) -> str:
        named = describe_affine(self.a, self.b)
        base = f"y = {self.a:.6g}*x + {self.b:.6g}"
        return f"{base} ({named})" if named else base


@dataclass(frozen=True)
class DictionaryMap:
    """Explicit lookup table; the paper's 'mapping table' fallback."""

    mapping: dict = field(hash=False)

    def apply(self, x):
        try:
            return self.mapping[x]
        except KeyError:
            raise SynthesisError(f"value {x!r} not in mapping table") from None

    @property
    def is_invertible(self) -> bool:
        values = list(self.mapping.values())
        return len(set(map(repr, values))) == len(values)

    def inverse(self) -> "DictionaryMap":
        if not self.is_invertible:
            raise SynthesisError("mapping table is not bijective")
        return DictionaryMap({v: k for k, v in self.mapping.items()})

    def describe(self) -> str:
        return f"lookup table ({len(self.mapping)} entries)"


MappingFunction = AffineMap | DictionaryMap


def fit_affine(
    pairs: Sequence[tuple[float, float]], tolerance: float = 1e-6
) -> AffineMap:
    """Fit y = a*x + b exactly (within tolerance) or raise SynthesisError."""
    pts = [(float(x), float(y)) for x, y in pairs if x is not None and y is not None]
    if len(pts) < 2:
        raise SynthesisError("need at least 2 example pairs to fit an affine map")
    # pick two x-distinct anchors
    anchor = pts[0]
    other = next((p for p in pts[1:] if p[0] != anchor[0]), None)
    if other is None:
        raise SynthesisError("all x values identical; affine map underdetermined")
    a = (other[1] - anchor[1]) / (other[0] - anchor[0])
    b = anchor[1] - a * anchor[0]
    fitted = AffineMap(a, b)
    scale = max(1.0, max(abs(y) for _x, y in pts))
    for x, y in pts:
        if abs(fitted.apply(x) - y) > tolerance * scale:
            raise SynthesisError(
                f"no affine map consistent with examples "
                f"(residual at x={x:.6g})"
            )
    return fitted


def fit_dictionary(pairs: Sequence[tuple]) -> DictionaryMap:
    """Build a lookup table; raise if the examples are self-contradictory."""
    mapping: dict = {}
    for x, y in pairs:
        if x is None or y is None:
            continue
        if x in mapping and mapping[x] != y:
            raise SynthesisError(
                f"contradictory examples: {x!r} maps to both "
                f"{mapping[x]!r} and {y!r}"
            )
        mapping[x] = y
    if not mapping:
        raise SynthesisError("no non-null example pairs to build a table from")
    return DictionaryMap(mapping)


def synthesize_mapping(
    pairs: Sequence[tuple], tolerance: float = 1e-6
) -> MappingFunction:
    """Search the grammar: affine first (generalizes), table as fallback."""
    clean = [(x, y) for x, y in pairs if x is not None and y is not None]
    if not clean:
        raise SynthesisError("no example pairs given")
    numeric = all(
        isinstance(x, (int, float)) and isinstance(y, (int, float))
        and not isinstance(x, bool) and not isinstance(y, bool)
        for x, y in clean
    )
    if numeric:
        try:
            return fit_affine(clean, tolerance=tolerance)
        except SynthesisError:
            pass
    return fit_dictionary(clean)


def describe_affine(a: float, b: float, tolerance: float = 1e-4) -> str | None:
    """Name a known unit conversion matching (a, b), if any."""
    for (ka, kb), name in KNOWN_CONVERSIONS.items():
        if abs(a - ka) <= tolerance * max(1.0, abs(ka)) and abs(b - kb) <= max(
            tolerance, tolerance * abs(kb)
        ):
            return name
    return None
