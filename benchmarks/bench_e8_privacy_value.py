"""E8 — The privacy-value trade-off curve (§4.2, §8.2).

"The higher the privacy level, the less the dataset is perturbed, meaning
the dataset will be of higher quality.  Therefore, the higher the privacy
level, the higher the price of the dataset."

A seller releases a feature dataset at increasing ε; for each release we
measure the buyer's classifier accuracy and the menu price.  Expected
shape: accuracy rises monotonically (up to noise) from coin-flip towards
the clean-data ceiling; the price curve is increasing and concave in ε.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy.stats import spearmanr

from repro.datagen import make_classification_world
from repro.ml import LogisticRegression, accuracy, train_test_split
from repro.pricing import PrivacyPriceMenu
from repro.privacy import perturb_numeric_column

EPSILONS = (0.05, 0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 20.0)


@pytest.fixture(scope="module")
def curve():
    world = make_classification_world(
        n_entities=600, feature_weights=(2.0, 1.5),
        dataset_features=((0, 1),), seed=3,
    )
    clean = world.datasets[0]
    labels = {r[0]: r[1] for r in world.label_relation.rows}
    menu = PrivacyPriceMenu("features", clean_price=100.0, epsilon_half=1.0)
    rng = np.random.default_rng(0)
    rows = []
    for eps in EPSILONS:
        noisy = clean
        for column in ("f0", "f1"):
            noisy = perturb_numeric_column(noisy, column, eps, rng)
        x = np.array([[r[1], r[2]] for r in noisy.rows], dtype=float)
        y = np.array([labels[r[0]] for r in noisy.rows], dtype=int)
        x_tr, x_te, y_tr, y_te = train_test_split(x, y, seed=1)
        model = LogisticRegression(epochs=150).fit(x_tr, y_tr)
        acc = accuracy(y_te, model.predict(x_te))
        rows.append((eps, round(menu.price_for_epsilon(eps), 2),
                     round(acc, 3)))
    return rows


def test_e8_report(curve, table, benchmark):
    table(
        ["epsilon", "menu price", "buyer accuracy"],
        curve,
        title="E8: privacy-value trade-off (clean price 100)",
    )
    world = make_classification_world(n_entities=400, seed=1)
    rng = np.random.default_rng(0)
    benchmark(
        perturb_numeric_column, world.datasets[0], "f0", 1.0, rng
    )


def test_e8_accuracy_increases_with_epsilon(curve):
    eps = [row[0] for row in curve]
    acc = [row[2] for row in curve]
    rho, _p = spearmanr(eps, acc)
    assert rho > 0.8  # strongly monotone despite training noise
    assert acc[0] < 0.65  # heavy noise: near coin-flip
    assert acc[-1] > 0.85  # near-clean data: high accuracy


def test_e8_price_increasing_and_concave(curve):
    prices = [row[1] for row in curve]
    assert all(b > a for a, b in zip(prices, prices[1:]))
    # concavity in epsilon: consecutive equal-ratio epsilon steps buy less
    assert (prices[1] - prices[0]) / (EPSILONS[1] - EPSILONS[0]) > (
        prices[-1] - prices[-2]
    ) / (EPSILONS[-1] - EPSILONS[-2])


def test_e8_price_never_exceeds_clean(curve):
    assert all(price < 100.0 for _e, price, _a in curve)
