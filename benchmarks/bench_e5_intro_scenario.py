"""E5 — The paper's Section 1 example, measured end to end.

Buyer b1 needs features <a, b, d, e> with an 80%-accuracy gate; seller 1
has <a, b, c>; seller 2 has <a, b', f(d)> with f(d) = 1.8 d + 32.  The
experiment verifies the full platform story:

* round 1: mashup of s1 + s2, with f' *synthesized* from the buyer's
  query-by-example rows, reaches the accuracy gate even without e;
* the missing attribute e becomes a negotiation request with a bounty;
* an opportunistic Seller 3 collects e; round 2's mashup beats round 1's
  accuracy and all three sellers share the revenue.
"""

from __future__ import annotations

import pytest

from repro.datagen import intro_scenario
from repro.integration import MashupRequest
from repro.market import Arbiter, BuyerPlatform, exclusive_auction_market
from repro.relation import Column, Relation
from repro.simulator import OpportunisticSeller


@pytest.fixture(scope="module")
def scenario():
    sc = intro_scenario(seed=7, n_entities=500)
    arbiter = Arbiter(exclusive_auction_market(k=1, reserve=10.0))
    arbiter.accept_dataset(sc["s1"], seller="seller_1")
    arbiter.accept_dataset(sc["s2"], seller="seller_2")
    buyer = BuyerPlatform("b1")
    arbiter.register_participant("b1", funding=1000.0)
    full = sc["world"].full
    d_pos = full.schema.position("f3")
    examples = Relation(
        "examples",
        [Column("entity_id", "int", "entity"), Column("d", "float")],
        [(row[0], float(row[d_pos])) for row in full.rows[:12]],
    )
    wtp = buyer.classification_wtp(
        labels=sc["labels"],
        features=["a", "b", "d", "e"],
        price_steps=[(0.80, 100.0), (0.90, 150.0)],
        examples=examples,
    )
    buyer.submit(arbiter, wtp)
    round1 = arbiter.run_round()

    e_pos = full.schema.position("f4")
    seller_3 = OpportunisticSeller(
        "seller_3",
        {"e": lambda: Relation(
            "s3_collected_e",
            [Column("entity_id", "int", "entity"), Column("e", "float")],
            [(row[0], float(row[e_pos])) for row in full.rows],
        )},
        collection_cost=0.5,
    )
    collected = seller_3.scan_and_collect(arbiter)
    buyer.submit(arbiter, wtp)
    round2 = arbiter.run_round()
    return sc, arbiter, round1, round2, collected, wtp


def test_e5_report(scenario, table, benchmark):
    sc, arbiter, round1, round2, collected, wtp = scenario
    d1, d2 = round1.deliveries[0], round2.deliveries[0]
    table(
        ["round", "sources", "satisfaction", "bid", "paid"],
        [
            (1, "+".join(d1.mashup.plan.sources()),
             round(d1.satisfaction, 3), d1.bid, round(d1.price_paid, 2)),
            (2, "+".join(d2.mashup.plan.sources()),
             round(d2.satisfaction, 3), d2.bid, round(d2.price_paid, 2)),
        ],
        title="E5: intro scenario (accuracy gate 0.80 -> $100, 0.90 -> $150)",
    )
    table(
        ["dataset", "revenue share (round 2)"],
        sorted(
            (k, round(v, 2)) for k, v in d2.split.dataset_shares.items()
        ),
        title="E5: revenue split after Seller 3 joins",
    )
    builder = arbiter.builder
    benchmark(
        builder.build,
        MashupRequest(attributes=wtp.attributes, key="entity_id",
                      examples=wtp.examples),
    )


def test_e5_round1_reaches_accuracy_gate(scenario):
    _sc, _arbiter, round1, _round2, _collected, _wtp = scenario
    d1 = round1.deliveries[0]
    assert d1.satisfaction >= 0.80
    assert d1.bid >= 100.0
    assert set(d1.mashup.plan.sources()) == {"s1", "s2"}
    assert d1.mashup.missing == ("e",)


def test_e5_f_prime_synthesis_visible_in_plan(scenario):
    _sc, _arbiter, round1, _r2, _c, _wtp = scenario
    plan = round1.deliveries[0].mashup.plan.describe()
    assert "derive d" in plan
    assert "fahrenheit_to_celsius" in plan  # recognized inverse of 1.8x+32


def test_e5_negotiation_and_collection(scenario):
    _sc, _arbiter, _r1, _r2, collected, _wtp = scenario
    assert [c.attribute for c in collected] == ["e"]


def test_e5_round2_improves_and_pays_all_sellers(scenario):
    _sc, _arbiter, round1, round2, _c, _wtp = scenario
    d1, d2 = round1.deliveries[0], round2.deliveries[0]
    assert d2.satisfaction > d1.satisfaction
    assert d2.bid >= d1.bid
    assert set(d2.mashup.plan.sources()) == {"s1", "s2", "s3_collected_e"}
    assert all(v >= 0 for v in d2.split.dataset_shares.values())
    assert d2.split.conserves()


def test_e5_ledger_and_audit_consistent(scenario):
    _sc, arbiter, *_ = scenario
    assert arbiter.ledger.conservation_check()
    assert arbiter.audit.verify()
