"""E11 — Fusion / truth-discovery accuracy (§5.3, §8.3).

"A specific fusion operator may select one value based on majority voting,
for example, while other fusion operators will implement other strategies."
We vary the skew of source reliabilities and compare resolution policies:

* majority vote (the naive fusion operator),
* iterative truth discovery (weights learned from agreement),
* oracle-weighted vote (true accuracies as weights — the ceiling),
* best single source (no fusion at all).

Expected shape: with uniformly reliable sources, majority ≈ truth
discovery; as reliability skews (few good sources drowned by noisy ones),
truth discovery keeps most of the oracle's advantage while majority decays
toward the noise floor.
"""

from __future__ import annotations

import pytest

from repro.datagen import conflicting_sources
from repro.fusion import auto_signals, discover_truth, fuse, resolve

SCENARIOS = {
    "uniform 5x0.7": [0.7] * 5,
    "mild skew": [0.9, 0.8, 0.6, 0.5, 0.5],
    "heavy skew": [0.95, 0.9, 0.35, 0.35, 0.35],
    "one expert": [0.95, 0.3, 0.3, 0.3, 0.3],
}
N_ENTITIES = 500


def evaluate(accuracies, seed=19) -> dict[str, float]:
    truth, sources = conflicting_sources(
        len(accuracies), N_ENTITIES, accuracies, seed=seed
    )
    truth_map = dict(truth.rows)
    fused = fuse(sources, "entity_id", auto_signals(sources, "entity_id"))

    def score(resolved) -> float:
        hits = sum(
            1 for k, v in resolved.rows if truth_map[k] == v
        )
        return hits / len(resolved)

    majority = score(resolve(fused, "majority"))
    oracle = score(resolve(
        fused, "weighted",
        weights={s.name: max(a - 0.25, 0.01) ** 2
                 for s, a in zip(sources, accuracies)},
    ))
    td_result = discover_truth(sources)
    td = td_result.accuracy_against(truth_map)
    best_single = max(
        sum(1 for e, c in src.rows if truth_map[e] == c) / len(src)
        for src in sources
    )
    return {
        "majority": majority,
        "truth_discovery": td,
        "oracle_weighted": oracle,
        "best_single": best_single,
    }


@pytest.fixture(scope="module")
def sweep():
    return {name: evaluate(accs) for name, accs in SCENARIOS.items()}


def test_e11_report(sweep, table, benchmark):
    rows = [
        (
            name,
            round(r["best_single"], 3),
            round(r["majority"], 3),
            round(r["truth_discovery"], 3),
            round(r["oracle_weighted"], 3),
        )
        for name, r in sweep.items()
    ]
    table(
        ["source reliabilities", "best single", "majority",
         "truth discovery", "oracle weighted"],
        rows,
        title=f"E11: fusion policies over {N_ENTITIES} entities, 5 sources",
    )
    _truth, sources = conflicting_sources(5, 300, [0.8] * 5, seed=1)
    benchmark(discover_truth, sources)


def test_e11_truth_discovery_beats_majority_under_skew(sweep):
    for scenario in ("heavy skew", "one expert"):
        r = sweep[scenario]
        assert r["truth_discovery"] > r["majority"] + 0.03, scenario


def test_e11_majority_fine_with_uniform_sources(sweep):
    r = sweep["uniform 5x0.7"]
    assert abs(r["truth_discovery"] - r["majority"]) < 0.05
    # fusion of 5 mediocre sources beats any single one
    assert r["majority"] > r["best_single"]


def test_e11_truth_discovery_tracks_oracle(sweep):
    """TD stays near the oracle whenever agreement carries signal; the
    'one expert vs 4 near-random sources' case is the known failure mode
    of agreement-based weighting, where only the gap to majority holds."""
    for name, r in sweep.items():
        if name == "one expert":
            continue
        assert r["truth_discovery"] >= r["oracle_weighted"] - 0.08, name
