"""E17 (extension) — Seller-side strategy: reserve prices (§3.3).

"Variations of this market may allow sellers to set a reserve price;
sellers will not sell any data unless they obtain a given quantity."  For a
second-price auction with U[0,100] buyer values, Myerson's theory predicts
an *interior* revenue-optimal reserve at 50: too low leaves money on the
table when competition is thin, too high forfeits sales.  We sweep the
reserve and measure realized revenue and sale rate.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import VickreyAuction
from repro.pricing import myerson_reserve_uniform
from repro.simulator import SimulationConfig, simulate_mechanism, uniform_values

RESERVES = (0.0, 25.0, 50.0, 75.0, 90.0)
N_BUYERS = 3  # thin competition: the regime where reserves matter most


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for reserve in RESERVES:
        metrics = simulate_mechanism(
            SimulationConfig(
                mechanism=VickreyAuction(k=1, reserve=reserve),
                n_rounds=400,
                n_buyers=N_BUYERS,
                strategy_mix={"truthful": 1.0},
                value_sampler=uniform_values(0, 100),
                seed=13,
            )
        )
        rows.append(
            (
                reserve,
                round(metrics.revenue_per_round, 2),
                round(metrics.transactions / metrics.rounds, 3),
                round(metrics.welfare / metrics.rounds, 1),
            )
        )
    return rows


def test_e17_report(sweep, table, benchmark):
    table(
        ["reserve", "revenue/round", "sale rate", "welfare/round"],
        sweep,
        title=(
            f"E17: reserve-price sweep ({N_BUYERS} truthful buyers, "
            f"U[0,100]; Myerson optimum = "
            f"{myerson_reserve_uniform(0, 100):.0f})"
        ),
    )
    benchmark(
        simulate_mechanism,
        SimulationConfig(
            mechanism=VickreyAuction(k=1, reserve=50.0),
            n_rounds=50,
            n_buyers=N_BUYERS,
            value_sampler=uniform_values(0, 100),
            seed=1,
        ),
    )


def test_e17_interior_optimum_at_myerson_reserve(sweep):
    revenue = {r: rev for r, rev, _s, _w in sweep}
    optimum = myerson_reserve_uniform(0.0, 100.0)
    assert revenue[optimum] > revenue[0.0]
    assert revenue[optimum] > revenue[90.0]
    assert revenue[optimum] == max(revenue.values())


def test_e17_sale_rate_monotone_decreasing_in_reserve(sweep):
    rates = [s for _r, _rev, s, _w in sweep]
    assert all(b <= a + 1e-9 for a, b in zip(rates, rates[1:]))


def test_e17_welfare_cost_of_revenue_optimal_reserve(sweep):
    """The reserve trades welfare for revenue — the quantified market-goal
    tension between external (revenue) and internal (welfare) designs."""
    welfare = {r: w for r, _rev, _s, w in sweep}
    assert welfare[0.0] > welfare[50.0] > welfare[90.0]
