"""E9 — Mashup builder quality and scaling (§5).

"The goal of data discovery is to identify a few datasets that are relevant
to a WTP-function among thousands of diverse heterogeneous datasets."  We
generate corpora with known ground-truth join structure (the datasets are
carved from one hidden wide table), then measure:

* join-candidate precision/recall of the index builder vs the generator's
  ground truth,
* end-to-end mashup assembly latency as the corpus grows.

Expected shape: precision stays high (signature overlap on a shared key
universe is a strong signal); recall stays high while the profile/index
cost grows roughly linearly in corpus size.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen import CorpusSpec, generate_corpus
from repro.discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from repro.integration import DoDEngine, MashupRequest

SIZES = (5, 10, 20, 40)


def corpus_of(n_datasets: int):
    return generate_corpus(CorpusSpec(
        n_entities=150,
        n_numeric=4,
        n_categorical=3,
        n_datasets=n_datasets,
        columns_per_dataset=3,
        rename_probability=0.2,
        affine_probability=0.1,
        code_probability=0.0,
        noisy_copy_probability=0.1,
        seed=17,
    ))


def join_quality(corpus) -> tuple[float, float]:
    """Precision/recall of discovered join pairs vs ground truth."""
    engine = MetadataEngine()
    engine.register_batch(corpus.datasets)
    index = IndexBuilder(engine, min_overlap=0.5)
    found = {
        frozenset([(c.left_dataset, c.left_column),
                   (c.right_dataset, c.right_column)])
        for c in index.join_candidates(min_score=0.5)
    }
    # required truth: the key-column pairs every dataset pair joins on
    key_truth = {
        frozenset([(a, ca), (b, cb)])
        for a, ca, b, cb in corpus.true_joins
    }
    # acceptable truth: any two columns carved from the same wide column
    # genuinely match (same values, same entities) — not false positives
    transformed = {(t.dataset, t.column) for t in corpus.transforms}
    acceptable = set(key_truth)
    bases = [
        (key, base) for key, base in corpus.column_bases.items()
        if key not in transformed
    ]
    for i, (col_a, base_a) in enumerate(bases):
        for col_b, base_b in bases[i + 1:]:
            if base_a == base_b and col_a[0] != col_b[0]:
                acceptable.add(frozenset([col_a, col_b]))
    if not found:
        return 0.0, 0.0
    precision = len(found & acceptable) / len(found)
    recall = len(found & key_truth) / len(key_truth)
    return precision, recall


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n in SIZES:
        corpus = corpus_of(n)
        t0 = time.perf_counter()
        engine = MetadataEngine()
        engine.register_batch(corpus.datasets)
        t_profile = time.perf_counter() - t0
        index = IndexBuilder(engine, min_overlap=0.5)
        t0 = time.perf_counter()
        index.refresh()
        t_index = time.perf_counter() - t0
        dod = DoDEngine(engine, index, DiscoveryEngine(engine, index))
        t0 = time.perf_counter()
        mashups = dod.build_mashups(
            MashupRequest(attributes=["num_0", "num_1"], key="entity_id")
        )
        t_build = time.perf_counter() - t0
        precision, recall = join_quality(corpus)
        rows.append(
            (
                n,
                round(precision, 3),
                round(recall, 3),
                round(t_profile * 1000, 1),
                round(t_index * 1000, 1),
                round(t_build * 1000, 1),
                len(mashups),
            )
        )
    return rows


def test_e9_report(sweep, table, benchmark):
    table(
        ["datasets", "join precision", "join recall", "profile (ms)",
         "index (ms)", "DoD build (ms)", "mashups"],
        sweep,
        title="E9: mashup builder quality and scaling",
    )
    corpus = corpus_of(10)
    engine = MetadataEngine()
    engine.register_batch(corpus.datasets)
    index = IndexBuilder(engine, subscribe=False)
    benchmark(index.refresh)


def test_e9_precision_and_recall_high(sweep):
    for n, precision, recall, *_rest in sweep:
        assert precision >= 0.8, (n, precision)
        assert recall >= 0.8, (n, recall)


def test_e9_mashups_found_at_every_scale(sweep):
    for row in sweep:
        assert row[-1] >= 1


def test_e9_profile_cost_roughly_linear(sweep):
    times = {row[0]: row[3] for row in sweep}
    # 8x the datasets should cost far less than 64x the profiling time
    assert times[40] < 20 * max(times[5], 1.0)


def test_e9_ablation_overlap_threshold(table, benchmark):
    """Ablation (DESIGN.md): the index builder's MinHash overlap threshold
    trades recall against candidate volume.  Expected shape: recall is
    robust across a wide band; an extreme threshold prunes candidates."""
    corpus = corpus_of(15)
    rows = []
    for threshold in (0.2, 0.5, 0.8, 0.95):
        engine = MetadataEngine()
        engine.register_batch(corpus.datasets)
        index = IndexBuilder(engine, min_overlap=threshold)
        candidates = index.join_candidates()
        found = {
            frozenset([(c.left_dataset, c.left_column),
                       (c.right_dataset, c.right_column)])
            for c in candidates
        }
        key_truth = {
            frozenset([(a, ca), (b, cb)])
            for a, ca, b, cb in corpus.true_joins
        }
        recall = len(found & key_truth) / len(key_truth)
        rows.append((threshold, len(candidates), round(recall, 3)))
    table(
        ["min overlap", "candidates", "key-join recall"],
        rows,
        title="E9 ablation: index builder overlap threshold (15 datasets)",
    )
    # key columns overlap heavily (same entity universe): recall is robust
    by_threshold = {t: r for t, _c, r in rows}
    assert by_threshold[0.2] >= by_threshold[0.95]
    assert by_threshold[0.5] >= 0.9
    counts = [c for _t, c, _r in rows]
    assert counts == sorted(counts, reverse=True)  # tighter => fewer
    engine = MetadataEngine()
    engine.register_batch(corpus.datasets)
    index = IndexBuilder(engine, subscribe=False)
    benchmark(index.refresh)
