"""E13 — The economic-opportunity ecosystem (§7.1).

"A well-functioning market generates economic opportunities for other
players besides sellers and buyers": arbitrageurs who buy/transform/resell,
and opportunistic sellers who collect data the arbiter signals demand for.

We run the same market with and without the two actor types and measure
attribute coverage and transactions.  Expected shape: with actors, demand
gaps close (opportunistic collection) and derived datasets appear
(arbitrage), so later buyer cohorts complete strictly more transactions.
"""

from __future__ import annotations

import pytest

from repro.market import Arbiter, BuyerPlatform, external_market
from repro.relation import Column, Relation
from repro.simulator import Arbitrageur, OpportunisticSeller


def base_dataset() -> Relation:
    return Relation(
        "base_features",
        [Column("entity_id", "int", "entity"), Column("x", "float")],
        [(i, float(i) * 0.1) for i in range(200)],
    )


def collected_y() -> Relation:
    return Relation(
        "collected_y",
        [Column("entity_id", "int", "entity"), Column("y", "float")],
        [(i, float(i) * 0.2) for i in range(200)],
    )


def demand_round(arbiter: Arbiter, cohort: str, n_buyers: int) -> int:
    """A cohort of buyers who need attributes x and y together."""
    for i in range(n_buyers):
        name = f"{cohort}_{i}"
        buyer = BuyerPlatform(name)
        arbiter.register_participant(name, funding=300.0)
        wtp = buyer.completeness_wtp(
            wanted_keys=list(range(100)),
            attributes=["x", "y"],
            price_steps=[(0.8, 30.0)],
        )
        buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    return result.transactions


def run_economy(with_actors: bool) -> dict[str, float]:
    arbiter = Arbiter(external_market())
    arbiter.accept_dataset(base_dataset(), seller="s1")
    t1 = demand_round(arbiter, "cohort1", 3)  # y missing: no trades

    if with_actors:
        scout = OpportunisticSeller(
            "scout", {"y": collected_y}, collection_cost=0.5
        )
        scout.scan_and_collect(arbiter)
        arb = Arbitrageur("arb")
        arb.join_market(arbiter, funding=200.0)
        delivered = arb.acquire(
            arbiter, attributes=["x", "y"],
            wanted_keys=list(range(100)), max_price=10.0,
        )
        if delivered is not None:
            arb.relist(
                arbiter, delivered, "arb_bundle",
                transform=lambda rel: rel.extend(
                    Column("xy", "float"),
                    lambda row: (row["x"] or 0.0) * (row["y"] or 0.0),
                ),
            )

    t2 = demand_round(arbiter, "cohort2", 3)
    return {
        "cohort1": t1,
        "cohort2": t2,
        "datasets": len(arbiter.builder.datasets),
        "open_gaps": len(arbiter.negotiation.open_requests()),
    }


@pytest.fixture(scope="module")
def economies():
    return {
        "without actors": run_economy(False),
        "with actors": run_economy(True),
    }


def test_e13_report(economies, table, benchmark):
    rows = [
        (
            name,
            int(e["cohort1"]),
            int(e["cohort2"]),
            int(e["datasets"]),
            int(e["open_gaps"]),
        )
        for name, e in economies.items()
    ]
    table(
        ["economy", "cohort-1 sales", "cohort-2 sales", "datasets listed",
         "open demand gaps"],
        rows,
        title="E13: arbitrageurs + opportunistic sellers expand the market",
    )
    benchmark(run_economy, False)


def test_e13_first_cohort_always_unserved(economies):
    for e in economies.values():
        assert e["cohort1"] == 0  # attribute y does not exist yet


def test_e13_actors_unlock_second_cohort(economies):
    assert economies["without actors"]["cohort2"] == 0
    assert economies["with actors"]["cohort2"] >= 1


def test_e13_actors_grow_the_catalog_and_close_gaps(economies):
    without = economies["without actors"]
    with_a = economies["with actors"]
    assert with_a["datasets"] > without["datasets"]
    assert with_a["open_gaps"] < without["open_gaps"]
