"""Shared helpers for the benchmark harness.

Every benchmark file reproduces one experiment from DESIGN.md's
per-experiment index (the paper is a vision paper: Section 6 defines an
evaluation *plan*; these harnesses execute it).  Benchmarks both

* print the table/series a full paper would report (via the ``emit``
  fixture, which bypasses pytest's capture so rows land in the console and
  in ``bench_output.txt``), and
* time their core operation with pytest-benchmark.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

#: experiment -> metric fields accumulated by the ``bench_json`` fixture
_BENCH_METRICS: dict[str, dict] = {}


def pytest_addoption(parser):
    parser.addoption(
        "--smoke",
        action="store_true",
        default=False,
        help=(
            "fast mode: shrink benchmark workloads to smoke-test the "
            "perf path (CI runs E3/E19 this way) and skip pytest-benchmark "
            "timing rounds"
        ),
    )


def pytest_configure(config):
    if config.getoption("--smoke"):
        # one pass through each benchmarked callable is enough to catch
        # perf-path breakage; calibrated timing rounds are for real runs
        config.option.benchmark_disable = True


@pytest.fixture(scope="session")
def smoke(request) -> bool:
    """True in ``--smoke`` mode; benchmarks use it to shrink workloads."""
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def bench_json(request):
    """Record machine-readable benchmark metrics.

    ``bench_json("E23", speedup=7.2, outputs_identical=True)`` merges the
    fields into the experiment's record; when the session ends each
    experiment is written to ``BENCH_<EXP>.json`` in the working
    directory.  CI uploads these as artifacts, so headline speedups and
    equality checks are tracked run-over-run instead of scrolling away in
    the console log.  Every record carries ``smoke`` so shrunken-workload
    numbers (noisy, below timing-stable sizes) are never compared against
    full-run numbers."""
    is_smoke = bool(request.config.getoption("--smoke"))

    def _record(experiment: str, **fields) -> None:
        record = _BENCH_METRICS.setdefault(
            experiment.upper(), {"smoke": is_smoke}
        )
        record.update(fields)

    yield _record
    for experiment, payload in sorted(_BENCH_METRICS.items()):
        Path(f"BENCH_{experiment}.json").write_text(
            json.dumps(
                {"experiment": experiment, **payload},
                indent=2,
                sort_keys=True,
                default=str,
            )
            + "\n"
        )


@pytest.fixture
def emit(capsys):
    """Print straight to the terminal, bypassing pytest capture."""

    def _emit(text: str = "") -> None:
        with capsys.disabled():
            print(text)

    return _emit


@pytest.fixture
def table(emit):
    """Emit a fixed-width table: table(header_row, data_rows)."""

    def _table(header: list[str], rows: list[tuple], title: str = "") -> None:
        rendered = [[str(c) for c in row] for row in rows]
        widths = [
            max(len(header[i]), *(len(r[i]) for r in rendered))
            if rendered
            else len(header[i])
            for i in range(len(header))
        ]
        if title:
            emit(f"\n== {title} ==")
        emit(" | ".join(h.ljust(w) for h, w in zip(header, widths)))
        emit("-+-".join("-" * w for w in widths))
        for row in rendered:
            emit(" | ".join(c.ljust(w) for c, w in zip(row, widths)))

    return _table
