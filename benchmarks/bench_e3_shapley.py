"""E3 — Efficiency of revenue-allocation algorithms (§6.1, §3.2.3).

The paper plans empirical evaluations of mechanism algorithms and is
explicitly "investigating alternative approaches that are more
computationally efficient [than the Shapley value]".  We compare:

* exact Shapley (2^n coalition evaluations),
* permutation Monte Carlo,
* truncated Monte Carlo (Ghorbani & Zou),
* leave-one-out,
* KNN-Shapley (Jia et al.: exact in O(n log n) per test point).

Expected shape: exact blows up exponentially in player count; MC costs a
constant number of evaluations with small error; TMC cuts evaluations
further; LOO is cheapest but misses synergies; KNN-Shapley values
thousands of *rows* exactly in the time generic estimators value ten
datasets.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.valuation import (
    CoalitionGame,
    exact_shapley,
    knn_shapley,
    knn_utility,
    leave_one_out,
    monte_carlo_shapley,
    shapley_error,
    truncated_monte_carlo_shapley,
)


def capped_game(n: int, seed: int = 0) -> CoalitionGame:
    rng = np.random.default_rng(seed)
    weights = {f"p{i}": float(rng.uniform(0.2, 1.0)) for i in range(n)}
    cap = 0.6 * sum(weights.values())
    return CoalitionGame.of(
        list(weights), lambda s: min(sum(weights[p] for p in s), cap)
    )


@pytest.fixture(scope="module")
def sweep():
    rows = []
    exact_cache = {}
    for n in (4, 6, 8, 10):
        game = capped_game(n)
        t0 = time.perf_counter()
        exact = exact_shapley(game)
        t_exact = time.perf_counter() - t0
        exact_cache[n] = exact
        evals_exact = game.evaluations

        for label, runner in (
            ("mc-100", lambda g: monte_carlo_shapley(g, 100, seed=1)),
            ("tmc-100", lambda g: truncated_monte_carlo_shapley(
                g, 100, truncation_tolerance=0.02, seed=1)),
            ("loo", leave_one_out),
        ):
            g = capped_game(n)
            t0 = time.perf_counter()
            estimate = runner(g)
            elapsed = time.perf_counter() - t0
            rows.append(
                (
                    n,
                    label,
                    g.evaluations,
                    round(elapsed * 1000, 2),
                    round(shapley_error(estimate, exact), 4),
                )
            )
        rows.append((n, "exact", evals_exact, round(t_exact * 1000, 2), 0.0))
    return rows


def test_e3_report(sweep, table, benchmark, bench_json):
    benchmark(exact_shapley, capped_game(8))
    table(
        ["players", "estimator", "evaluations", "time (ms)", "MAE vs exact"],
        sorted(sweep),
        title="E3: Shapley estimators — cost vs error",
    )
    largest = max(n for n, *_ in sweep)
    evals = {
        label: e for n, label, e, _t, _err in sweep if n == largest
    }
    errors = {
        label: err for n, label, err in (
            (n, label, err) for n, label, _e, _t, err in sweep
        ) if n == largest and label != "exact"
    }
    bench_json(
        "E3",
        players=largest,
        evaluations=evals,
        mae_vs_exact=errors,
        eval_saving_mc_vs_exact=round(
            evals["exact"] / max(evals.get("mc-100", 1), 1), 1
        ),
    )


def test_e3_exact_cost_is_exponential(sweep):
    evals = {n: e for n, label, e, _t, _err in sweep if label == "exact"}
    # subset enumeration: ~2^n distinct coalitions evaluated
    assert evals[10] > 3.5 * evals[8] > 10 * evals[4]


def test_e3_mc_error_small_and_cheaper_than_exact(sweep):
    mc = {n: (e, err) for n, label, e, _t, err in sweep if label == "mc-100"}
    exact = {n: e for n, label, e, _t, _err in sweep if label == "exact"}
    for n, (_evaluations, error) in mc.items():
        assert error < 0.1
    # at 10 players MC already evaluates fewer distinct coalitions than
    # exact enumeration, and the gap widens exponentially beyond
    assert mc[10][0] < exact[10]


def test_e3_truncation_saves_evaluations(sweep):
    mc = {n: e for n, label, e, _t, _err in sweep if label == "mc-100"}
    tmc = {n: e for n, label, e, _t, _err in sweep if label == "tmc-100"}
    assert tmc[10] < mc[10]


def test_e3_loo_cheapest_but_biased(sweep):
    loo = {n: (e, err) for n, label, e, _t, err in sweep if label == "loo"}
    mc = {n: (e, err) for n, label, e, _t, err in sweep if label == "mc-100"}
    for n in loo:
        assert loo[n][0] < mc[n][0]  # far fewer evaluations
    # the capped game is pure synergy at the cap: LOO misallocates
    assert loo[10][1] > mc[10][1]


@pytest.fixture(scope="module")
def knn_world():
    rng = np.random.default_rng(3)
    x = rng.normal(0, 1, size=(1000, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    return x, y


def test_e3_knn_shapley_scales_to_thousands(knn_world, table, benchmark,
                                            smoke):
    x, y = knn_world
    x_test, y_test = x[:20], y[:20]
    rows = []
    for n in (100, 300) if smoke else (100, 300, 1000):
        t0 = time.perf_counter()
        values = knn_shapley(x[:n], y[:n], x_test, y_test, k=5)
        elapsed = time.perf_counter() - t0
        total = knn_utility(x[:n], y[:n], x_test, y_test, k=5)
        rows.append(
            (n, round(elapsed * 1000, 1),
             round(abs(values.sum() - total), 9))
        )
    table(
        ["training rows", "time (ms)", "|sum(values) - utility|"],
        rows,
        title="E3b: exact KNN-Shapley over individual rows",
    )
    for _n, _t, gap in rows:
        assert gap < 1e-6  # efficiency axiom holds exactly
    benchmark(knn_shapley, x[:300], y[:300], x_test, y_test, 5)
