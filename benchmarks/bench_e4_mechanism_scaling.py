"""E4 — Mechanism-clearing throughput vs market size (§6.1 Efficiency).

"Market mechanisms are implemented with an algorithm...  We want to
contribute empirical evaluations of these designs."  We time one clearing
of each allocation+payment rule as the number of bidders grows.  Expected
shape: all four rules clear thousands of bidders in milliseconds and scale
near-linearly (sort-dominated) — the 'practical' requirement of §3.1.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.mechanisms import (
    Bid,
    GSPAuction,
    PostedPriceMechanism,
    RSOPAuction,
    VickreyAuction,
)

MECHANISMS = [
    VickreyAuction(k=5),
    GSPAuction(slot_weights=(1.0, 0.8, 0.6, 0.4, 0.2)),
    PostedPriceMechanism(price=50.0),
    RSOPAuction(seed=0),
]
SIZES = (100, 1000, 5000, 20000)


def make_bids(n: int, seed: int = 0) -> list[Bid]:
    rng = np.random.default_rng(seed)
    return [Bid(f"b{i}", float(v)) for i, v in enumerate(rng.uniform(0, 100, n))]


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for mechanism in MECHANISMS:
        for n in SIZES:
            bids = make_bids(n)
            t0 = time.perf_counter()
            outcome = mechanism.run(bids)
            elapsed = time.perf_counter() - t0
            rows.append(
                (
                    mechanism.name,
                    n,
                    round(elapsed * 1000, 2),
                    len(outcome.winners),
                    round(outcome.revenue, 1),
                )
            )
    return rows


def test_e4_report(sweep, table, benchmark):
    benchmark(VickreyAuction(k=5).run, make_bids(1000))
    table(
        ["mechanism", "bidders", "clear time (ms)", "winners", "revenue"],
        sweep,
        title="E4: mechanism clearing throughput",
    )


def test_e4_all_mechanisms_clear_20k_fast(sweep):
    for mech, n, ms, _w, _r in sweep:
        if n == 20000:
            assert ms < 2000, (mech, ms)


def test_e4_scaling_is_subquadratic(sweep):
    by_mech: dict[str, dict[int, float]] = {}
    for mech, n, ms, _w, _r in sweep:
        by_mech.setdefault(mech, {})[n] = ms
    for mech, times in by_mech.items():
        # 200x more bidders must cost well under 200^2 = 40000x the time
        ratio = max(times[20000], 0.01) / max(times[100], 0.01)
        assert ratio < 4000, (mech, ratio)


def test_e4_posted_price_serves_half_of_uniform(sweep):
    served = {n: w for mech, n, _ms, w, _r in sweep if mech == "posted"}
    for n, winners in served.items():
        assert winners == pytest.approx(n / 2, rel=0.15)
