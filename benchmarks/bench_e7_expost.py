"""E7 — Truthfulness of the ex-post mechanism (§3.2.2.2).

"Buyers get the data they want before they pay any money for it...  The
crucial aspect of the mechanisms we are designing is that they make
reporting the real value the buyer's preferred strategy."

We sweep the (audit probability q, penalty multiplier m) grid and, for each
configuration, grid-search the buyer's optimal report and measure the
expected-utility gap between truthful and optimal play.  Expected shape:
truthful reporting is optimal exactly on the q·m >= 1 region; below it the
optimal report collapses to zero.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mechanisms import ExPostMechanism, ExPostReport

GRID_Q = (0.05, 0.1, 0.2, 0.3, 0.5, 1.0)
GRID_M = (0.5, 1.0, 2.0, 4.0, 10.0)
TRUE_VALUE = 100.0


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for q in GRID_Q:
        for m in GRID_M:
            mech = ExPostMechanism(
                payment_share=0.5, audit_probability=q, penalty_multiplier=m
            )
            best = mech.best_report(TRUE_VALUE)
            u_best = mech.expected_utility(TRUE_VALUE, best)
            u_truth = mech.expected_utility(TRUE_VALUE, TRUE_VALUE)
            rows.append(
                (
                    q,
                    m,
                    round(q * m, 2),
                    mech.is_truthful_config(),
                    round(best, 1),
                    round(u_best - u_truth, 3),
                )
            )
    return rows


def test_e7_report(sweep, table, benchmark):
    table(
        ["audit q", "penalty m", "q*m", "predicted truthful",
         "optimal report", "gain from lying"],
        sweep,
        title=f"E7: ex-post reporting incentives (true value {TRUE_VALUE:g})",
    )
    mech = ExPostMechanism()
    rng = np.random.default_rng(0)
    reports = [ExPostReport(f"b{i}", 50.0, 60.0) for i in range(100)]
    benchmark(mech.settle, reports, rng)


def test_e7_qm_condition_predicts_truthfulness(sweep):
    for q, m, qm, predicted, best, gain in sweep:
        if qm == pytest.approx(1.0):
            # exact boundary: the buyer is indifferent between all reports
            assert predicted and gain <= 1e-9
        elif qm > 1.0:
            assert predicted
            assert best == pytest.approx(TRUE_VALUE)
            assert gain <= 1e-9
        else:
            assert not predicted
            # under-auditing: lying strictly gains, optimal report is 0
            assert best == pytest.approx(0.0)
            assert gain > 0


def test_e7_empirical_settlement_matches_expectation():
    """Monte-Carlo settlement reproduces the closed-form expected utility."""
    mech = ExPostMechanism(
        payment_share=0.5, audit_probability=0.3, penalty_multiplier=4.0
    )
    rng = np.random.default_rng(1)
    n = 4000
    reported = 40.0
    charges = mech.settle(
        [ExPostReport(f"b{i}", reported, TRUE_VALUE) for i in range(n)], rng
    )
    mean_utility = float(
        np.mean([TRUE_VALUE - c.total for c in charges])
    )
    assert mean_utility == pytest.approx(
        mech.expected_utility(TRUE_VALUE, reported), abs=1.5
    )


def test_e7_overreporting_never_helps():
    mech = ExPostMechanism(
        payment_share=0.5, audit_probability=0.3, penalty_multiplier=4.0
    )
    rng = np.random.default_rng(2)
    over = mech.settle([ExPostReport("b", 150.0, TRUE_VALUE)] * 200, rng)
    truthful = mech.settle([ExPostReport("b", TRUE_VALUE, TRUE_VALUE)] * 200,
                           rng)
    assert np.mean([c.total for c in over]) > np.mean(
        [c.total for c in truthful]
    )
