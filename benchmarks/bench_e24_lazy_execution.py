"""E24 — Lazy relation algebra: pipelined columnar vs eager execution.

The PR 6 API redesign makes the mashup pipeline lazy: plans assemble an
immutable expression tree and nothing touches the rows until the tree is
collected on an engine.  The **iteration engine** executes the tree with
the eager operators node-for-node — exactly the old ``MashupPlan.execute``
behavior, materializing every intermediate (an N-way join builds N-1 full
wide relations, then the final projection throws most of their columns
away).  The **columnar engine** pushes selections toward the leaves and
carries joins as per-leaf row-index arrays, assembling only the projected
output columns at the end — intermediates are never materialized.

Harness: a star-shaped 5-way mashup join (one fact table, four payload
dimensions on a shared entity key) projecting 6 of the ~40 joined columns,
exactly the plan shape the DoD planner emits.  Both engines run the same
tree; outputs must be **bit-identical** (rows, order, schema, name,
provenance).  Peak traced allocation and wall time are measured in
separate passes (tracemalloc skews timing).

Gate (full mode): pipelined columnar execution takes ≥2x less peak
transient memory OR ≥1.5x less wall time than the eager oracle.  Smoke
mode shrinks the corpus below timing-stable sizes and only keeps the
bit-identity assertions.
"""

from __future__ import annotations

import time
import tracemalloc

import numpy as np
import pytest

from repro.mashup import JoinStep, MashupPlan
from repro.relation import Column, ColumnarEngine, IterationEngine, Relation

N_DATASETS = 5
N_PAYLOAD = 8  # per-dataset value columns; the 5-way join carries ~40


# ---------------------------------------------------------------------------
# corpus + plan
# ---------------------------------------------------------------------------

def build_world(n_rows: int):
    """Five joinable datasets over one entity domain + the star plan."""
    rng = np.random.default_rng(24)
    datasets = {}
    for i in range(N_DATASETS):
        name = f"ds_{i}"
        cols = [Column("entity_id", "int", "entity")]
        cols += [Column(f"{name}_v{j}", "float") for j in range(N_PAYLOAD)]
        rows = [
            (k, *(float(v) for v in rng.normal(size=N_PAYLOAD)))
            for k in range(n_rows)
        ]
        datasets[name] = Relation(name, cols, rows)
    plan = MashupPlan(
        base="ds_0",
        joins=[
            JoinStep(f"ds_{i}", "ds_0__entity_id", f"ds_{i}__entity_id")
            for i in range(1, N_DATASETS)
        ],
        output={
            "entity_id": "ds_0__entity_id",
            **{f"sig_{i}": f"ds_{i}__{'ds_%d' % i}_v0"
               for i in range(N_DATASETS)},
        },
    )
    return datasets, plan


def prewarm(datasets):
    """Build the memoized per-column views outside the measured region:
    inputs are resident in both systems; the bench measures
    execution-transient memory."""
    for rel in datasets.values():
        for name in rel.columns:
            rel.columnar.values(name)


def measure(engine, plan, resolver):
    """(relation, wall_seconds, peak_bytes) for one engine, fresh trees
    per pass so no batch/payload caching leaks across measurements."""
    t0 = time.perf_counter()
    relation = engine.execute(plan.build_tree(resolver))
    wall = time.perf_counter() - t0

    tracemalloc.start()
    traced = engine.execute(plan.build_tree(resolver))
    _current, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    assert traced.rows == relation.rows
    return relation, wall, peak


@pytest.fixture(scope="module")
def lazy_vs_eager(request):
    smoke = request.config.getoption("--smoke")
    n_rows = 1_500 if smoke else 20_000
    datasets, plan = build_world(n_rows)
    resolver = datasets.__getitem__
    prewarm(datasets)

    eager, eager_s, eager_peak = measure(
        IterationEngine(), plan, resolver
    )
    lazy, lazy_s, lazy_peak = measure(ColumnarEngine(), plan, resolver)

    # the whole point: engine choice must not be observable in the output
    assert lazy.rows == eager.rows
    assert lazy.schema == eager.schema
    assert lazy.name == eager.name
    assert lazy.provenance == eager.provenance
    assert len(lazy) == n_rows

    return {
        "rows": n_rows,
        "joined_columns": 1 + N_DATASETS * N_PAYLOAD,
        "output_columns": len(eager.columns),
        "eager_s": eager_s,
        "lazy_s": lazy_s,
        "eager_peak_mb": eager_peak / 2**20,
        "lazy_peak_mb": lazy_peak / 2**20,
        "time_ratio": eager_s / lazy_s,
        "mem_ratio": eager_peak / lazy_peak,
    }


# ---------------------------------------------------------------------------
# report + gates
# ---------------------------------------------------------------------------

def test_e24_report(lazy_vs_eager, table, bench_json, smoke):
    r = lazy_vs_eager
    table(
        ["mode", "wall (s)", "peak alloc (MB)"],
        [
            ("eager iteration", f"{r['eager_s']:.3f}",
             f"{r['eager_peak_mb']:.1f}"),
            ("pipelined columnar", f"{r['lazy_s']:.3f}",
             f"{r['lazy_peak_mb']:.1f}"),
            ("ratio", f"{r['time_ratio']:.2f}x", f"{r['mem_ratio']:.2f}x"),
        ],
        title=(
            f"E24: 5-way mashup join, {r['rows']} rows × "
            f"{r['joined_columns']} joined columns → "
            f"{r['output_columns']} projected (bit-identical outputs)"
        ),
    )
    bench_json(
        "E24",
        rows=r["rows"],
        joined_columns=r["joined_columns"],
        output_columns=r["output_columns"],
        eager_wall_s=round(r["eager_s"], 4),
        lazy_wall_s=round(r["lazy_s"], 4),
        eager_peak_mb=round(r["eager_peak_mb"], 2),
        lazy_peak_mb=round(r["lazy_peak_mb"], 2),
        time_ratio=round(r["time_ratio"], 2),
        mem_ratio=round(r["mem_ratio"], 2),
        outputs_identical=True,
    )


def test_e24_lazy_beats_eager(lazy_vs_eager, smoke):
    """Acceptance gate: ≥2x lower peak transient memory OR ≥1.5x lower
    wall time.  Smoke sizes are below timing-stable territory, but since
    the factorize join kernel landed the columnar engine wins even there
    — the smoke gate pins that down (it used to *lose* at smoke sizes,
    the old row-loop hash join being all Python overhead)."""
    r = lazy_vs_eager
    if smoke:
        assert r["time_ratio"] >= 1.0 or r["mem_ratio"] >= 1.5, (
            f"pipelined columnar regressed at smoke size: "
            f"{r['time_ratio']:.2f}x time, {r['mem_ratio']:.2f}x memory"
        )
        return
    assert r["mem_ratio"] >= 2.0 or r["time_ratio"] >= 1.5, (
        f"pipelined columnar gained only {r['mem_ratio']:.2f}x memory / "
        f"{r['time_ratio']:.2f}x time over eager execution"
    )
