"""F1 — Fig. 1: design toolbox -> simulator -> refine -> DMMS deploy.

Fig. 1 is an architecture diagram, so the reproduction is a working walk
of its four boxes: (1) a market definition enters the design toolbox, (2)
the toolbox emits candidate rule sets, (3) the simulator stress-tests them
and rejects the manipulable candidate, (4) the surviving design deploys on
the DMMS and clears a real data transaction.
"""

from __future__ import annotations

import pytest

from repro.datagen import make_classification_world
from repro.market import Arbiter, BuyerPlatform, MarketDesign, SellerPlatform
from repro.mechanisms import GSPAuction, VickreyAuction
from repro.simulator import Shading, empirical_ic_regret, uniform_values


@pytest.fixture(scope="module")
def pipeline():
    # (1)+(2) candidate designs out of the toolbox
    candidates = [GSPAuction(slot_weights=(1.0, 0.8)), VickreyAuction(k=1)]
    # (3) simulate: measure manipulability before deployment
    sampler = uniform_values(0, 100)
    regrets = {
        mech.name: empirical_ic_regret(
            mech, Shading(0.6), sampler, n_rivals=2, n_trials=400, seed=1
        )
        for mech in candidates
    }
    survivors = [m for m in candidates if regrets[m.name] <= 1e-9]
    design = MarketDesign(
        name="f1-deployed",
        goal="revenue",
        incentive="money",
        elicitation="upfront",
        mechanism=survivors[0],
        revenue_sharing="provenance",
        arbiter_commission=0.1,
    )
    design.validate()
    # (4) deploy on the DMMS
    world = make_classification_world(
        n_entities=250, feature_weights=(2.0, 1.5, 2.5),
        dataset_features=((0, 1), (2,)), seed=9,
    )
    arbiter = Arbiter(design)
    for i, dataset in enumerate(world.datasets):
        seller = SellerPlatform(f"s{i}")
        seller.package(dataset)
        seller.share_all(arbiter)
    for i, price in enumerate((100.0, 70.0)):
        buyer = BuyerPlatform(f"b{i}")
        arbiter.register_participant(f"b{i}", funding=300.0)
        buyer.submit(arbiter, buyer.classification_wtp(
            labels=world.label_relation,
            features=["f0", "f1", "f2"],
            price_steps=[(0.75, price)],
        ))
    result = arbiter.run_round()
    return regrets, design, arbiter, result


def test_f1_report(pipeline, table, benchmark):
    regrets, design, arbiter, result = pipeline
    table(
        ["candidate mechanism", "IC regret (shading)", "verdict"],
        [
            (name, round(regret, 3),
             "deploy" if regret <= 1e-9 else "reject")
            for name, regret in regrets.items()
        ],
        title="F1: simulator gate before deployment",
    )
    table(
        ["deployed design", "transactions", "revenue", "audit ok"],
        [(design.summary(), result.transactions,
          round(result.revenue, 2), arbiter.audit.verify())],
        title="F1: deployment outcome",
    )
    sampler = uniform_values(0, 100)
    benchmark(
        empirical_ic_regret,
        VickreyAuction(k=1), Shading(0.6), sampler, 2, 100, 0,
    )


def test_f1_simulator_rejects_gsp_keeps_vickrey(pipeline):
    regrets, design, _arbiter, _result = pipeline
    assert regrets["gsp"] > 0
    assert regrets["vickrey"] <= 1e-9
    assert design.mechanism.name == "vickrey"


def test_f1_deployed_market_clears(pipeline):
    _regrets, _design, arbiter, result = pipeline
    assert result.transactions == 1  # single-unit Vickrey: one winner
    # second-price: the winner paid the loser's bid
    assert result.deliveries[0].price_paid == pytest.approx(70.0)
    assert arbiter.ledger.conservation_check()
