"""E19 — Vectorized valuation engine vs. the scalar reference (§3.2.3).

The paper flags Shapley-based revenue allocation as the platform's
computational bottleneck ("we are investigating alternative approaches that
are more computationally efficient").  E3 compared *estimators*; this
benchmark compares *execution engines* for the same estimator: the batched
path (permutations as NumPy index matrices, marginals through
``CoalitionGame.value_batch`` against a vectorized characteristic function)
against the original scalar permutation loop, on E3-style capped-additive
games.

Expected shape: identical allocations (same seed, same permutations —
differences are floating-point accumulation order only, far below 1e-6) at
a ≥5x wall-clock advantage for the batched engine at n >= 100 players, and
the KNN-Shapley closed form showing the same gap between the full
distance-matrix path and the per-test-point loop.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.valuation import (
    knn_shapley,
    monte_carlo_shapley,
    truncated_monte_carlo_shapley,
)
from repro.valuation.workloads import capped_additive_game as capped_game


def best_of(runs: int, fn, *args, **kwargs):
    """(best wall-clock seconds, last result) over ``runs`` repetitions."""
    best = float("inf")
    result = None
    for _ in range(runs):
        t0 = time.perf_counter()
        result = fn(*args, **kwargs)
        best = min(best, time.perf_counter() - t0)
    return best, result


def max_allocation_diff(a: dict[str, float], b: dict[str, float]) -> float:
    return max(abs(a[p] - b[p]) for p in a)


@pytest.fixture(scope="module")
def mc_sweep(smoke):
    sizes = (10, 25) if smoke else (25, 50, 100)
    n_permutations = 25 if smoke else 200
    repeats = 1 if smoke else 3
    rows = []
    for n in sizes:
        t_scalar, scalar = best_of(
            repeats,
            lambda n=n: monte_carlo_shapley(
                capped_game(n), n_permutations, seed=1, batched=False
            ),
        )
        t_batched, batched = best_of(
            repeats,
            lambda n=n: monte_carlo_shapley(
                capped_game(n), n_permutations, seed=1
            ),
        )
        rows.append(
            (
                n,
                n_permutations,
                round(t_scalar * 1000, 2),
                round(t_batched * 1000, 2),
                round(t_scalar / t_batched, 1),
                max_allocation_diff(batched, scalar),
            )
        )
    return rows


def test_e19_report(mc_sweep, table, benchmark, bench_json):
    benchmark(monte_carlo_shapley, capped_game(50), 50, seed=1)
    table(
        ["players", "perms", "scalar (ms)", "batched (ms)", "speedup",
         "max |diff|"],
        [(n, m, ts, tb, f"{s}x", f"{d:.2e}")
         for n, m, ts, tb, s, d in mc_sweep],
        title="E19: Monte Carlo Shapley — scalar loop vs vectorized engine",
    )
    bench_json(
        "E19",
        mc_shapley={
            n: {"scalar_ms": ts, "batched_ms": tb, "speedup": s}
            for n, _m, ts, tb, s, _d in mc_sweep
        },
        allocations_match_to_1e6=all(d < 1e-6 for *_x, d in mc_sweep),
    )


def test_e19_batched_matches_scalar_to_1e6(mc_sweep):
    for _n, _m, _ts, _tb, _speedup, diff in mc_sweep:
        assert diff < 1e-6  # same seed -> same permutations -> same result


def test_e19_speedup_at_100_players(mc_sweep, smoke):
    if smoke:
        pytest.skip("timing assertion is for full benchmark runs")
    by_n = {row[0]: row[4] for row in mc_sweep}
    assert by_n[100] >= 5.0, (
        f"batched MC Shapley at n=100 is only {by_n[100]}x faster"
    )


def test_e19_truncated_mc_matches_and_speeds_up(smoke, table):
    n = 25 if smoke else 100
    n_permutations = 25 if smoke else 200
    repeats = 1 if smoke else 3
    t_scalar, scalar = best_of(
        repeats,
        lambda: truncated_monte_carlo_shapley(
            capped_game(n), n_permutations, truncation_tolerance=0.02,
            seed=1, batched=False,
        ),
    )
    t_batched, batched = best_of(
        repeats,
        lambda: truncated_monte_carlo_shapley(
            capped_game(n), n_permutations, truncation_tolerance=0.02,
            seed=1,
        ),
    )
    assert max_allocation_diff(batched, scalar) < 1e-6
    table(
        ["players", "perms", "scalar (ms)", "batched (ms)", "speedup"],
        [(n, n_permutations, round(t_scalar * 1000, 2),
          round(t_batched * 1000, 2),
          f"{t_scalar / t_batched:.1f}x")],
        title="E19b: truncated MC — truncation semantics preserved, "
        "columns batched",
    )
    if not smoke:
        assert t_scalar / t_batched > 2.0


def test_e19_knn_full_distance_matrix(smoke, table):
    rng = np.random.default_rng(3)
    n = 300 if smoke else 2000
    n_test = 10 if smoke else 50
    x = rng.normal(0, 1, size=(n, 4))
    y = (x[:, 0] + x[:, 1] > 0).astype(int)
    x_test, y_test = x[:n_test], y[:n_test]
    repeats = 1 if smoke else 3
    t_scalar, scalar = best_of(
        repeats, knn_shapley, x, y, x_test, y_test, 5, False
    )
    t_batched, batched = best_of(
        repeats, knn_shapley, x, y, x_test, y_test, 5
    )
    assert np.abs(batched - scalar).max() < 1e-9
    table(
        ["train rows", "test rows", "scalar (ms)", "batched (ms)",
         "speedup"],
        [(n, n_test, round(t_scalar * 1000, 1),
          round(t_batched * 1000, 1),
          f"{t_scalar / t_batched:.1f}x")],
        title="E19c: KNN-Shapley — per-point loop vs full distance matrix",
    )
    if not smoke:
        assert t_scalar / t_batched > 2.0
