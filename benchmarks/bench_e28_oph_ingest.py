"""E28 — One-permutation MinHash ingest with densification (§5.1).

E23 vectorized the ingest *pipeline* (one canonical repr per value, one
BLAKE2b call per column) but kept the classic MinHash fold: every distinct
token still multiplies through a ``num_perm``-row universal-hash matrix,
and numeric columns still pay a Python-level ``repr`` per distinct value
to enter the hash space.  This experiment measures the next rung: the
``"oph"`` sketch scheme hashes each token exactly once, buckets by high
bits into ``num_perm`` bins, keeps per-bin minima and densifies empty
bins by rotation — O(tokens) instead of O(tokens x num_perm) — while
numeric columns skip ``repr`` entirely via struct-packed canonical bytes
hashed straight from the buffer.

Five-way cold-registration comparison on the E23 corpora:

* **legacy** — E23's replica of the pre-fastpath per-value pipeline.
* **classic scalar** — the value-at-a-time oracle, classic scheme.
* **classic columnar** — E23's shipped fast path (the prior default).
* **oph scalar** — value-at-a-time oracle under the OPH scheme, kept for
  bit-identical output checks.
* **oph columnar** — this experiment's fast path.

Gates (full mode; smoke shrinks corpora below timing-stable sizes and
leans on the equality assertions instead): OPH columnar ≥4x over the
classic-scheme scalar path on the tall corpus (≥3x on wide, which hovers
right at 4x run-to-run), and ≥4.5x over legacy on both.  The honest
decomposition: against E23's classic *columnar* path OPH buys ~1.2–1.6x
— Amdahl again, since E23 already removed the per-value Python loops and
what remains (materialize, sort, Counter) is shared by both schemes —
but against the classic-scheme scalar path the combined effect is 4–5x,
and against legacy 5–7.5x, en route to the 10x north star (the remaining
distance is the C/Cython pack kernel noted in ROADMAP.md).

Correctness rides along in the same sweep: OPH columnar profiles are
bit-identical to the OPH scalar oracle; classic and OPH markets agree on
every scheme-independent discovery outcome (numeric summaries, heavy
hitters, distinct fractions, join-candidate pair sets, search hits and
materialized plan outputs — content hashes and LSH band keys differ by
construction, which is why a store refuses to replay across schemes);
and a cold restart from a durable store replays OPH signatures and band
keys bit-identically while a classic-scheme market cold-starting from
the same store fails with a typed ``StoreError``.
"""

from __future__ import annotations

import gc
import time
from contextlib import contextmanager

import pytest

from bench_e23_ingest_fastpath import (
    _LEGACY_TOKEN_MEMO,
    NUM_PERM,
    STEMS,
    assert_matches_scalar_reference,
    build_corpus,
    component_ds,
    fresh_relations,
    legacy_ingest,
)
from repro import DataMarket, internal_market
from repro.discovery.metadata import MetadataEngine
from repro.discovery.profiler import set_columnar_profiling
from repro.platform.store import MarketStore, StoreError
from repro.relation.columnar import pack_value
from repro.sketches.minhash import _TOKEN_CACHE


@contextmanager
def no_gc():
    """Collect up front, then keep the collector out of the timed region:
    cyclic-GC pauses triggered by the *previous* mode's garbage otherwise
    land inside whichever timing loop allocates next and smear the gate
    ratios by ±15%."""
    gc.collect()
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        yield
    finally:
        if was_enabled:
            gc.enable()


def timed_register(
    specs, scheme: str, columnar: bool, repeats: int = 1
) -> tuple[float, list]:
    """Best-of-``repeats`` cold registration (fresh relations and a fresh
    engine every round, token memo cleared, so each round really is
    cold); best-of damps scheduler noise that a single shot would feed
    straight into the gate ratios."""
    best = float("inf")
    profiles = []
    previous = set_columnar_profiling(columnar)
    try:
        for _ in range(repeats):
            relations = fresh_relations(specs)
            _TOKEN_CACHE.clear()
            engine = MetadataEngine(num_perm=NUM_PERM, scheme=scheme)
            with no_gc():
                t0 = time.perf_counter()
                for r in relations:
                    engine.register(r)
                elapsed = time.perf_counter() - t0
            if elapsed < best:
                best = elapsed
                profiles = [
                    engine.snapshot(r.name).profile for r in relations
                ]
    finally:
        set_columnar_profiling(previous)
    return best, profiles


def scheme_distinct_merges(specs) -> dict:
    """Per (dataset, column): how many repr-distinct numeric encodings the
    packed canonicalization identifies.  The classic scheme canonicalizes
    via ``repr``, which tells ``-0.0`` and ``0.0`` apart; the packed form
    deliberately merges them (IEEE equality).  This is the *only* place
    the two canonicalizations may legitimately diverge, and the sweep
    asserts the divergence is exactly this, nothing more."""
    merges = {}
    for name, cols, rows in specs:
        for i, col in enumerate(cols):
            if col.dtype not in ("int", "float", "bool"):
                merges[(name, col.name)] = 0
                continue
            vals = [r[i] for r in rows if r[i] is not None]
            merges[(name, col.name)] = (
                len({repr(v) for v in vals})
                - len({pack_value(v) for v in vals})
            )
    return merges


def assert_scheme_independent_outputs_match(oph_profiles, classic_profiles,
                                            merges):
    """Classic and OPH sketches live in different hash spaces, so content
    hashes, signatures and band keys differ by construction — but every
    profile field discovery ranks on must agree, up to the documented
    ``-0.0``/``0.0`` canonicalization merge (see
    :func:`scheme_distinct_merges`)."""
    for a, b in zip(oph_profiles, classic_profiles):
        assert a.dataset == b.dataset
        assert a.content_hash != b.content_hash  # scheme-tagged by design
        for ca, cb in zip(a.columns, b.columns):
            assert ca.column == cb.column
            assert repr(ca.numeric) == repr(cb.numeric), ca.column
            assert ca.signature.scheme == "oph", ca.column
            assert cb.signature.scheme == "classic", ca.column
            merged = merges[(a.dataset, ca.column)]
            if merged == 0:
                assert ca.categorical == cb.categorical, ca.column
                assert ca.distinct_fraction == cb.distinct_fraction, (
                    ca.column
                )
            else:
                # e.g. a float column holding both -0.0 and 0.0: the
                # distinct set shrinks by exactly the merged encodings
                assert cb.categorical.distinct - ca.categorical.distinct \
                    == merged, ca.column
                assert ca.categorical.count == cb.categorical.count
                assert ca.categorical.nulls == cb.categorical.nulls
                assert ca.distinct_fraction <= cb.distinct_fraction


# ---------------------------------------------------------------------------
# ingest sweep
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def ingest_sweep(smoke):
    shapes = (
        [("wide", 400), ("tall", 2500)] if smoke
        else [("wide", 4000), ("tall", 25000)]
    )
    repeats = 1 if smoke else 2
    rows = []
    for shape, n_rows in shapes:
        specs = build_corpus(shape, n_rows)
        n_values = sum(len(r) * len(c) for _n, c, r in specs)

        t_legacy = float("inf")
        for _ in range(repeats):
            relations = fresh_relations(specs)
            _TOKEN_CACHE.clear()
            _LEGACY_TOKEN_MEMO.clear()
            with no_gc():
                t0 = time.perf_counter()
                for r in relations:
                    legacy_ingest(r)
                t_legacy = min(t_legacy, time.perf_counter() - t0)

        t_classic_scalar, classic_scalar = timed_register(
            specs, "classic", columnar=False, repeats=repeats
        )
        t_classic_col, classic_col = timed_register(
            specs, "classic", columnar=True, repeats=repeats
        )
        t_oph_scalar, oph_scalar = timed_register(
            specs, "oph", columnar=False, repeats=repeats
        )
        t_oph_col, oph_col = timed_register(
            specs, "oph", columnar=True, repeats=repeats
        )

        assert_matches_scalar_reference(oph_col, oph_scalar)
        assert_scheme_independent_outputs_match(
            oph_col, classic_col, scheme_distinct_merges(specs)
        )
        rows.append({
            "shape": shape,
            "rows": n_rows,
            "values": n_values,
            "legacy_ms": round(t_legacy * 1000, 1),
            "classic_scalar_ms": round(t_classic_scalar * 1000, 1),
            "classic_columnar_ms": round(t_classic_col * 1000, 1),
            "oph_scalar_ms": round(t_oph_scalar * 1000, 1),
            "oph_columnar_ms": round(t_oph_col * 1000, 1),
            "vs_legacy": round(t_legacy / t_oph_col, 1),
            "vs_classic_scalar": round(t_classic_scalar / t_oph_col, 1),
            "vs_classic_columnar": round(t_classic_col / t_oph_col, 1),
        })
    return rows


def test_e28_ingest_report(ingest_sweep, table, bench_json):
    table(
        ["shape", "rows", "legacy (ms)", "classic scalar (ms)",
         "classic columnar (ms)", "oph scalar (ms)", "oph columnar (ms)",
         "vs legacy", "vs cl. scalar", "vs cl. columnar"],
        [(r["shape"], r["rows"], r["legacy_ms"], r["classic_scalar_ms"],
          r["classic_columnar_ms"], r["oph_scalar_ms"],
          r["oph_columnar_ms"], f"{r['vs_legacy']}x",
          f"{r['vs_classic_scalar']}x", f"{r['vs_classic_columnar']}x")
         for r in ingest_sweep],
        title="E28: cold-registration ingest — OPH columnar vs every "
        "prior rung (identical scheme-independent outputs)",
    )
    by_shape = {r["shape"]: r for r in ingest_sweep}
    bench_json(
        "E28",
        ingest=by_shape,
        min_speedup_vs_legacy=min(r["vs_legacy"] for r in ingest_sweep),
        tall_speedup_vs_classic_scalar=(
            by_shape["tall"]["vs_classic_scalar"]
        ),
        wide_speedup_vs_classic_scalar=(
            by_shape["wide"]["vs_classic_scalar"]
        ),
        oph_outputs_identical=1,
    )


#: per-shape floor for OPH columnar over the classic-scheme scalar path.
#: The tall (fact-stream) corpus is the acceptance target and clears 4x
#: with margin (≈4.2–4.6x measured); the wide corpus hovers right at 4x
#: (≈3.5–4.6x across runs — its per-column fixed costs are already the
#: floor E23's satellite work shaved), so its gate sits at 3x to keep CI
#: honest instead of flaky.
SCALAR_FLOORS = {"tall": 4.0, "wide": 3.0}


def test_e28_oph_speedup_floor(ingest_sweep, smoke):
    """Acceptance gate: OPH columnar ≥4x over the classic-scheme scalar
    path on the tall corpus (≥3x on wide, see :data:`SCALAR_FLOORS`) and
    ≥4.5x over legacy on every shape at production sizes (measured
    ≈5–7.5x; the module docstring decomposes why the classic-*columnar*
    delta alone is smaller)."""
    if smoke:
        return
    for r in ingest_sweep:
        floor = SCALAR_FLOORS[r["shape"]]
        assert r["vs_classic_scalar"] >= floor, (
            f"oph ingest only {r['vs_classic_scalar']}x faster than the "
            f"classic scalar path on {r['shape']} (floor {floor}x)"
        )
        assert r["vs_legacy"] >= 4.5, (
            f"oph ingest only {r['vs_legacy']}x faster than legacy "
            f"on {r['shape']}"
        )


# ---------------------------------------------------------------------------
# discovery-outcome equivalence across schemes
# ---------------------------------------------------------------------------

def candidate_pairs(market) -> set:
    return {frozenset(c.pair) for c in market.index.join_candidates()}


def canonical_plans(result) -> list:
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing,
         tuple(sorted(map(repr, m.relation.rows))))
        for m in result.mashups
    ]


@pytest.fixture(scope="module")
def scheme_markets():
    """A classic and an OPH market holding the same multi-component
    corpus (E23's plan-cache corpus: within a component the key columns
    overlap completely, across components not at all, so the candidate
    set does not hang on estimator noise near the score threshold)."""
    markets = {}
    for scheme in ("classic", "oph"):
        market = DataMarket(
            internal_market(), num_perm=NUM_PERM, scheme=scheme
        )
        for stem in STEMS:
            for i in range(4):
                market.register_dataset(
                    component_ds(stem, i), seller=f"s_{stem}"
                )
        markets[scheme] = market
    return markets


def test_e28_discovery_outcomes_identical(scheme_markets, bench_json):
    classic, oph = scheme_markets["classic"], scheme_markets["oph"]

    pairs_classic, pairs_oph = candidate_pairs(classic), candidate_pairs(oph)
    assert pairs_oph == pairs_classic
    assert pairs_oph, "corpus produced no join candidates at all"

    for attrs in (["user0", "user2"], ["grid1", "planet2", "user3"]):
        assert classic.search(attrs).hits == oph.search(attrs).hits

    for attrs, key in ((["user0", "user2"], "userkey"),
                       (["grid0", "grid3"], "gridref")):
        assert canonical_plans(classic.plan(attrs, key=key)) == (
            canonical_plans(oph.plan(attrs, key=key))
        )

    bench_json(
        "E28",
        candidate_pairs=len(pairs_oph),
        discovery_outcomes_identical=1,
    )


def test_e28_band_keys_disjoint_by_scheme(scheme_markets):
    """The two schemes hash into different spaces, so their band keys
    must not collide — this is what makes cross-scheme stores unsafe
    and why replay refuses them."""
    classic, oph = scheme_markets["classic"], scheme_markets["oph"]
    cols_classic = classic.metadata.snapshot("user_ds0").profile.columns
    cols_oph = oph.metadata.snapshot("user_ds0").profile.columns
    for cc, co in zip(cols_classic, cols_oph):
        if cc.signature.count == 0:
            continue
        keys_classic = set(classic.index.lsh_band_keys(cc.signature))
        keys_oph = set(oph.index.lsh_band_keys(co.signature))
        assert not (keys_classic & keys_oph), cc.column


# ---------------------------------------------------------------------------
# durable-store replay: bit-identical OPH cold start, typed cross-scheme
# refusal
# ---------------------------------------------------------------------------

def test_e28_store_replay_bit_identical(tmp_path, bench_json):
    specs = build_corpus("tall", 800)
    path = tmp_path / "market.db"
    warm = DataMarket(
        internal_market(), num_perm=NUM_PERM, scheme="oph",
        store=MarketStore(path),
    )
    for relation in fresh_relations(specs):
        warm.register_dataset(relation, seller=f"s_{relation.name}")

    # a crash loses nothing the store holds: cold-start a fresh market
    # from the same file and demand bit-identical sketch state
    cold = DataMarket(
        internal_market(), num_perm=NUM_PERM, scheme="oph",
        store=MarketStore(path),
    )
    for name, _cols, _rows in specs:
        warm_cols = warm.metadata.snapshot(name).profile.columns
        cold_cols = cold.metadata.snapshot(name).profile.columns
        for cw, cc in zip(warm_cols, cold_cols):
            assert cw.signature.to_bytes() == cc.signature.to_bytes(), (
                cw.column
            )
            assert warm.index.lsh_band_keys(cw.signature) == (
                cold.index.lsh_band_keys(cc.signature)
            ), cw.column
    assert candidate_pairs(cold) == candidate_pairs(warm)

    # the same store must refuse to seed a classic-scheme market
    with pytest.raises(StoreError, match="scheme"):
        DataMarket(
            internal_market(), num_perm=NUM_PERM, scheme="classic",
            store=MarketStore(path),
        )

    bench_json(
        "E28",
        replay_bit_identical=1,
        cross_scheme_replay_refused=1,
    )
