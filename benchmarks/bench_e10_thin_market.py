"""E10 — Mashups against thin markets (§8.2).

The paper positions mashup construction as "a key component to avoid thin
markets, where insufficient number of participants make trade inefficient":
if no single dataset satisfies a buyer, a market without integration
capability clears nothing.

Setup: every buyer needs features that are *split across two sellers*.  We
compare the full arbiter (mashup-enabled) against an ablated arbiter whose
builder may only offer single-dataset mashups, sweeping the number of
seller datasets.  Expected shape: the single-dataset market clears ~zero
transactions regardless of supply; the mashup market clears every buyer as
soon as the two complementary sellers are present.
"""

from __future__ import annotations

import pytest

from repro.datagen import make_classification_world
from repro.integration import MashupRequest
from repro.market import Arbiter, BuyerPlatform, internal_market
from repro.mashup import MashupBuilder


class SingleDatasetBuilder(MashupBuilder):
    """Ablation: a builder that refuses to combine datasets."""

    def build(self, request: MashupRequest):
        return [
            m for m in super().build(request)
            if len(m.plan.sources()) == 1
        ]


def run_market(n_sellers: int, single_only: bool) -> int:
    world = make_classification_world(
        n_entities=250,
        feature_weights=(2.0, 1.5, 1.0, 2.5),
        dataset_features=tuple(
            (0, 1) if i % 2 == 0 else (2, 3) for i in range(n_sellers)
        ),
        seed=23,
    )
    builder = SingleDatasetBuilder() if single_only else MashupBuilder()
    arbiter = Arbiter(internal_market(), builder=builder)
    for i, dataset in enumerate(world.datasets):
        arbiter.accept_dataset(dataset, seller=f"s{i}")
    for b in range(4):
        buyer = BuyerPlatform(f"b{b}")
        arbiter.register_participant(f"b{b}")
        wtp = buyer.classification_wtp(
            labels=world.label_relation,
            features=["f0", "f1", "f2", "f3"],  # spans both seller halves
            price_steps=[(0.8, 10.0)],
        )
        buyer.submit(arbiter, wtp)
    result = arbiter.run_round()
    return result.transactions


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for n_sellers in (1, 2, 4):
        rows.append(
            (
                n_sellers,
                run_market(n_sellers, single_only=True),
                run_market(n_sellers, single_only=False),
            )
        )
    return rows


def test_e10_report(sweep, table, benchmark):
    table(
        ["seller datasets", "transactions (no mashups)",
         "transactions (mashups)"],
        sweep,
        title="E10: thin market vs mashup-enabled market (4 buyers/round)",
    )
    benchmark(run_market, 2, False)


def test_e10_single_dataset_market_is_thin(sweep):
    for _n, without, _with in sweep:
        assert without == 0  # no single dataset passes the accuracy gate


def test_e10_mashups_unlock_trade_once_supply_suffices(sweep):
    by_n = {n: (without, with_m) for n, without, with_m in sweep}
    assert by_n[1][1] == 0  # one dataset: even mashups cannot help
    assert by_n[2][1] >= 4  # both halves present: every buyer served
    assert by_n[4][1] >= 4
