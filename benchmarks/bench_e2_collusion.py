"""E2 — Collusion resistance: coalition size vs arbiter revenue (§6.1).

The paper demands simulating "adversarial [players], forming coalitions
with other players to game the market".  We mount the canonical
bid-suppression attack against three mechanisms and sweep the coalition
size.  Expected shape: Vickrey revenue falls (and coalition utility rises)
monotonically with coalition size; posted prices are immune because no
bid influences the price.
"""

from __future__ import annotations

import pytest

from repro.mechanisms import PostedPriceMechanism, RSOPAuction, VickreyAuction
from repro.simulator import simulate_collusion, uniform_values

MECHANISMS = [
    VickreyAuction(k=1),
    RSOPAuction(seed=0),
    PostedPriceMechanism(price=50.0),
]
COALITION_SIZES = (1, 2, 3, 4, 5)


@pytest.fixture(scope="module")
def sweep():
    out = {}
    for mechanism in MECHANISMS:
        for size in COALITION_SIZES:
            out[(mechanism.name, size)] = simulate_collusion(
                mechanism,
                uniform_values(0, 100),
                n_buyers=8,
                coalition_size=size,
                n_rounds=250,
                seed=11,
            )
    return out


def test_e2_report(sweep, table, benchmark):
    benchmark(
        simulate_collusion,
        VickreyAuction(k=1),
        uniform_values(0, 100),
        n_buyers=8,
        coalition_size=3,
        n_rounds=50,
        seed=0,
    )
    rows = []
    for (mech, size), r in sorted(sweep.items()):
        rows.append(
            (
                mech,
                size,
                round(r.revenue_loss_fraction * 100, 1),
                round(r.coalition_gain, 1),
            )
        )
    table(
        ["mechanism", "coalition size", "revenue loss %", "coalition gain"],
        rows,
        title="E2: bid-suppression collusion (8 buyers, 250 rounds)",
    )


def test_e2_vickrey_loss_grows_with_coalition(sweep):
    losses = [
        sweep[("vickrey", size)].revenue_loss_fraction
        for size in COALITION_SIZES
    ]
    # size-1 "coalition" is just honest play: no loss
    assert abs(losses[0]) < 1e-9
    assert losses[-1] > losses[1] > 0
    # a 5-of-8 coalition shaves off a measurable share of revenue (the
    # suppressed bid is only pivotal when a colluder held the 2nd price)
    assert losses[-1] > 0.05


def test_e2_vickrey_coalition_profits(sweep):
    assert sweep[("vickrey", 4)].coalition_gain > 0


def test_e2_posted_price_is_immune(sweep):
    for size in COALITION_SIZES:
        r = sweep[("posted", size)]
        # suppressors only hurt themselves; the price never moves
        assert r.coalition_gain <= 1e-9
        assert r.collusive_revenue <= r.honest_revenue


def test_e2_rsop_damaged_less_than_vickrey(sweep):
    """RSOP prices from the sample median region: a suppressed coalition
    distorts it, but dominant-strategy price-setting by rivals limits the
    coalition's direct gain relative to a pure second-price rule."""
    vickrey = sweep[("vickrey", 5)]
    rsop = sweep[("rsop", 5)]
    assert rsop.coalition_gain <= vickrey.coalition_gain
