"""E16 (extension) — Full-stack deployment simulation (§6.1 + Fig. 1).

The mechanism-level simulator (E1) isolates the rules; this experiment runs
the same strategy populations through the *complete* DMMS — mashup builder,
WTP evaluator, licensing, ledger — so the simulated market is byte-for-byte
the deployed one.  Expected shape: the qualitative E1 conclusions survive
the full stack (truthful players never lose under IC designs; shading under
a binding reserve kills transactions; the internal design maximizes
allocations), and the end-to-end ledger/audit invariants hold every round.
"""

from __future__ import annotations

import pytest

from repro.datagen import make_classification_world
from repro.market import exclusive_auction_market, internal_market
from repro.simulator import simulate_market_deployment, uniform_values

POPULATIONS = {
    "truthful": {"truthful": 1.0},
    "deep shading": {"shading": 1.0},
    "mixed": {"truthful": 0.5, "shading": 0.25, "ignorant": 0.25},
}
KWARGS = {"deep shading": {"shading": {"factor": 0.5}}}


@pytest.fixture(scope="module")
def datasets():
    world = make_classification_world(
        n_entities=120, feature_weights=(1.0, 1.0),
        dataset_features=((0,), (1,)), seed=61,
    )
    return world.datasets


@pytest.fixture(scope="module")
def grid(datasets):
    out = {}
    for design_name, design_factory in (
        ("auction r=60", lambda: exclusive_auction_market(k=1, reserve=60.0)),
        ("internal", internal_market),
    ):
        for pop_name, mix in POPULATIONS.items():
            out[(design_name, pop_name)] = simulate_market_deployment(
                design_factory(),
                datasets,
                wanted_attributes=["f0", "f1"],
                value_sampler=uniform_values(10, 100),
                strategy_mix=mix,
                strategy_kwargs=KWARGS.get(pop_name),
                n_buyers=6,
                n_rounds=8,
                seed=3,
            )
    return out


def test_e16_report(grid, table, benchmark, datasets):
    rows = []
    for (design, pop), r in sorted(grid.items()):
        honest = r.by_strategy.get("truthful")
        rows.append(
            (
                design,
                pop,
                r.transactions,
                round(r.revenue, 1),
                round(r.welfare, 1),
                round(honest.mean_utility, 1) if honest else "-",
                round(r.seller_gini, 3),
            )
        )
    table(
        ["design", "population", "transactions", "revenue", "welfare",
         "truthful mean utility", "seller gini"],
        rows,
        title="E16: full-DMMS simulation (6 buyers, 8 rounds)",
    )
    benchmark(
        simulate_market_deployment,
        internal_market(),
        datasets,
        ["f0", "f1"],
        uniform_values(10, 100),
        {"truthful": 1.0},
        None,
        4,  # n_buyers
        2,  # n_rounds
    )


def test_e16_truthful_never_lose_under_ic_designs(grid):
    for (_design, _pop), r in grid.items():
        honest = r.by_strategy.get("truthful")
        if honest is not None:
            assert honest.utility >= -1e-9


def test_e16_shading_kills_reserve_gated_sales(grid):
    honest = grid[("auction r=60", "truthful")]
    shaded = grid[("auction r=60", "deep shading")]
    assert shaded.transactions < honest.transactions


def test_e16_internal_design_maximizes_allocations(grid):
    for pop in POPULATIONS:
        internal = grid[("internal", pop)]
        auction = grid[("auction r=60", pop)]
        assert internal.transactions >= auction.transactions
        assert internal.revenue == 0.0  # free allocation, point rewards
