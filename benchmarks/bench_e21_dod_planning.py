"""E21 — Join-graph-aware DoD planning vs. the exhaustive oracle (§5.3).

The DoD engine turns a buyer's requested attributes into covering dataset
assignments and join trees.  The old enumerator materialized up to 200
``itertools.product`` combinations per request and scored every one — most
of them dead on arrival because their datasets sit in disconnected
components of the relationship graph and can never be joined.  The
component-pruned best-first planner expands attributes lazily, discards
disconnected partial assignments before scoring, and emits complete
assignments in exact best-score order.

This benchmark registers clustered corpora of 50–200 datasets whose
attribute coverage is deliberately spread over several disconnected
clusters, runs identical mashup requests through both planners, and
reports assignments scored, joins attempted and latency.  Both modes must
return **identical** top-k plans; the beam planner must score ≥5x fewer
assignments from 100 datasets up.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from repro.integration import DoDEngine, MashupRequest
from repro.relation import Column, Relation

NUM_PERM = 32
N_ROWS = 40
N_CLUSTERS = 4
ATTRS = ("reading", "pressure", "humidity")


def make_dataset(i: int, rng: random.Random) -> Relation:
    """Clustered corpus: entity_id ranges overlap only within a cluster, so
    the relationship graph splits into ``N_CLUSTERS`` components, while the
    requested attribute columns recur in *every* cluster — cross-cluster
    assignments look plausible by name but can never be joined."""
    cluster = i % N_CLUSTERS
    base = cluster * 1_000_000
    attr = ATTRS[i % len(ATTRS)]
    columns = [Column("entity_id", "int"), Column(attr, "float")]
    rows = [
        (base + (i // N_CLUSTERS) * 7 + j,
         round(base + rng.random() * 100, 4))
        for j in range(N_ROWS)
    ]
    return Relation(f"ds_{i:04d}", columns, rows)


def canonical(dod: DoDEngine, request: MashupRequest) -> list[tuple]:
    mashups = dod.build_mashups(request)
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing)
        for m in mashups
    ]


def timed(fn):
    t0 = time.perf_counter()
    out = fn()
    return out, time.perf_counter() - t0


@pytest.fixture(scope="module")
def sweep(smoke):
    sizes = (16, 40) if smoke else (50, 100, 200)
    n_requests = 2 if smoke else 4
    rows = []
    for n in sizes:
        rng = random.Random(5)
        engine = MetadataEngine(num_perm=NUM_PERM)
        index = IndexBuilder(engine)
        discovery = DiscoveryEngine(engine, index)
        # plan caching off: this experiment measures enumerator work, and
        # a cached second request would zero the oracle's counters
        beam = DoDEngine(engine, index, discovery, plan_cache=False)
        oracle = DoDEngine(
            engine, index, discovery, exhaustive=True, plan_cache=False
        )
        engine.register_batch(make_dataset(i, rng) for i in range(n))
        assert len(index.components()) == N_CLUSTERS

        scored_beam = scored_oracle = 0
        joins_beam = joins_oracle = pruned = plans = 0
        t_beam = t_oracle = 0.0
        for r in range(n_requests):
            wanted = sorted(
                rng.sample(ATTRS, k=2 + (r % 2))
            )
            request = MashupRequest(
                attributes=wanted, key="entity_id", max_results=3
            )
            canonical(oracle, request)  # warm the shared discovery cache
            got, dt_beam = timed(lambda: canonical(beam, request))
            want, dt_oracle = timed(lambda: canonical(oracle, request))
            assert got == want, (
                f"planner/oracle divergence at {n} datasets: {wanted}"
            )
            plans += len(got)
            t_beam += dt_beam
            t_oracle += dt_oracle
            scored_beam += beam.last_stats.assignments_scored
            scored_oracle += oracle.last_stats.assignments_scored
            joins_beam += beam.last_stats.plans_attempted
            joins_oracle += oracle.last_stats.plans_attempted
            pruned += beam.last_stats.pruned_disconnected
        rows.append((
            n, plans, scored_oracle, scored_beam,
            round(scored_oracle / max(scored_beam, 1), 1),
            joins_oracle, joins_beam, pruned,
            round(t_oracle * 1000, 2), round(t_beam * 1000, 2),
            round(t_oracle / t_beam, 1),
        ))
    return rows


def test_e21_report(sweep, table, bench_json):
    table(
        ["datasets", "plans", "scored (oracle)", "scored (beam)",
         "scoring reduction", "join attempts (oracle)",
         "join attempts (beam)", "pruned partials", "oracle (ms)",
         "beam (ms)", "latency speedup"],
        [(n, p, so, sb, f"{red}x", jo, jb, pr, to, tb, f"{sp}x")
         for n, p, so, sb, red, jo, jb, pr, to, tb, sp in sweep],
        title="E21: DoD planning — component-pruned beam search vs "
        "exhaustive oracle (identical top-k plans)",
    )
    bench_json(
        "E21",
        planning={
            n: {"scored_oracle": so, "scored_beam": sb,
                "scoring_reduction": red, "latency_speedup": sp}
            for n, _p, so, sb, red, _jo, _jb, _pr, _to, _tb, sp in sweep
        },
        top_k_plans_identical=True,  # asserted inside the sweep fixture
    )


def test_e21_beam_scores_5x_fewer_assignments(sweep):
    """≥5x fewer assignments scored at 100+ datasets (plans identical —
    the sweep fixture asserts equality on every request)."""
    for n, _p, scored_oracle, scored_beam, *_rest in sweep:
        if n >= 100:
            reduction = scored_oracle / max(scored_beam, 1)
            assert reduction >= 5.0, (
                f"beam planner scored only {reduction:.1f}x fewer "
                f"assignments than the oracle at {n} datasets"
            )


def test_e21_produces_plans(sweep):
    assert all(row[1] > 0 for row in sweep)
