"""E18 (extension) — Versioning information goods (§2/§8.2, Varian).

The paper cites Varian's "Versioning: the smart way to sell information".
A seller facing whales (linear utility) and casual buyers (concave utility
— a sample captures most of their value) designs a two-version menu.
Expected shape: deliberately damaging the good and screening beats both
serving only whales and a single price for everyone, the damaged version's
optimal quality moves with the casual segment's size, and every menu is
incentive-compatible by construction.
"""

from __future__ import annotations

import math

import pytest

from repro.pricing import (
    BuyerType,
    design_version_menu,
    menu_is_incentive_compatible,
)

WHALE_VALUE = 100.0
CASUAL_VALUE = 40.0


def types_for(casual_fraction: float):
    high = BuyerType("whale", 1.0 - casual_fraction,
                     lambda q: WHALE_VALUE * q)
    low = BuyerType("casual", casual_fraction,
                    lambda q: CASUAL_VALUE * math.sqrt(q))
    return high, low


@pytest.fixture(scope="module")
def sweep():
    rows = []
    for casual_fraction in (0.3, 0.5, 0.7, 0.9):
        high, low = types_for(casual_fraction)
        menu = design_version_menu(high, low)
        high_only = high.fraction * high.utility(1.0)
        single = (high.fraction + low.fraction) * low.utility(1.0)
        rows.append(
            (
                casual_fraction,
                menu.strategy,
                round(menu.low.quality, 3) if menu.low else "-",
                round(menu.low.price, 1) if menu.low else "-",
                round(menu.high.price, 1),
                round(menu.expected_revenue, 2),
                round(max(high_only, single), 2),
                menu_is_incentive_compatible(menu, high, low),
            )
        )
    return rows


def test_e18_report(sweep, table, benchmark):
    table(
        ["casual fraction", "strategy", "low quality", "low price",
         "high price", "menu revenue", "best degenerate", "IC"],
        sweep,
        title="E18: Varian versioning menus (whales 100, casual 40*sqrt(q))",
    )
    high, low = types_for(0.7)
    benchmark(design_version_menu, high, low)


def test_e18_screening_dominates(sweep):
    for _f, strategy, _q, _pl, _ph, revenue, degenerate, _ic in sweep:
        # the optimal menu never does worse than the degenerate options...
        assert revenue >= degenerate - 1e-9
    # ...and strictly screens whenever whales are a meaningful share
    for row in sweep:
        if row[0] <= 0.7:
            assert row[1] == "screen"
            assert row[5] > row[6]


def test_e18_all_menus_incentive_compatible(sweep):
    assert all(row[-1] for row in sweep)


def test_e18_damage_shrinks_as_casual_segment_grows(sweep):
    """More casual buyers -> serve them better (higher low quality)."""
    qualities = [row[2] for row in sweep]
    assert qualities == sorted(qualities)
