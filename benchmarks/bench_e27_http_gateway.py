"""E27 — HTTP gateway overhead (concurrent clients vs in-process service).

The gateway promises that putting the market on a socket costs transport,
not semantics: N concurrent :class:`~repro.platform.MarketClient` threads
hammering ``POST /search`` must (a) get bit-identical answers to the
in-process façade, and (b) sustain a usable request rate — the HTTP tax
(JSON encode, socket round trip, thread dispatch) bounded against the
same read served in-process on the same machine.

Reported metrics (``BENCH_E27.json``, gated by
``scripts/check_bench_regression.py``):

* ``rps`` — HTTP searches/second across all concurrent clients
* ``p50_ms`` / ``p99_ms`` — per-request latency over the socket
* ``http_efficiency`` — HTTP rps / in-process rps; a floor on how much
  of the service's read throughput survives the network edge
* ``answers_identical`` — every HTTP response equals the façade's
"""

from __future__ import annotations

import threading
import time

import pytest

from repro import DataMarket
from repro.platform import MarketClient, MarketGateway, MarketService
from repro.relation import Column, Relation

N_CLIENTS = 8


def joinable(name: str, offset: int = 0, n: int = 30) -> Relation:
    return Relation(
        name,
        [Column("key", "int"), Column(f"{name}_val", "float")],
        [(k, float(k + offset)) for k in range(n)],
    )


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


@pytest.fixture(scope="module")
def gateway_run(request):
    smoke = request.config.getoption("--smoke")
    requests_per_client = 25 if smoke else 150
    n_datasets = 4 if smoke else 10

    market = DataMarket()
    service = MarketService(market)
    gateway = MarketGateway(service, tokens={"tok": "acme"}).start()
    try:
        seller = MarketClient(gateway.url, token="tok")
        seller.register_dataset(joinable("base"), reserve_price=1.0)
        for i in range(n_datasets - 1):
            seller.register_dataset(joinable(f"ds{i}", offset=i + 1))

        attrs = ["key", "base_val"]
        expected = service.search(attrs)
        latencies: list[float] = []
        mismatches: list[str] = []
        errors: list[BaseException] = []
        lock = threading.Lock()

        def client_loop():
            client = MarketClient(gateway.url)
            local_lat = []
            try:
                for _ in range(requests_per_client):
                    t0 = time.perf_counter()
                    result = client.search(attrs)
                    local_lat.append(time.perf_counter() - t0)
                    if result != expected:
                        with lock:
                            mismatches.append(
                                f"as_of {result.as_of} != {expected.as_of} "
                                f"or hits diverged"
                            )
            except BaseException as exc:
                with lock:
                    errors.append(exc)
            with lock:
                latencies.extend(local_lat)

        threads = [
            threading.Thread(target=client_loop) for _ in range(N_CLIENTS)
        ]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        http_elapsed = time.perf_counter() - t_start

        # the same read volume served in-process, same thread fan-out
        def inproc_loop():
            try:
                for _ in range(requests_per_client):
                    assert service.search(attrs) == expected
            except BaseException as exc:
                with lock:
                    errors.append(exc)

        threads = [
            threading.Thread(target=inproc_loop) for _ in range(N_CLIENTS)
        ]
        t_start = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        inproc_elapsed = time.perf_counter() - t_start

        stats = MarketClient(gateway.url).stats()
        total = N_CLIENTS * requests_per_client
        return {
            "requests": total,
            "errors": errors,
            "mismatches": mismatches,
            "rps": total / http_elapsed if http_elapsed else 0.0,
            "inproc_rps": total / inproc_elapsed if inproc_elapsed else 0.0,
            "p50_ms": 1e3 * _percentile(latencies, 0.50),
            "p99_ms": 1e3 * _percentile(latencies, 0.99),
            "gateway_stats": stats,
        }
    finally:
        gateway.stop()
        service.close()


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def test_e27_report(gateway_run, table, bench_json, smoke):
    efficiency = (
        gateway_run["rps"] / gateway_run["inproc_rps"]
        if gateway_run["inproc_rps"] else 0.0
    )
    table(
        ["metric", "value"],
        [
            ("concurrent clients", N_CLIENTS),
            ("HTTP searches", gateway_run["requests"]),
            ("HTTP rps", f"{gateway_run['rps']:.1f}"),
            ("in-process rps", f"{gateway_run['inproc_rps']:.1f}"),
            ("efficiency (http/in-proc)", f"{efficiency:.4f}"),
            ("p50 ms", f"{gateway_run['p50_ms']:.2f}"),
            ("p99 ms", f"{gateway_run['p99_ms']:.2f}"),
            ("answer mismatches", len(gateway_run["mismatches"])),
        ],
        title="E27 HTTP gateway vs in-process service"
        + (" [smoke]" if smoke else ""),
    )
    bench_json(
        "E27",
        rps=round(gateway_run["rps"], 2),
        inproc_rps=round(gateway_run["inproc_rps"], 2),
        http_efficiency=round(efficiency, 5),
        p50_ms=round(gateway_run["p50_ms"], 3),
        p99_ms=round(gateway_run["p99_ms"], 3),
        answers_identical=int(not gateway_run["mismatches"]),
    )


# ---------------------------------------------------------------------------
# acceptance gates
# ---------------------------------------------------------------------------

def test_no_client_errored(gateway_run):
    assert gateway_run["errors"] == []


def test_every_http_answer_matched_in_process(gateway_run):
    assert gateway_run["mismatches"] == []


def test_gateway_counted_the_load(gateway_run):
    stats = gateway_run["gateway_stats"]
    assert stats["requests"]["total"] >= gateway_run["requests"]
    assert stats["latency_ms"]["p99"] is not None
