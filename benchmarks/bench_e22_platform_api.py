"""E22 — The platform façade under a steady-state request stream (§4/§5).

A deployed DMMS serves the same handful of data products over and over:
buyers rediscover popular attribute combinations far more often than the
seller corpus changes.  Because every mutation flows through the
``DataMarket`` façade, the DoD engine can memoize whole plan requests
against the relationship graph's version counter — a repeated ``plan`` at
an unchanged graph version is a dict lookup instead of a full
discovery+enumeration+join run, and any register/update/retire delta
invalidates the cache automatically.

Two harnesses:

* **plan cache** — N datasets, a rotating set of popular plan requests,
  façade with the cache on vs. off.  Outputs must be identical; the cached
  stream must clear ≥5x faster at the production sizes (the acceptance
  gate for the ISSUE-4 tentpole).
* **registration hashing** — the ``MinHash.update_many`` micro-benchmark:
  bulk registration with per-call dedupe + vectorized/memoized token
  hashing vs. a per-value scalar-rehash path, on corpora with a shared
  vocabulary.  Signatures must be identical.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro import DataMarket, internal_market
from repro.relation import Column, Relation
from repro.sketches import MinHash
from repro.sketches.minhash import (
    _FNV_OFFSET,
    _FNV_PRIME,
    _M64,
    _MIX_1,
    _MIX_2,
    _PRIME,
)

N_ROWS = 60
ATTRS = ("alpha", "beta", "gamma", "delta", "epsilon", "zeta")


def make_dataset(i: int, rng: np.random.Generator) -> Relation:
    """Joinable corpus: shared entity_id domain, two attribute columns and
    a low-cardinality string column drawn from a shared vocabulary."""
    a1 = ATTRS[i % len(ATTRS)]
    a2 = ATTRS[(i + 1) % len(ATTRS)]
    columns = [
        Column("entity_id", "int", "entity"),
        Column(a1, "float"),
        Column(a2, "float"),
        Column("city", "str"),
    ]
    cities = ("oslo", "rome", "lima", "kyiv", "pune")
    rows = [
        (k, round(float(rng.normal()), 6), round(float(rng.normal()), 6),
         cities[int(rng.integers(len(cities)))])
        for k in range(N_ROWS)
    ]
    return Relation(f"ds_{i:04d}", columns, rows)


def canonical(result) -> list[tuple]:
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing)
        for m in result.mashups
    ]


def request_stream(n_requests: int):
    """The steady-state workload: four popular attribute pairs, cycled."""
    popular = [
        ["alpha", "beta"], ["gamma", "delta"],
        ["alpha", "gamma"], ["beta", "epsilon"],
    ]
    return [popular[i % len(popular)] for i in range(n_requests)]


@pytest.fixture(scope="module")
def plan_sweep(smoke):
    sizes = (12,) if smoke else (40, 80)
    n_requests = 20 if smoke else 120
    rows = []
    for n in sizes:
        rng = np.random.default_rng(17)
        datasets = [make_dataset(i, rng) for i in range(n)]
        cached = DataMarket(internal_market())
        uncached = DataMarket(internal_market(), plan_cache=False)
        for market in (cached, uncached):
            for i, ds in enumerate(datasets):
                market.register_dataset(ds, seller=f"s{i % 5}")
        stream = request_stream(n_requests)
        # warm both stacks once per distinct request: discovery caches and
        # the plan cache prime here, so the measured loop is steady state
        for attrs in stream[:4]:
            assert canonical(
                cached.plan(attrs, key="entity_id")
            ) == canonical(uncached.plan(attrs, key="entity_id"))

        t0 = time.perf_counter()
        cached_out = [
            canonical(cached.plan(attrs, key="entity_id"))
            for attrs in stream
        ]
        t_cached = time.perf_counter() - t0
        t0 = time.perf_counter()
        uncached_out = [
            canonical(uncached.plan(attrs, key="entity_id"))
            for attrs in stream
        ]
        t_uncached = time.perf_counter() - t0
        assert cached_out == uncached_out, (
            f"plan cache diverged from the uncached planner at {n} datasets"
        )
        stats = cached.plan_cache_stats
        # 4 warm-up misses primed the cache; every measured request hit
        assert stats.hits == n_requests
        assert uncached.plan_cache_stats.requests == 0
        rows.append((
            n, n_requests, stats.hits, stats.misses,
            round(t_uncached * 1000, 2), round(t_cached * 1000, 2),
            round(t_uncached / t_cached, 1),
        ))
    return rows


def test_e22_report(plan_sweep, table, bench_json):
    table(
        ["datasets", "requests", "cache hits", "misses",
         "uncached (ms)", "cached (ms)", "speedup"],
        [(n, r, h, m, tu, tc, f"{sp}x")
         for n, r, h, m, tu, tc, sp in plan_sweep],
        title="E22: steady-state plan request stream — graph-version plan "
        "cache vs uncached planner (identical outputs)",
    )
    bench_json(
        "E22",
        plan_cache={
            n: {"uncached_ms": tu, "cached_ms": tc, "speedup": sp}
            for n, _r, _h, _m, tu, tc, sp in plan_sweep
        },
        outputs_identical=True,  # asserted inside the sweep fixture
    )


def test_e22_steady_state_speedup_at_least_5x(plan_sweep, smoke):
    """Acceptance gate: ≥5x steady-state speedup at production sizes.

    Smoke mode shrinks the workload below timing-stable sizes; there the
    deterministic hit-count and output-equality assertions inside the
    sweep fixture carry the test.
    """
    if smoke:
        return
    for n, _r, _h, _m, _tu, _tc, speedup in plan_sweep:
        if n >= 40:
            assert speedup >= 5.0, (
                f"plan cache only {speedup:.1f}x faster at {n} datasets"
            )


def test_e22_delta_invalidates_and_matches(plan_sweep):
    """After a corpus delta the cache recomputes and still matches the
    uncached planner."""
    rng = np.random.default_rng(99)
    cached = DataMarket(internal_market())
    uncached = DataMarket(internal_market(), plan_cache=False)
    for market in (cached, uncached):
        for i in range(8):
            market.register_dataset(
                make_dataset(i, np.random.default_rng(i)),
                seller=f"s{i % 3}",
            )
    attrs = ["alpha", "beta"]
    assert canonical(cached.plan(attrs, key="entity_id")) == canonical(
        uncached.plan(attrs, key="entity_id")
    )
    assert cached.plan(attrs, key="entity_id").cached is True
    newcomer = make_dataset(8, rng)
    cached.register_dataset(newcomer, seller="s9")
    uncached.register_dataset(newcomer, seller="s9")
    after = cached.plan(attrs, key="entity_id")
    assert after.cached is False
    assert canonical(after) == canonical(
        uncached.plan(attrs, key="entity_id")
    )


# ---------------------------------------------------------------------------
# registration hashing: MinHash.update_many micro-benchmark
# ---------------------------------------------------------------------------

def _scalar_token_hash(token: str) -> int:
    """Reference token hash (FNV-1a + mix), recomputed per value: no memo,
    no vectorization — the bench's independent scalar re-implementation."""
    x = _FNV_OFFSET
    for byte in token.encode():
        x = ((x ^ byte) * _FNV_PRIME) & _M64
    x = ((x ^ (x >> 33)) * _MIX_1) & _M64
    x = ((x ^ (x >> 33)) * _MIX_2) & _M64
    x ^= x >> 33
    return x % _PRIME


def legacy_update_many(mh: MinHash, values) -> None:
    """The legacy shape: one scalar hash per *value* (duplicates included),
    no memo, no dedupe, no vectorized fold."""
    hashes = np.fromiter(
        (_scalar_token_hash(repr(v)) for v in values), dtype=np.int64
    )
    if hashes.size == 0:
        return
    hashed = (mh._a[:, None] * hashes[None, :] + mh._b[:, None]) % _PRIME
    np.minimum(mh.signature, hashed.min(axis=1), out=mh.signature)
    mh.count += int(hashes.size)


def shared_vocab_columns(n_columns: int, n_values: int, vocab: int):
    """Columns over a shared token vocabulary (UUID-ish reuse across a
    corpus: ids, cities, categories recur in every seller's datasets)."""
    rng = np.random.default_rng(3)
    tokens = [f"token_{i:06d}" for i in range(vocab)]
    return [
        [tokens[j] for j in rng.integers(vocab, size=n_values)]
        for _ in range(n_columns)
    ]


@pytest.fixture(scope="module")
def hashing_sweep(smoke):
    shapes = [(20, 200, 500)] if smoke else [(80, 1000, 2000), (150, 2000, 3000)]
    rows = []
    for n_columns, n_values, vocab in shapes:
        columns = shared_vocab_columns(n_columns, n_values, vocab)

        t0 = time.perf_counter()
        legacy = []
        for values in columns:
            mh = MinHash(num_perm=64)
            legacy_update_many(mh, values)
            legacy.append(mh)
        t_legacy = time.perf_counter() - t0

        t0 = time.perf_counter()
        current = []
        for values in columns:
            mh = MinHash(num_perm=64)
            mh.update_many(values)
            current.append(mh)
        t_current = time.perf_counter() - t0

        for a, b in zip(legacy, current):
            assert a.digest() == b.digest(), "fast hash path changed sketches"
        rows.append((
            n_columns, n_values, vocab,
            round(t_legacy * 1000, 2), round(t_current * 1000, 2),
            round(t_legacy / t_current, 1),
        ))
    return rows


def test_e22_hashing_report(hashing_sweep, table, bench_json):
    bench_json(
        "E22",
        bulk_hashing={
            f"{c}x{v}": {"legacy_ms": tl, "fast_ms": tc, "speedup": sp}
            for c, v, _vo, tl, tc, sp in hashing_sweep
        },
        signatures_identical=True,  # asserted inside the sweep fixture
    )
    table(
        ["columns", "values/col", "vocab", "legacy (ms)", "cached (ms)",
         "speedup"],
        [(c, v, vo, tl, tc, f"{sp}x")
         for c, v, vo, tl, tc, sp in hashing_sweep],
        title="E22: MinHash.update_many — dedupe + vectorized/memoized "
        "token hashing vs per-value scalar rehash (identical signatures)",
    )


def test_e22_hashing_measurably_faster(hashing_sweep, smoke):
    if smoke:
        return
    for _c, _v, _vo, _tl, _tc, speedup in hashing_sweep:
        assert speedup >= 1.5, (
            f"bulk token hashing only {speedup:.1f}x faster than legacy path"
        )
