"""E25 — Cost-based join trees + vectorized columnar kernels.

Two claims, one experiment file:

**Plan quality.**  The DoD planner's ``_connect`` used to pick join
paths by hop count and attach dimensions in attribute-mention order —
blind to how much each join multiplies the running cardinality.  The
cost model weights every edge by its profile-derived fan-out estimate
(PK/FK asymmetry recovered from MinHash jaccard + distinct counts) and
orders dimension joins by ascending estimated blow-up, so shrinking
joins run before multiplying ones.  Harness: a skewed star corpus where
``events`` fans out 5x and ``status`` covers a fraction of the fact
table.  Both planners must return the **same bag of rows**; the gate is
a ≥2x reduction in peak intermediate cardinality.

**Kernel throughput.**  Structured predicates (``Eq``/``In``/``Range``/
``And``) compile to numpy masks over whole column vectors instead of a
dict-per-row Python loop, and single-key equi-joins factorize via
``np.unique`` instead of probing a Python dict tuple-by-tuple.  The
iteration engine is the bit-identity oracle; the gate is a ≥5x select
speedup at 50k rows (full mode).

Smoke mode shrinks both corpora below timing-stable sizes and keeps the
identity assertions plus the plan-quality (peak-rows) gate, which is
deterministic at any size.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.integration import MashupRequest
from repro.integration.plan import _qualify
from repro.mashup import MashupBuilder
from repro.relation import (
    And,
    Column,
    ColumnarEngine,
    In,
    IterationEngine,
    LeafRelation,
    Range,
    Relation,
)
from repro.relation.engines import _factorize_join, _tuple_join


# ---------------------------------------------------------------------------
# plan-quality harness
# ---------------------------------------------------------------------------

def build_market(cost_model: bool, n_orders: int, dup: int, cover_frac: float):
    n_s = max(10, n_orders // 10)
    orders = Relation(
        "orders",
        [Column("code", "int"), Column("s_code", "int"),
         Column("f_val", "float")],
        [(i, i % n_s, float(i)) for i in range(n_orders)],
    )
    events = Relation(
        "events",
        [Column("code", "int"), Column("d_attr", "str")],
        [(i % n_orders, f"e{i}") for i in range(n_orders * dup)],
    )
    status = Relation(
        "status",
        [Column("s_code", "int"), Column("s_attr", "str")],
        [(i, f"st{i}") for i in range(int(n_s * cover_frac))],
    )
    b = MashupBuilder(min_overlap=0.15, cost_model=cost_model)
    b.add_dataset(orders, owner="a")
    b.add_dataset(events, owner="b")
    b.add_dataset(status, owner="c")
    return b


def peak_rows(plan, resolver) -> int:
    tree = _qualify(resolver(plan.base))
    peak = tree.count()
    for step in plan.joins:
        tree = tree.join(
            _qualify(resolver(step.dataset)),
            on=list(step.pairs), keep_right=True,
        )
        peak = max(peak, tree.count())
    return peak


@pytest.fixture(scope="module")
def plan_quality(request):
    smoke = request.config.getoption("--smoke")
    n_orders, dup = (200, 5) if smoke else (4_000, 5)
    req = MashupRequest(attributes=["f_val", "d_attr", "s_attr"])

    results = {}
    for label, flag in (("cost", True), ("hops", False)):
        b = build_market(flag, n_orders, dup, cover_frac=0.2)
        t0 = time.perf_counter()
        mashup = b.build(req)[0]
        wall = time.perf_counter() - t0
        results[label] = {
            "mashup": mashup,
            "wall_s": wall,
            "peak": peak_rows(mashup.plan, b.metadata.relation),
            "order": [j.dataset for j in mashup.plan.joins],
            "estimates": list(b.dod.last_stats.cardinality_estimates),
        }

    bag = lambda m: sorted(map(repr, m.relation.rows))
    assert bag(results["cost"]["mashup"]) == bag(results["hops"]["mashup"])
    return {"rows": n_orders, "dup": dup, **results}


# ---------------------------------------------------------------------------
# kernel micro-bench
# ---------------------------------------------------------------------------

def select_corpus(n: int) -> Relation:
    rng = np.random.default_rng(25)
    tags = ["alpha", "beta", "gamma", "delta"]
    rows = [
        (int(i), float(f), tags[t])
        for i, f, t in zip(
            rng.integers(0, 1000, n),
            rng.normal(size=n),
            rng.integers(0, len(tags), n),
        )
    ]
    return Relation(
        "sel",
        [Column("i", "int"), Column("f", "float"), Column("t", "str")],
        rows,
    )


def timed(engine, tree):
    t0 = time.perf_counter()
    out = engine.execute(tree)
    return out, time.perf_counter() - t0


@pytest.fixture(scope="module")
def kernel_speed(request):
    smoke = request.config.getoption("--smoke")
    n = 5_000 if smoke else 50_000
    rel = select_corpus(n)
    rel.columnar.materialize()

    pred = And(Range("f", low=0.5, high=1.5), In("t", ("alpha",)))
    tree = LeafRelation(rel).select(pred)
    oracle, loop_s = timed(IterationEngine(), tree)
    fast, vec_s = timed(ColumnarEngine(), tree)
    assert fast.rows == oracle.rows and fast.provenance == oracle.provenance

    # factorized vs tuple-probe join kernel on identical key vectors
    rng = np.random.default_rng(26)
    lk = np.empty(n, dtype=object)
    lk[:] = [int(v) for v in rng.integers(0, n // 10, n)]
    rk = np.empty(n // 10, dtype=object)
    rk[:] = list(range(n // 10))
    t0 = time.perf_counter()
    tl, tr = _tuple_join([lk], [rk])
    tuple_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    fl, fr = _factorize_join(lk, rk)
    fact_s = time.perf_counter() - t0
    assert list(tl) == list(fl) and list(tr) == list(fr)

    return {
        "rows": n,
        "select_loop_s": loop_s,
        "select_vec_s": vec_s,
        "select_speedup": loop_s / vec_s,
        "join_tuple_s": tuple_s,
        "join_fact_s": fact_s,
        "join_speedup": tuple_s / fact_s,
    }


# ---------------------------------------------------------------------------
# report + gates
# ---------------------------------------------------------------------------

def test_e25_report(plan_quality, kernel_speed, table, bench_json, smoke):
    p, k = plan_quality, kernel_speed
    peak_ratio = p["hops"]["peak"] / p["cost"]["peak"]
    table(
        ["planner", "join order", "peak rows", "build+exec (s)"],
        [
            ("hop-count", " → ".join(p["hops"]["order"]),
             str(p["hops"]["peak"]), f"{p['hops']['wall_s']:.3f}"),
            ("cost-based", " → ".join(p["cost"]["order"]),
             str(p["cost"]["peak"]), f"{p['cost']['wall_s']:.3f}"),
            ("ratio", "", f"{peak_ratio:.1f}x",
             f"{p['hops']['wall_s'] / p['cost']['wall_s']:.2f}x"),
        ],
        title=(
            f"E25: cost-based vs hop-count planning, "
            f"{p['rows']}-row fact × {p['dup']}x fan-out "
            f"(identical output bags)"
        ),
    )
    table(
        ["kernel", "row loop (s)", "vectorized (s)", "speedup"],
        [
            ("select And(Range, In)", f"{k['select_loop_s']:.4f}",
             f"{k['select_vec_s']:.4f}", f"{k['select_speedup']:.1f}x"),
            ("single-key equi-join", f"{k['join_tuple_s']:.4f}",
             f"{k['join_fact_s']:.4f}", f"{k['join_speedup']:.1f}x"),
        ],
        title=f"E25: columnar kernels, {k['rows']} rows (bit-identical)",
    )
    est = p["cost"]["estimates"]
    bench_json(
        "E25",
        fact_rows=p["rows"],
        peak_rows_hops=p["hops"]["peak"],
        peak_rows_cost=p["cost"]["peak"],
        peak_ratio=round(peak_ratio, 2),
        hops_wall_s=round(p["hops"]["wall_s"], 4),
        cost_wall_s=round(p["cost"]["wall_s"], 4),
        cardinality_estimates=[
            [round(e, 1), a] for e, a in est
        ],
        kernel_rows=k["rows"],
        select_speedup=round(k["select_speedup"], 2),
        join_speedup=round(k["join_speedup"], 2),
        outputs_identical=True,
    )


def test_e25_cost_plan_shrinks_peak(plan_quality):
    """Acceptance gate (both modes — deterministic at any size): the
    cost-based plan's peak intermediate cardinality is ≥2x smaller."""
    p = plan_quality
    assert p["cost"]["order"][0] == "status"  # shrinking join first
    assert p["cost"]["peak"] * 2 <= p["hops"]["peak"], (
        f"cost plan peaked at {p['cost']['peak']} rows vs "
        f"{p['hops']['peak']} for the hop-count plan"
    )


def test_e25_vectorized_kernels_beat_row_loop(kernel_speed, smoke):
    """Acceptance gate: ≥5x select speedup at 50k rows (full mode).
    Smoke sizes are timing-noisy; the bit-identity asserts in the
    fixture still run, and we only require the vectorized path not to
    lose outright."""
    k = kernel_speed
    if smoke:
        assert k["select_speedup"] >= 1.0
        return
    assert k["select_speedup"] >= 5.0, (
        f"vectorized select only {k['select_speedup']:.1f}x at "
        f"{k['rows']} rows"
    )
    assert k["join_speedup"] >= 1.5, (
        f"factorized join only {k['join_speedup']:.1f}x"
    )
