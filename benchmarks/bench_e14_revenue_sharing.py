"""E14 — Revenue sharing via provenance vs Shapley vs uniform (§3.2.3).

"The revenue sharing problem consists of reverse engineering [the mashup
function]...  if f() is a relational function, then we can leverage the
vast research in provenance."

We build mashups with different plan shapes and compare the three sharing
methods.  Expected shape: all conserve money exactly; for a symmetric
equi-join, provenance and Shapley agree on an equal split; when one seller
owns all the task-relevant signal, Shapley shifts money to it while
provenance (which only sees structural participation) stays symmetric —
the trade-off DESIGN.md calls out for ablation.
"""

from __future__ import annotations

import pytest

from repro.datagen import make_classification_world
from repro.integration import MashupRequest
from repro.market import RevenueAllocationEngine
from repro.mashup import MashupBuilder
from repro.wtp import ClassificationTask, PriceCurve, WTPFunction

PRICE = 100.0


def build_case(feature_weights, dataset_features, features, seed=31):
    world = make_classification_world(
        n_entities=250,
        feature_weights=feature_weights,
        dataset_features=dataset_features,
        seed=seed,
    )
    builder = MashupBuilder()
    for ds in world.datasets:
        builder.add_dataset(ds)
    wtp = WTPFunction(
        buyer="b1",
        task=ClassificationTask(labels=world.label_relation,
                                features=features),
        curve=PriceCurve.of((0.55, 50.0), (0.75, 100.0)),
        key="entity_id",
    )
    mashups = builder.build(
        MashupRequest(attributes=features, key="entity_id")
    )
    want = {f"seller_{i}" for i in range(len(dataset_features))}
    mashup = next(
        m for m in mashups if set(m.plan.sources()) == want
    )
    return builder, wtp, mashup


CASES = {
    "symmetric join (equal signal)": dict(
        feature_weights=(2.0, 2.0), dataset_features=((0,), (1,)),
        features=["f0", "f1"],
    ),
    "skewed signal (seller_1 has it all)": dict(
        feature_weights=(0.1, 0.1, 3.0, 3.0),
        dataset_features=((0, 1), (2, 3)),
        features=["f0", "f1", "f2", "f3"],
    ),
    "3-way chain": dict(
        feature_weights=(1.5, 1.5, 1.5),
        dataset_features=((0,), (1,), (2,)),
        features=["f0", "f1", "f2"],
    ),
}


@pytest.fixture(scope="module")
def splits():
    out = {}
    for name, kwargs in CASES.items():
        builder, wtp, mashup = build_case(**kwargs)
        per_method = {}
        for method in ("provenance", "shapley", "uniform"):
            engine = RevenueAllocationEngine(method, commission=0.1)
            per_method[method] = engine.split(
                mashup, PRICE, wtp=wtp, resolver=builder.metadata.relation
            )
        out[name] = per_method
    return out


def test_e14_report(splits, table, benchmark):
    rows = []
    for case, per_method in splits.items():
        for method, split in per_method.items():
            shares = " / ".join(
                f"{k.split('_')[1]}:{v:.1f}"
                for k, v in sorted(split.dataset_shares.items())
            )
            rows.append((case, method, round(split.arbiter_fee, 1), shares))
    table(
        ["plan shape", "method", "arbiter fee", "per-seller shares"],
        rows,
        title=f"E14: revenue sharing of a {PRICE:.0f} sale (10% commission)",
    )
    builder, wtp, mashup = build_case(**CASES["symmetric join (equal signal)"])
    engine = RevenueAllocationEngine("provenance", 0.1)
    benchmark(engine.split, mashup, PRICE)


def test_e14_all_methods_conserve(splits):
    for per_method in splits.values():
        for split in per_method.values():
            assert split.conserves()
            assert all(v >= 0 for v in split.dataset_shares.values())


def test_e14_symmetric_join_equal_under_provenance(splits):
    split = splits["symmetric join (equal signal)"]["provenance"]
    shares = sorted(split.dataset_shares.values())
    assert shares[0] == pytest.approx(shares[1], rel=1e-6)


def test_e14_shapley_rewards_signal_provenance_does_not(splits):
    per_method = splits["skewed signal (seller_1 has it all)"]
    shapley = per_method["shapley"].dataset_shares
    provenance = per_method["provenance"].dataset_shares
    # Shapley sees that seller_1 carries the classification signal
    assert shapley["seller_1"] > shapley["seller_0"]
    # provenance sees only structural participation: symmetric join
    assert provenance["seller_0"] == pytest.approx(
        provenance["seller_1"], rel=1e-6
    )


def test_e14_three_way_chain_covers_everyone(splits):
    for method, split in splits["3-way chain"].items():
        assert len(split.dataset_shares) == 3, method
        assert min(split.dataset_shares.values()) > 0 or method == "shapley"
