"""F3 — Fig. 3: the Mashup Builder architecture, stage by stage.

Fig. 3 wires ingestion (batch/share) -> processor -> sink (output schema)
-> index builder (lifecycle + relationship indexes) -> DoD engine
(discovery, integration, blending).  This harness drives a corpus through
every stage, including a live dataset *update* (the metadata engine is
"fully-incremental, always-on"), and reports per-stage latency.
"""

from __future__ import annotations

import time

import pytest

from repro.datagen import CorpusSpec, generate_corpus
from repro.discovery import DiscoveryEngine, IndexBuilder, MetadataEngine
from repro.integration import DoDEngine, MashupRequest
from repro.relation import Relation


@pytest.fixture(scope="module")
def stages():
    corpus = generate_corpus(CorpusSpec(
        n_entities=200, n_numeric=4, n_categorical=2, n_datasets=12,
        columns_per_dataset=3, rename_probability=0.2, seed=29,
    ))
    timings: dict[str, float] = {}
    t0 = time.perf_counter()
    engine = MetadataEngine()
    engine.register_batch(corpus.datasets[:-1], owner="steward")
    timings["ingestion: batch interface"] = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    engine.register(corpus.datasets[-1], owner="individual")
    timings["ingestion: share interface"] = (time.perf_counter() - t0) * 1000

    t0 = time.perf_counter()
    sink = engine.output_schema()
    timings["sink: output schema"] = (time.perf_counter() - t0) * 1000

    index = IndexBuilder(engine)
    t0 = time.perf_counter()
    index.refresh()
    timings["index builder: full refresh"] = (time.perf_counter() - t0) * 1000

    # lifecycle: a dataset changes at the source; snapshots + index follow
    updated_rows = list(corpus.datasets[0].rows)[:-5]
    updated = Relation(
        corpus.datasets[0].name, corpus.datasets[0].schema, updated_rows
    )
    t0 = time.perf_counter()
    engine.register(updated, owner="steward")
    index.refresh()
    timings["lifecycle: update + incremental refresh"] = (
        time.perf_counter() - t0
    ) * 1000

    discovery = DiscoveryEngine(engine, index)
    t0 = time.perf_counter()
    hits = discovery.search_schema(["num_0", "num_1"])
    timings["DoD: discovery (schema search)"] = (
        time.perf_counter() - t0
    ) * 1000

    dod = DoDEngine(engine, index, discovery)
    t0 = time.perf_counter()
    mashups = dod.build_mashups(
        MashupRequest(attributes=["num_0", "num_1", "cat_0"],
                      key="entity_id")
    )
    timings["DoD: integration (mashup assembly)"] = (
        time.perf_counter() - t0
    ) * 1000
    return corpus, engine, index, sink, hits, mashups, timings


def test_f3_report(stages, table, benchmark):
    corpus, engine, _index, sink, _hits, mashups, timings = stages
    table(
        ["Fig. 3 stage", "latency (ms)"],
        [(stage, round(ms, 2)) for stage, ms in timings.items()],
        title="F3: mashup builder stage profile (12 datasets)",
    )
    table(
        ["datasets", "columns profiled", "snapshots", "mashups built"],
        [(
            len(sink["datasets"]),
            len(sink["columns"]),
            len(sink["snapshots"]),
            len(mashups),
        )],
        title="F3: metadata engine output schema",
    )
    benchmark(engine.output_schema)


def test_f3_versioning_tracked(stages):
    _corpus, engine, *_rest = stages
    lifecycle = engine.lifecycle("ds_0")
    assert lifecycle.version == 2  # initial + source update
    assert len(lifecycle.snapshots) == 2
    assert (
        lifecycle.snapshots[0].content_hash
        != lifecycle.snapshots[1].content_hash
    )


def test_f3_sink_schema_is_relational(stages):
    _corpus, _engine, _index, sink, *_ = stages
    assert set(sink) == {"datasets", "columns", "snapshots"}
    assert len(sink["datasets"]) == 12
    owners = set(sink["datasets"].column("owner"))
    assert owners == {"steward", "individual"}


def test_f3_discovery_and_dod_produce_results(stages):
    _c, _e, _i, _s, hits, mashups, _t = stages
    assert hits and hits[0].score > 0.5
    assert mashups
    best = mashups[0]
    assert {"num_0", "num_1", "cat_0"} <= set(best.relation.columns)
