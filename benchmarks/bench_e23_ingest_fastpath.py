"""E23 — Columnar ingest fast path + component-scoped plan cache (§5.1/§5.2).

The always-on market must profile and index every arriving dataset before
it is discoverable.  Before this experiment's changes the ingest cold path
was value-at-a-time Python: ``column_content_hash`` fed ``repr(v)`` to
BLAKE2b one value at a time, ``profile_column`` re-derived ``repr`` per
consumer and digested each distinct token individually, and any metadata
delta dropped the whole plan cache.  The columnar fast path computes one
canonical repr per value in the relation's memoized columnar view, digests
one concatenated separator-delimited buffer per column in a single C-level
BLAKE2b call, folds distinct tokens through a vectorized hasher, and the
plan cache keys entries on join-graph component fingerprints so unrelated
seller churn stops evicting them.

Three-way ingest comparison on wide and tall corpora:

* **legacy** — a faithful replica of the pre-fastpath pipeline (per-value
  hashing loops, per-token BLAKE2b with the historical canonical
  double-wrap, dict-loop summaries, row-wise relation hashing twice per
  registration).  The process-wide token memo is inert here: cold
  registration means every token is first-sight.
* **scalar reference** — today's value-at-a-time oracle
  (``columnar=False``), kept for bit-identical output checks.
* **columnar** — the default fast path.

Gates: columnar ≥2.5x over legacy end-to-end on both shapes (measured
2.7–5.5x on the reference machine; the original 5x target assumed the
permutation fold could be amortized too, but that matrix was already
vectorized numpy pre-fastpath and is shared by every mode, so Amdahl caps
the end-to-end ratio — the per-value Python loops the fast path eliminates
are individually 5–10x cheaper, which the three-way table makes visible);
columnar profiles bit-identical to the scalar reference (signatures
included); content hashes and summaries also identical to the legacy
replica (signatures moved from per-token BLAKE2b to the vectorized
FNV/mix scheme, so only those differ by construction).

The plan-cache harness replays a steady-state request stream against one
join-graph component while unrelated components churn between requests:
≥90% of requests must still hit, with every response identical to an
uncached planner's.
"""

from __future__ import annotations

import hashlib
import time

import numpy as np
import pytest

from repro import DataMarket, internal_market
from repro.discovery.metadata import MetadataEngine
from repro.discovery.profiler import set_columnar_profiling
from repro.relation import Column, Relation
from repro.relation.relation import _freeze_row
from repro.sketches import CategoricalSummary, MinHash, NumericSummary
from repro.sketches.minhash import _PRIME, _TOKEN_CACHE

NUM_PERM = 64


# ---------------------------------------------------------------------------
# corpora (row payloads built once; fresh Relation objects per mode so no
# memoized view or content hash leaks across timings)
# ---------------------------------------------------------------------------

def wide_spec(i: int, rng: np.random.Generator, n_rows: int):
    """A dimension table: one row-identity column, an entity key, many
    bounded-domain foreign-key/categorical strings, a few metrics."""
    cols = [Column("entity_id", "int", "entity"), Column("record_uid", "str")]
    cols += [Column(f"ref_{i}_{j}", "str") for j in range(14)]
    cols += [Column(f"c_{i}_{j}", "str") for j in range(16)]
    cols += [Column(f"m_{i}_{j}", "float") for j in range(6)]
    cols += [Column("flag", "bool"), Column("qty", "int")]
    refs = [[f"r{j}:{k:05d}" for k in range(1000)] for j in range(14)]
    cats = [
        [f"cat{j}_{k:03d}" for k in range(30 + (53 * j) % 370)]
        for j in range(16)
    ]
    rows = []
    for k in range(n_rows):
        row = [int(k), f"uid-{i}-{k:06x}-{int(rng.integers(1 << 30)):08x}"]
        row += [
            refs[j][int(v)]
            for j, v in enumerate(rng.integers(1000, size=14))
        ]
        row += [
            cats[j][int(v) % len(cats[j])]
            for j, v in enumerate(rng.integers(1 << 16, size=16))
        ]
        row += [round(float(x), 2) for x in rng.normal(size=6)]
        row += [bool(k % 3 == 0), int(rng.integers(60))]
        rows.append(tuple(row))
    return f"wide_{i}", cols, rows


def tall_spec(i: int, rng: np.random.Generator, n_rows: int):
    """A fact/event stream: many rows over bounded domains plus one
    per-event identifier column."""
    cols = [Column("record_uid", "str"), Column("entity_id", "int", "entity"),
            Column("account", "str"), Column("code", "str"),
            Column("city", "str"), Column("grade", "str"),
            Column("status", "str"), Column("day", "str"),
            Column("channel", "str"), Column("region", "str"),
            Column("flag", "bool"), Column("metric", "float"),
            Column("qty", "int"), Column("tier", "str")]
    accts = [f"acct:{k:06d}" for k in range(2500)]
    cities = [f"city_{k:04d}" for k in range(300)]
    codes = [f"c{k}" for k in range(1200)]
    days = [f"d{k:03d}" for k in range(365)]
    grades = ["a", "b", "c", "d", "e"]
    statuses = ["ok", "late", "hold", "void"]
    channels = [f"ch{k}" for k in range(12)]
    regions = [f"reg_{k:02d}" for k in range(40)]
    tiers = ["gold", "silver", "bronze"]
    rows = [
        (f"uid-{i}-{k:08x}", int(rng.integers(4000)),
         accts[int(rng.integers(2500))], codes[int(rng.integers(1200))],
         cities[int(rng.integers(300))], grades[int(rng.integers(5))],
         statuses[int(rng.integers(4))], days[int(rng.integers(365))],
         channels[int(rng.integers(12))], regions[int(rng.integers(40))],
         bool(k % 2), round(float(rng.normal()), 1),
         int(rng.integers(60)), tiers[int(rng.integers(3))])
        for k in range(n_rows)
    ]
    return f"tall_{i}", cols, rows


def build_corpus(shape: str, n_rows: int, n_datasets: int = 3):
    rng = np.random.default_rng(7)
    spec = wide_spec if shape == "wide" else tall_spec
    return [spec(i, rng, n_rows) for i in range(n_datasets)]


def fresh_relations(specs):
    return [Relation(name, cols, rows) for name, cols, rows in specs]


# ---------------------------------------------------------------------------
# the legacy (pre-fastpath) ingest replica
# ---------------------------------------------------------------------------

def legacy_relation_content_hash(relation: Relation) -> str:
    h = hashlib.sha256()
    h.update(repr(relation.schema).encode())
    for row in sorted(map(repr, map(_freeze_row, relation.rows))):
        h.update(row.encode())
    return h.hexdigest()


def legacy_column_content_hash(relation: Relation, name: str) -> str:
    # faithful to the pre-fastpath call shape: ``relation.column(name)``
    # re-materialized the column list on every call
    i = relation.schema.position(name)
    h = hashlib.blake2b(digest_size=16)
    for v in [row[i] for row in relation.rows]:
        h.update(repr(v).encode())
        h.update(b"\x1f")
    return h.hexdigest()


#: the pre-fastpath pipeline did carry the E22 token-hash memo; on cold
#: corpora it is nearly inert (every token is first-sight) but the lookup
#: cost was real, so the replica keeps it
_LEGACY_TOKEN_MEMO: dict[str, int] = {}


def _legacy_hash_token(token: str) -> int:
    h = _LEGACY_TOKEN_MEMO.get(token)
    if h is None:
        h = int.from_bytes(
            hashlib.blake2b(token.encode(), digest_size=8).digest(), "big"
        ) % _PRIME
        _LEGACY_TOKEN_MEMO[token] = h
    return h


def legacy_signature(distinct: set, num_perm: int) -> MinHash:
    """Per-token BLAKE2b with the historical canonical double-wrap
    (``repr("s:" + repr(v))``), folded through the broadcast matrix."""
    mh = MinHash(num_perm=num_perm)
    tokens = {repr(f"s:{t}") for t in distinct}
    if not tokens:
        return mh
    hashes = np.fromiter(
        (_legacy_hash_token(t) for t in tokens),
        dtype=np.int64,
        count=len(tokens),
    )
    hashed = (mh._a[:, None] * hashes[None, :] + mh._b[:, None]) % _PRIME
    np.minimum(mh.signature, hashed.min(axis=1), out=mh.signature)
    mh.count += len(tokens)
    return mh


def legacy_profile_column(relation: Relation, name: str) -> dict:
    col = relation.schema[name]
    i = relation.schema.position(name)
    values = [row[i] for row in relation.rows]
    non_null = [v for v in values if v is not None]
    distinct = {repr(v) for v in non_null}
    return {
        "column": name,
        "signature": legacy_signature(distinct, NUM_PERM),
        "numeric": (
            NumericSummary.of(values) if col.dtype in ("int", "float")
            else None
        ),
        "categorical": CategoricalSummary.of(values),
        "distinct_fraction": (
            len(distinct) / len(non_null) if non_null else 0.0
        ),
        "content_hash": legacy_column_content_hash(relation, name),
    }


def legacy_ingest(relation: Relation) -> dict:
    """Pre-fastpath registration work: the engine hashed the relation for
    change detection, then the profiler hashed it again, then profiled
    every column value-at-a-time."""
    legacy_relation_content_hash(relation)
    return {
        "content_hash": legacy_relation_content_hash(relation),
        "columns": [
            legacy_profile_column(relation, n) for n in relation.columns
        ],
    }


# ---------------------------------------------------------------------------
# equality checks
# ---------------------------------------------------------------------------

def assert_matches_scalar_reference(columnar_profiles, scalar_profiles):
    for a, b in zip(columnar_profiles, scalar_profiles):
        assert a.content_hash == b.content_hash
        for ca, cb in zip(a.columns, b.columns):
            assert ca.content_hash == cb.content_hash, ca.column
            assert ca.signature.digest() == cb.signature.digest(), ca.column
            assert repr(ca.numeric) == repr(cb.numeric), ca.column
            assert ca.categorical == cb.categorical, ca.column
            assert ca.distinct_fraction == cb.distinct_fraction, ca.column


def assert_matches_legacy(columnar_profiles, legacy_profiles):
    for a, b in zip(columnar_profiles, legacy_profiles):
        assert a.content_hash == b["content_hash"]
        for ca, cb in zip(a.columns, b["columns"]):
            assert ca.column == cb["column"]
            assert ca.content_hash == cb["content_hash"], ca.column
            assert repr(ca.numeric) == repr(cb["numeric"]), ca.column
            assert ca.categorical == cb["categorical"], ca.column
            assert ca.distinct_fraction == cb["distinct_fraction"], ca.column
            assert ca.signature.count == cb["signature"].count, ca.column


# ---------------------------------------------------------------------------
# ingest sweep
# ---------------------------------------------------------------------------

def timed_register(specs, columnar: bool) -> tuple[float, list]:
    relations = fresh_relations(specs)
    _TOKEN_CACHE.clear()
    previous = set_columnar_profiling(columnar)
    engine = MetadataEngine(num_perm=NUM_PERM)
    try:
        t0 = time.perf_counter()
        for r in relations:
            engine.register(r)
        elapsed = time.perf_counter() - t0
    finally:
        set_columnar_profiling(previous)
    return elapsed, [engine.snapshot(r.name).profile for r in relations]


@pytest.fixture(scope="module")
def ingest_sweep(smoke):
    shapes = (
        [("wide", 400), ("tall", 2500)] if smoke
        else [("wide", 4000), ("tall", 25000)]
    )
    rows = []
    for shape, n_rows in shapes:
        specs = build_corpus(shape, n_rows)
        n_values = sum(len(r) * len(c) for _n, c, r in specs)

        relations = fresh_relations(specs)
        _TOKEN_CACHE.clear()
        _LEGACY_TOKEN_MEMO.clear()
        t0 = time.perf_counter()
        legacy = [legacy_ingest(r) for r in relations]
        t_legacy = time.perf_counter() - t0

        t_scalar, scalar_profiles = timed_register(specs, columnar=False)
        t_columnar, columnar_profiles = timed_register(specs, columnar=True)

        assert_matches_scalar_reference(columnar_profiles, scalar_profiles)
        assert_matches_legacy(columnar_profiles, legacy)
        rows.append((
            shape, n_rows, n_values,
            round(t_legacy * 1000, 1), round(t_scalar * 1000, 1),
            round(t_columnar * 1000, 1),
            round(t_legacy / t_columnar, 1),
        ))
    return rows


def test_e23_ingest_report(ingest_sweep, table, bench_json):
    table(
        ["shape", "rows", "values", "legacy (ms)", "scalar-ref (ms)",
         "columnar (ms)", "speedup"],
        [(s, r, v, tl, ts, tc, f"{sp}x")
         for s, r, v, tl, ts, tc, sp in ingest_sweep],
        title="E23: cold-registration ingest — legacy per-value pipeline "
        "vs scalar reference vs columnar fast path (identical outputs)",
    )
    bench_json(
        "E23",
        ingest={
            shape: {
                "rows": r, "values": v, "legacy_ms": tl,
                "scalar_reference_ms": ts, "columnar_ms": tc,
                "speedup_vs_legacy": sp,
            }
            for shape, r, v, tl, ts, tc, sp in ingest_sweep
        },
        ingest_outputs_identical=True,
    )


def test_e23_columnar_speedup_floor(ingest_sweep, smoke):
    """Acceptance gate: ≥2.5x end-to-end cold-registration speedup on
    every shape at production sizes (≈2.7–5.5x measured; see the module
    docstring for why the shared permutation fold caps the ratio below
    the original 5x target).

    Smoke mode shrinks corpora below timing-stable sizes; there the
    bit-identical output assertions inside the sweep fixture carry the
    test."""
    if smoke:
        return
    for shape, _r, _v, _tl, _ts, _tc, speedup in ingest_sweep:
        assert speedup >= 2.5, (
            f"columnar ingest only {speedup}x faster than legacy on {shape}"
        )


# ---------------------------------------------------------------------------
# plan-cache retention under disjoint-component churn
# ---------------------------------------------------------------------------

STEMS = ("user", "grid", "planet")
KEYS = {"user": "userkey", "grid": "gridref", "planet": "planetno"}


def component_ds(stem: str, i: int, seed: int = 0, n_rows: int = 40):
    stem_index = STEMS.index(stem)
    rng = np.random.default_rng(seed + 100 * i + 10_000 * stem_index)
    cols = [
        Column(KEYS[stem], "int"),
        Column(f"{stem}{i}", "float"),
        Column(f"{stem}{i + 1}", "float"),
    ]
    rows = [
        (stem_index * 10_000 + k, *(float(v) for v in rng.normal(size=2)))
        for k in range(n_rows)
    ]
    return Relation(f"{stem}_ds{i}", cols, rows)


def canonical_plans(result):
    return [
        (m.plan.describe(), sorted(m.matched.items()), m.missing,
         tuple(sorted(map(repr, m.relation.rows))))
        for m in result.mashups
    ]


@pytest.fixture(scope="module")
def churn_sweep(smoke):
    n_requests = 20 if smoke else 60
    popular = [
        (["user0", "user2"], "userkey"),
        (["user1", "user3"], "userkey"),
        (["user0", "user3"], "userkey"),
        (["user2"], "userkey"),
    ]
    cached = DataMarket(internal_market())
    uncached = DataMarket(internal_market(), plan_cache=False)
    for market in (cached, uncached):
        for stem in STEMS:
            for i in range(4):
                market.register_dataset(
                    component_ds(stem, i), seller=f"s_{stem}"
                )

    def churn(step: int) -> None:
        """Touch only the grid/planet components, never user."""
        stem = ("grid", "planet")[step % 2]
        for market in (cached, uncached):
            if step % 3 == 2:
                market.retire_dataset(f"{stem}_ds3")
                market.register_dataset(
                    component_ds(stem, 3, seed=step), seller=f"s_{stem}"
                )
            else:
                market.update_dataset(
                    component_ds(stem, step % 4, seed=step),
                    seller=f"s_{stem}",
                )

    # warm each distinct request once: the measured stream is steady state,
    # so every miss below is churn-induced, not a cold start
    for attrs, key in popular:
        assert canonical_plans(cached.plan(attrs, key=key)) == (
            canonical_plans(uncached.plan(attrs, key=key))
        )
    warm = cached.plan_cache_stats
    warm_hits, warm_misses = warm.hits, warm.misses

    t_cached = t_uncached = 0.0
    for step in range(n_requests):
        attrs, key = popular[step % len(popular)]
        churn(step)
        t0 = time.perf_counter()
        pc = cached.plan(attrs, key=key)
        t_cached += time.perf_counter() - t0
        t0 = time.perf_counter()
        pu = uncached.plan(attrs, key=key)
        t_uncached += time.perf_counter() - t0
        assert canonical_plans(pc) == canonical_plans(pu), (
            f"cached plan diverged from uncached planner at step {step}"
        )
    stats = cached.plan_cache_stats
    hits = stats.hits - warm_hits
    misses = stats.misses - warm_misses
    hit_rate = hits / n_requests
    return {
        "requests": n_requests,
        "hits": hits,
        "misses": misses,
        "invalidations": stats.invalidations,
        "hit_rate": round(hit_rate, 3),
        "cached_ms": round(t_cached * 1000, 1),
        "uncached_ms": round(t_uncached * 1000, 1),
        "speedup": round(t_uncached / t_cached, 1),
    }


def test_e23_cache_churn_report(churn_sweep, table, bench_json):
    table(
        ["requests", "hits", "misses", "invalidations", "hit rate",
         "uncached (ms)", "cached (ms)", "speedup"],
        [(churn_sweep["requests"], churn_sweep["hits"],
          churn_sweep["misses"], churn_sweep["invalidations"],
          churn_sweep["hit_rate"], churn_sweep["uncached_ms"],
          churn_sweep["cached_ms"], f"{churn_sweep['speedup']}x")],
        title="E23: plan stream under disjoint-component churn — "
        "component-scoped cache vs uncached planner (identical outputs)",
    )
    bench_json(
        "E23",
        plan_cache_churn=churn_sweep,
        plan_cache_outputs_identical=True,
    )


def test_e23_cache_retention_at_least_90pct(churn_sweep):
    """Acceptance gate: ≥90% hit retention while unrelated components
    churn on every request (the old version-keyed cache would sit at 0%)."""
    assert churn_sweep["hit_rate"] >= 0.9, (
        f"only {churn_sweep['hit_rate']:.0%} of requests hit the cache "
        "under disjoint-component churn"
    )
    assert churn_sweep["invalidations"] == 0
