"""E26 — durable store + concurrent service (crash-consistency & throughput).

The claim under test is the tentpole contract of the durable platform
layer: a :class:`~repro.platform.MarketStore`-backed market survives a
hard process kill (SIGKILL, no atexit, no flush courtesy) and cold-starts
to the *identical* observable state — same graph version, same join
candidates and fan-outs, same component fingerprints, same search hits
and plan outputs.  Meanwhile :class:`~repro.platform.MarketService` keeps
N writers and M readers honest: every pinned read pair answers against
one graph version (no torn reads), and each version maps to exactly one
answer digest across all reader threads.

Reported metrics (``BENCH_E26.json``, gated by
``scripts/check_bench_regression.py``):

* ``restart_consistent`` — killed-writer digest == cold-start digest
* ``rps`` / ``p50_ms`` / ``p99_ms`` — contended pinned read pairs
  (search + plan) with 4 writers churning deltas underneath 8 readers
* ``p99_latency_ratio`` — uncontended p99 / contended p99; a floor on
  how much write contention may inflate tail read latency
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro import DataMarket
from repro.platform import MarketService

from repro.relation import Column, Relation

HERE = Path(__file__).resolve()
SRC = HERE.parent.parent / "src"

N_WRITERS = 4
N_READERS = 8


def joinable(name: str, offset: int = 0, n: int = 30) -> Relation:
    """A relation joinable with every other on ``key``."""
    return Relation(
        name,
        [Column("key", "int"), Column(f"{name}_val", "float")],
        [(k, float(k + offset)) for k in range(n)],
    )


def market_digest(market: DataMarket) -> dict:
    """Full observable-state rendering, normalized to JSON scalars."""
    attrs = ["key", "base_val"]
    search = market.search(attrs)
    plan = market.plan(attrs)
    digest = {
        "graph_version": market.graph_version,
        "datasets": market.datasets,
        "candidates": {
            ds: [
                (
                    c.left_dataset, c.left_column,
                    c.right_dataset, c.right_column,
                    round(c.score, 9), c.pk_side, repr(c.fanout),
                )
                for c in market.index.dataset_candidates(ds)
            ]
            for ds in market.datasets
        },
        "fingerprints": list(market.index.component_fingerprints()),
        "search_as_of": search.as_of,
        "search_hits": [repr(h) for h in search.hits],
        "plans": [m.plan.describe() for m in plan.mashups],
        "plan_rows": [
            [repr(row) for row in m.relation.rows] for m in plan.mashups
        ],
    }
    # round-trip so tuples/lists compare equal across the process boundary
    return json.loads(json.dumps(digest, sort_keys=True))


def read_digest(search, plan) -> str:
    """One reader observation — must be unique per graph version."""
    return json.dumps(
        {
            "hits": [repr(h) for h in search.hits],
            "plans": [m.plan.describe() for m in plan.mashups],
        },
        sort_keys=True,
    )


def _child_main(store_path: str, expected_path: str, n_extra: int) -> None:
    """Runs in a subprocess: build a store-backed market, record the
    expected digest, then die hard — no close(), no final commit help."""
    market = DataMarket(store=store_path)
    market.register_dataset(joinable("base"), seller="acme", reserve_price=1.0)
    for i in range(n_extra):
        market.register_dataset(joinable(f"ds{i}", offset=i + 1), seller="acme")
    Path(expected_path).write_text(
        json.dumps(market_digest(market), sort_keys=True)
    )
    os.kill(os.getpid(), signal.SIGKILL)


def _percentile(samples: list[float], q: float) -> float:
    ordered = sorted(samples)
    return ordered[min(len(ordered) - 1, int(q * len(ordered)))]


# ---------------------------------------------------------------------------
# phase 1: kill -9 the writer, cold-start from the store
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def restart_run(tmp_path_factory, request):
    smoke = request.config.getoption("--smoke")
    tmp = tmp_path_factory.mktemp("e26_restart")
    store_path = tmp / "durable.db"
    expected_path = tmp / "expected.json"
    n_extra = 4 if smoke else 12
    code = (
        "import importlib.util\n"
        "spec = importlib.util.spec_from_file_location"
        f"('bench_e26_child', {str(HERE)!r})\n"
        "mod = importlib.util.module_from_spec(spec)\n"
        "spec.loader.exec_module(mod)\n"
        f"mod._child_main({str(store_path)!r}, {str(expected_path)!r}, "
        f"{n_extra})\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code],
        env=env, capture_output=True, text=True, timeout=600,
    )
    if proc.returncode != -signal.SIGKILL:
        raise AssertionError(
            f"killed writer exited {proc.returncode}, stderr:\n{proc.stderr}"
        )
    expected = json.loads(expected_path.read_text())
    replayed = DataMarket(store=str(store_path))
    actual = market_digest(replayed)
    return {
        "returncode": proc.returncode,
        "n_datasets": n_extra + 1,
        "expected": expected,
        "actual": actual,
        "consistent": expected == actual,
    }


# ---------------------------------------------------------------------------
# phase 2: N writers vs M readers through MarketService
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def service_run(tmp_path_factory, request):
    smoke = request.config.getoption("--smoke")
    writes_per_writer = 3 if smoke else 10
    reads_per_reader = 8 if smoke else 40
    tmp = tmp_path_factory.mktemp("e26_service")

    market = DataMarket(store=str(tmp / "svc.db"))
    service = MarketService(market)
    service.register_dataset(joinable("base"), "acme").result(60)
    attrs = ["key", "base_val"]
    errors: list[BaseException] = []

    def reader(min_reads, latencies, observations, writers_done):
        # at least ``min_reads`` pinned pairs, and keep reading while
        # writers are still churning so the version stream is observed
        try:
            done = 0
            while done < min_reads or (
                not writers_done.is_set() and done < 50 * min_reads
            ):
                t0 = time.perf_counter()
                with service.pinned() as view:
                    s = view.search(attrs)
                    p = view.plan(attrs)
                latencies.append(time.perf_counter() - t0)
                observations.append((view.as_of, read_digest(s, p)))
                done += 1
        except BaseException as exc:  # surfaces in the acceptance gate
            errors.append(exc)

    def writer(wid):
        # a short think-time between deltas: the lock is writer-preferring,
        # so back-to-back submissions from 4 sellers would keep the delta
        # queue saturated and starve readers by design — real sellers
        # don't submit in a closed loop
        try:
            for i in range(writes_per_writer):
                service.register_dataset(
                    joinable(f"w{wid}_ds{i}", offset=100 * wid + i), "acme"
                ).result(120)
                time.sleep(0.02)
        except BaseException as exc:
            errors.append(exc)

    # uncontended baseline: readers only
    no_writers = threading.Event()
    no_writers.set()
    un_lat: list[float] = []
    un_obs: list[tuple[int, str]] = []
    threads = [
        threading.Thread(
            target=reader, args=(reads_per_reader, un_lat, un_obs, no_writers)
        )
        for _ in range(N_READERS)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    # contended: writers churn deltas underneath the same read load
    writers_done = threading.Event()
    co_lat: list[float] = []
    co_obs: list[tuple[int, str]] = []
    writer_threads = [
        threading.Thread(target=writer, args=(w,)) for w in range(N_WRITERS)
    ]
    reader_threads = [
        threading.Thread(
            target=reader, args=(reads_per_reader, co_lat, co_obs, writers_done)
        )
        for _ in range(N_READERS)
    ]
    t_start = time.perf_counter()
    for t in writer_threads + reader_threads:
        t.start()
    for t in writer_threads:
        t.join()
    writers_done.set()
    for t in reader_threads:
        t.join()
    elapsed = time.perf_counter() - t_start

    service.flush()
    status = service.status()
    service.close()

    by_version: dict[int, set[str]] = {}
    for as_of, digest in un_obs + co_obs:
        by_version.setdefault(as_of, set()).add(digest)
    torn = {v: len(d) for v, d in by_version.items() if len(d) > 1}

    return {
        "errors": errors,
        "status": status,
        "writes": N_WRITERS * writes_per_writer,
        "reads": len(co_lat),
        "versions_observed": len(by_version),
        "torn_versions": torn,
        "rps": len(co_lat) / elapsed if elapsed else 0.0,
        "p50_ms": 1e3 * _percentile(co_lat, 0.50),
        "p99_ms": 1e3 * _percentile(co_lat, 0.99),
        "uncontended_p99_ms": 1e3 * _percentile(un_lat, 0.99),
        "p99_latency_ratio": (
            _percentile(un_lat, 0.99) / _percentile(co_lat, 0.99)
        ),
    }


# ---------------------------------------------------------------------------
# report
# ---------------------------------------------------------------------------

def test_e26_report(restart_run, service_run, table, bench_json, smoke):
    table(
        ["phase", "metric", "value"],
        [
            ("restart", "datasets before kill", restart_run["n_datasets"]),
            ("restart", "child exit", restart_run["returncode"]),
            ("restart", "cold start consistent", restart_run["consistent"]),
            ("service", "writers x writes", service_run["writes"]),
            ("service", "pinned read pairs", service_run["reads"]),
            ("service", "versions observed", service_run["versions_observed"]),
            ("service", "torn versions", len(service_run["torn_versions"])),
            ("service", "read pairs / s", f"{service_run['rps']:.1f}"),
            ("service", "p50 ms", f"{service_run['p50_ms']:.2f}"),
            ("service", "p99 ms", f"{service_run['p99_ms']:.2f}"),
            ("service", "uncontended p99 ms",
             f"{service_run['uncontended_p99_ms']:.2f}"),
            ("service", "p99 ratio (un/contended)",
             f"{service_run['p99_latency_ratio']:.3f}"),
        ],
        title="E26 durable store under concurrent service"
        + (" [smoke]" if smoke else ""),
    )
    bench_json(
        "E26",
        restart_consistent=restart_run["consistent"],
        rps=round(service_run["rps"], 2),
        p50_ms=round(service_run["p50_ms"], 3),
        p99_ms=round(service_run["p99_ms"], 3),
        p99_latency_ratio=round(service_run["p99_latency_ratio"], 4),
        torn_versions=len(service_run["torn_versions"]),
    )


# ---------------------------------------------------------------------------
# acceptance gates
# ---------------------------------------------------------------------------

def test_killed_writer_cold_starts_bit_identical(restart_run):
    assert restart_run["returncode"] == -signal.SIGKILL
    assert restart_run["expected"] == restart_run["actual"]
    assert restart_run["consistent"] is True


def test_no_reader_observed_a_torn_version(service_run):
    assert service_run["errors"] == []
    assert service_run["torn_versions"] == {}
    # churn actually happened while readers were in flight
    assert service_run["versions_observed"] >= 2


def test_every_concurrent_write_applied(service_run):
    status = service_run["status"]
    assert status["failed"] == 0
    # base + one delta per concurrent write
    assert status["graph_version"] >= service_run["writes"]
    assert status["pending"] == 0
