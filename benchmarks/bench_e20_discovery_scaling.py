"""E20 — Incremental discovery maintenance vs. the full-rebuild oracle (§5).

The discovery layer must keep join candidates fresh as sellers register,
update and withdraw datasets.  The old ``IndexBuilder.refresh()`` re-scored
every column pair (O(C²)) on any change; the incremental pipeline consumes
typed metadata deltas and re-scores only LSH-bucketed neighbour columns of
the changed dataset, patching candidates and the join graph in place.

This benchmark registers corpora of hundreds of datasets (thousands of
columns), then performs single-dataset operations — update, new arrival,
retirement — timing the incremental patch against a full oracle rebuild and
asserting both modes produce **identical** candidate sets and graph edges.

Expected shape: ≥10x (in practice 100x+) advantage for the incremental path
at ≥200 datasets, growing with corpus size because the patch cost depends on
bucket occupancy, not corpus size.
"""

from __future__ import annotations

import random
import time

import pytest

from repro.discovery import IndexBuilder, MetadataEngine
from repro.relation import Column, Relation

NUM_PERM = 32
N_ROWS = 80


def make_dataset(i: int, rng: random.Random, n_rows: int = N_ROWS) -> Relation:
    """Clustered corpus: datasets in the same cluster share key ranges
    (overlap signal), every third dataset carries a semantic tag (semantic
    signal), and the shared ``code`` column name links across clusters
    (name signal)."""
    offset = (i % 20) * 100
    columns = [
        Column("entity_id", "int", "entity" if i % 3 == 0 else None),
        Column("code", "str"),
        Column("metric", "float"),
        Column("flag", "str"),
    ]
    rows = [
        (
            offset + j,
            f"c{(offset + j) % 500}",
            round(rng.random() * 100, 4),
            "yes" if j % 2 else "no",
        )
        for j in range(n_rows)
    ]
    return Relation(f"ds_{i:04d}", columns, rows)


def perturb(relation: Relation, rep: int) -> Relation:
    """A new version of ``relation``: only the metric column moves."""
    rows = [
        (eid, code, round(metric + 1.0 + rep * 0.1, 4), flag)
        for eid, code, metric, flag in relation.rows
    ]
    return Relation(relation.name, list(relation.schema.columns), rows)


def canonical(index: IndexBuilder) -> list[tuple]:
    return [
        (c.left_dataset, c.left_column, c.right_dataset, c.right_column,
         c.score, c.evidence)
        for c in index.join_candidates()
    ]


def canonical_edges(index: IndexBuilder) -> dict:
    return {
        tuple(sorted((u, v))): (d["left"], d["right"], d["score"],
                                d["evidence"])
        for u, v, d in index.graph.edges(data=True)
    }


def timed(fn) -> float:
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def assert_identical(inc: IndexBuilder, oracle: IndexBuilder) -> None:
    assert canonical(inc) == canonical(oracle)
    assert canonical_edges(inc) == canonical_edges(oracle)


@pytest.fixture(scope="module")
def sweep(smoke):
    sizes = (20, 40) if smoke else (50, 120, 220)
    update_reps = 1 if smoke else 3
    rows = []
    for n in sizes:
        rng = random.Random(7)
        relations = [make_dataset(i, rng) for i in range(n)]
        engine = MetadataEngine(num_perm=NUM_PERM)
        inc = IndexBuilder(engine)  # incremental (the default)
        oracle = IndexBuilder(engine, incremental=False)
        engine.register_batch(relations)
        inc.join_candidates()  # prime: one full build into the LSH pipeline
        oracle.join_candidates()
        n_columns = sum(
            len(p.columns) for p in engine.profiles()
        )

        # single-dataset update: incremental patch vs full oracle rebuild
        target = relations[n // 2]
        t_inc = t_full = float("inf")
        for rep in range(update_reps):
            updated = perturb(target, rep)
            t_inc = min(t_inc, timed(lambda u=updated: engine.register(u)))
            t_full = min(t_full, timed(oracle.refresh))
            assert_identical(inc, oracle)
        ops = [("update", t_inc, t_full)]

        # a brand-new seller dataset arrives
        arrival = make_dataset(n + 1000, rng)
        t_arr = timed(lambda: engine.register(arrival))
        t_arr_full = timed(oracle.refresh)
        assert_identical(inc, oracle)
        ops.append(("arrival", t_arr, t_arr_full))

        # the seller withdraws it again
        t_ret = timed(lambda: engine.remove(arrival.name))
        t_ret_full = timed(oracle.refresh)
        assert_identical(inc, oracle)
        ops.append(("retire", t_ret, t_ret_full))

        for op, ti, tf in ops:
            rows.append(
                (n, n_columns, op, round(tf * 1000, 2), round(ti * 1000, 2),
                 round(tf / ti, 1), len(inc.join_candidates()))
            )
    return rows


def test_e20_report(sweep, table, bench_json):
    table(
        ["datasets", "columns", "op", "full rebuild (ms)",
         "incremental (ms)", "speedup", "candidates"],
        [(n, c, op, tf, ti, f"{s}x", k)
         for n, c, op, tf, ti, s, k in sweep],
        title="E20: discovery maintenance — LSH-bucketed incremental patch "
        "vs O(C²) rebuild",
    )
    bench_json(
        "E20",
        incremental_vs_rebuild={
            f"{n}_{op}": {"rebuild_ms": tf, "incremental_ms": ti,
                          "speedup": s}
            for n, _c, op, tf, ti, s, _k in sweep
        },
        candidate_sets_identical=True,  # asserted inside the sweep fixture
    )


def test_e20_incremental_update_10x_at_200_datasets(sweep, smoke):
    if smoke:
        pytest.skip("timing assertion is for full benchmark runs")
    speedups = {
        (n, op): s for n, _c, op, _tf, _ti, s, _k in sweep
    }
    assert speedups[(220, "update")] >= 10.0, (
        f"incremental update at 220 datasets is only "
        f"{speedups[(220, 'update')]}x faster than a full rebuild"
    )


def test_e20_candidate_sets_identical_under_churn(smoke):
    """Register/update/remove churn: incremental output stays equal to the
    oracle's (the sweep fixture asserts this after every op too)."""
    n = 12 if smoke else 40
    rng = random.Random(13)
    relations = [make_dataset(i, rng) for i in range(n)]
    engine = MetadataEngine(num_perm=NUM_PERM)
    inc = IndexBuilder(engine)
    oracle = IndexBuilder(engine, incremental=False)
    engine.register_batch(relations)
    for i in (1, n // 2, n - 2):
        engine.register(perturb(relations[i], rep=i))
    engine.remove(relations[0].name)
    engine.register(make_dataset(n + 7, rng))
    assert_identical(inc, oracle)
